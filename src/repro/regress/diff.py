"""Statistical diff between two run snapshots.

``diff_snapshots`` walks every (experiment, cell, ledger category) and
every exported metric of a baseline snapshot, compares it against the
current snapshot, and classifies each change:

- **regression** — a higher-is-worse quantity grew past the threshold
  and its bootstrap confidence interval sits entirely above it: overhead
  cycle categories (transition, marshal, runtime, the two spin
  categories, sched), the simulated completion time, fallback counters,
  latency quantiles — and any *new* paper-shape violation.  Regressions
  drive the non-zero exit code.
- **drift** — a quantity changed past the threshold but does not signal
  "slower": app/host-exec work (the workload itself changed), call
  counts, utilisation.  Reported so a parameter change is never silent,
  but never gates.
- **info** — idle capacity, resolved shape violations, confirmed
  improvements, and ``BENCH_meta`` host-throughput numbers (those are
  machine-dependent, so cross-machine gating would be noise).

Confidence intervals come from a percentile bootstrap over the repeat
samples stored in the snapshot (seeded ``random.Random`` — reruns give
identical reports).  With a single repeat the interval collapses to the
point estimate, which is exact for this deterministic simulator: any
delta is then real, not noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.telemetry.ledger import (
    APP,
    HOST_EXEC,
    IDLE,
)
from repro.telemetry.schema import SchemaMismatch

#: Ledger categories where an increase means the run got slower.
#: ``fault`` is the injected-fault overhead (stalls, enclave
#: re-creation, rejoin resets): zero on healthy runs, and on fault-plan
#: baselines the quantity the ``fault_overhead`` gate keeps bounded.
GATED_CATEGORIES: tuple[str, ...] = (
    "transition",
    "marshal",
    "runtime",
    "caller-spin",
    "worker-spin",
    "sched",
    "fault",
)

#: Metric-name prefixes that gate (higher is worse).  Quantile suffixes
#: (``.p50`` etc.) ride on the histogram family name.
GATED_METRIC_PREFIXES: tuple[str, ...] = (
    "repro_sim_time_cycles",
    "repro_zc_fallbacks_total",
    "repro_intel_fallbacks_total",
    "repro_ocall_latency_cycles{",
    "repro_ocall_host_cycles{",
)

#: Metric families excluded from the diff entirely: per-category cycle
#: counters duplicate the ledger walk above (one finding per cause).
SKIPPED_METRIC_PREFIXES: tuple[str, ...] = ("repro_cycles_total",)

#: Histogram sample-count suffix — a count change is workload drift,
#: even on a gated latency family.
_COUNT_SUFFIX = ".count{"


def _mean(samples: Sequence[float]) -> float:
    return sum(samples) / len(samples) if samples else 0.0


def bootstrap_rel_delta(
    base: Sequence[float],
    cur: Sequence[float],
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 20230628,
) -> tuple[float, float, float]:
    """Relative delta ``(mean(cur)-mean(base))/|mean(base)|`` with a CI.

    Returns ``(delta, lo, hi)``.  The interval is a percentile bootstrap
    over with-replacement resamples of both sample lists; identical
    repeats give a zero-width interval at the point estimate.  A zero
    baseline with a non-zero current value reports ``inf`` (something
    appeared from nothing — always judged against the threshold).
    """
    base_mean = _mean(base)
    cur_mean = _mean(cur)

    def rel(b: float, c: float) -> float:
        if b == 0.0:
            return 0.0 if c == 0.0 else float("inf")
        return (c - b) / abs(b)

    point = rel(base_mean, cur_mean)
    if len(base) <= 1 and len(cur) <= 1:
        return point, point, point
    rng = random.Random(seed)
    deltas = []
    for _ in range(resamples):
        b = _mean([rng.choice(base) for _ in base]) if base else 0.0
        c = _mean([rng.choice(cur) for _ in cur]) if cur else 0.0
        deltas.append(rel(b, c))
    deltas.sort()
    tail = (1.0 - confidence) / 2.0
    lo = deltas[int(tail * (len(deltas) - 1))]
    hi = deltas[int((1.0 - tail) * (len(deltas) - 1))]
    # The point estimate belongs inside its own interval even when the
    # resampling distribution is skewed around it.
    return point, min(lo, point), max(hi, point)


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity: where it lives, how it moved, what it means."""

    experiment: str
    scope: str  # cell label, "shape", or "bench_meta"
    key: str  # ledger category, metric name, or violation text
    severity: str  # "regression" | "drift" | "info" | "ok"
    base: float
    current: float
    delta: float  # relative; +inf when appearing from a zero baseline
    ci: tuple[float, float]
    message: str = ""

    def __str__(self) -> str:
        delta = "new" if self.delta == float("inf") else f"{self.delta:+.1%}"
        ci = (
            ""
            if self.ci[0] == self.ci[1]
            else f" ci[{self.ci[0]:+.1%},{self.ci[1]:+.1%}]"
        )
        body = self.message or (
            f"{self.base:,.0f} -> {self.current:,.0f} ({delta}{ci})"
        )
        return f"[{self.severity}] {self.experiment}/{self.scope} {self.key}: {body}"


@dataclass
class DiffReport:
    """All findings of one snapshot comparison."""

    base_name: str
    current_name: str
    threshold: float
    entries: list[DiffEntry] = field(default_factory=list)
    compared: int = 0  # quantities examined (incl. unchanged ones)

    @property
    def regressions(self) -> list[DiffEntry]:
        return [entry for entry in self.entries if entry.severity == "regression"]

    @property
    def drifts(self) -> list[DiffEntry]:
        return [entry for entry in self.entries if entry.severity == "drift"]

    @property
    def ok(self) -> bool:
        """True when nothing gates: drift and info never fail a diff."""
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        """Markdown report: verdict, then findings grouped by severity."""
        lines = [
            f"# Regression diff: {self.current_name} vs baseline {self.base_name}",
            "",
            f"Compared {self.compared} quantities at threshold "
            f"{self.threshold:.0%}; {len(self.regressions)} regression(s), "
            f"{len(self.drifts)} drift(s).",
            "",
            f"**Verdict: {'PASS' if self.ok else 'FAIL'}**",
        ]
        for severity, title in (
            ("regression", "Regressions (gate)"),
            ("drift", "Drift (informational)"),
            ("info", "Notes"),
        ):
            found = [entry for entry in self.entries if entry.severity == severity]
            if not found:
                continue
            lines += ["", f"## {title}", ""]
            lines += [f"- {entry}" for entry in found]
        return "\n".join(lines) + "\n"


def _classify(
    delta: float, lo: float, hi: float, threshold: float, gated: bool
) -> str:
    """Severity of one measured change.

    A gated quantity regresses only when the whole confidence interval
    clears the threshold — a wide interval straddling it is reported as
    drift (suspicious but unconfirmed), never as a hard failure.
    """
    if gated and delta > threshold and lo > threshold:
        return "regression"
    if gated and delta < -threshold and hi < -threshold:
        return "info"  # confirmed improvement: worth a note, never a gate
    if abs(delta) > threshold:
        return "drift"
    return "ok"


def _diff_sampled(
    report: DiffReport,
    experiment: str,
    scope: str,
    key: str,
    base_samples: Sequence[float],
    cur_samples: Sequence[float],
    threshold: float,
    gated: bool,
    min_magnitude: float,
    resamples: int,
) -> None:
    """Compare one sampled quantity and record it if it moved."""
    report.compared += 1
    base_mean = _mean(base_samples)
    cur_mean = _mean(cur_samples)
    if max(abs(base_mean), abs(cur_mean)) < min_magnitude:
        return  # both sides negligible: relative deltas would be noise
    delta, lo, hi = bootstrap_rel_delta(
        base_samples, cur_samples, resamples=resamples
    )
    severity = _classify(delta, lo, hi, threshold, gated)
    if severity == "ok":
        return
    report.entries.append(
        DiffEntry(experiment, scope, key, severity, base_mean, cur_mean, delta, (lo, hi))
    )


def _flatten_shape(violation_runs: Sequence[Sequence[str]]) -> set[str]:
    return {violation for run in violation_runs for violation in run}


def diff_snapshots(
    base: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = 0.05,
    min_cycles: float = 1_000.0,
    resamples: int = 2000,
) -> DiffReport:
    """Compare two snapshot documents (see :mod:`repro.regress.snapshot`).

    ``threshold`` is the relative delta a gated quantity must exceed —
    with its whole bootstrap CI — to fail the diff.  ``min_cycles``
    suppresses relative comparisons of near-zero cycle categories.
    """
    if base.get("schema_version") != current.get("schema_version"):
        raise SchemaMismatch(
            f"snapshot schema mismatch: baseline v{base.get('schema_version')} "
            f"vs current v{current.get('schema_version')}"
        )
    report = DiffReport(
        base_name=base.get("name", "baseline"),
        current_name=current.get("name", "current"),
        threshold=threshold,
    )

    base_plan = base.get("fault_plan")
    cur_plan = current.get("fault_plan")
    if base_plan != cur_plan:
        # Comparing a faulty run against a healthy baseline (or two
        # different plans) is apples-to-oranges: every downstream delta
        # would be an artifact of the plan, not a regression.
        report.entries.append(
            DiffEntry(
                "snapshot", "fault_plan", "plan", "regression", 0.0, 0.0, 0.0,
                (0.0, 0.0),
                message=(
                    f"fault plans differ: baseline "
                    f"{(base_plan or {}).get('name', 'none')!r} vs current "
                    f"{(cur_plan or {}).get('name', 'none')!r} — re-capture with "
                    "matching --plan"
                ),
            )
        )

    for exp_id, base_record in base.get("experiments", {}).items():
        cur_record = current.get("experiments", {}).get(exp_id)
        if cur_record is None:
            report.entries.append(
                DiffEntry(
                    exp_id, "shape", "missing", "regression", 0.0, 0.0, 0.0,
                    (0.0, 0.0),
                    message="experiment present in baseline but absent from current run",
                )
            )
            continue

        base_shape = _flatten_shape(base_record.get("violations", []))
        cur_shape = _flatten_shape(cur_record.get("violations", []))
        for violation in sorted(cur_shape - base_shape):
            report.entries.append(
                DiffEntry(
                    exp_id, "shape", violation, "regression", 0.0, 1.0,
                    float("inf"), (0.0, 0.0),
                    message="new paper-shape violation",
                )
            )
        for violation in sorted(base_shape - cur_shape):
            report.entries.append(
                DiffEntry(
                    exp_id, "shape", violation, "info", 1.0, 0.0, -1.0,
                    (0.0, 0.0),
                    message="baseline shape violation no longer present",
                )
            )

        for label, base_cell in base_record.get("cells", {}).items():
            cur_cell = cur_record.get("cells", {}).get(label)
            if cur_cell is None:
                report.entries.append(
                    DiffEntry(
                        exp_id, label, "missing", "drift", 0.0, 0.0, 0.0,
                        (0.0, 0.0),
                        message="cell present in baseline but not in current run",
                    )
                )
                continue
            _diff_sampled(
                report, exp_id, label, "now_cycles",
                base_cell.get("now_cycles", []), cur_cell.get("now_cycles", []),
                threshold, gated=True, min_magnitude=min_cycles,
                resamples=resamples,
            )
            base_wall = base_cell.get("wall_by_category", {})
            cur_wall = cur_cell.get("wall_by_category", {})
            for category in sorted(set(base_wall) | set(cur_wall)):
                if category == IDLE:
                    gated = False  # idle is capacity, not cost
                elif category in (APP, HOST_EXEC):
                    gated = False  # useful work: a change means workload drift
                else:
                    gated = category in GATED_CATEGORIES
                _diff_sampled(
                    report, exp_id, label, f"cycles[{category}]",
                    base_wall.get(category, []), cur_wall.get(category, []),
                    threshold, gated=gated, min_magnitude=min_cycles,
                    resamples=resamples,
                )

        base_metrics = base_record.get("metrics", {})
        cur_metrics = cur_record.get("metrics", {})
        for key in sorted(set(base_metrics) | set(cur_metrics)):
            if key.startswith(SKIPPED_METRIC_PREFIXES):
                continue
            gated = key.startswith(GATED_METRIC_PREFIXES) and _COUNT_SUFFIX not in key
            _diff_sampled(
                report, exp_id, "metrics", key,
                base_metrics.get(key, []), cur_metrics.get(key, []),
                threshold, gated=gated, min_magnitude=1e-9,
                resamples=resamples,
            )

    base_bench = base.get("bench_meta")
    cur_bench = current.get("bench_meta")
    if base_bench and cur_bench:
        for arm, stats in base_bench.get("throughput", {}).items():
            cur_stats = cur_bench.get("throughput", {}).get(arm, {})
            for key in ("events_per_s", "ocalls_per_s"):
                b, c = stats.get(key, 0.0), cur_stats.get(key, 0.0)
                report.compared += 1
                if b and abs(c - b) / b > threshold:
                    delta = (c - b) / b
                    report.entries.append(
                        DiffEntry(
                            "bench_meta", arm, key, "info", b, c, delta,
                            (delta, delta),
                            message=(
                                f"host throughput moved {delta:+.1%} "
                                "(machine-dependent; informational only)"
                            ),
                        )
                    )

    return report
