"""Trace-based invariant auditor for the paper's scheduler guarantees.

Each :class:`Checker` watches the telemetry event stream of one cell and
asserts one paper-level invariant:

- :class:`ImmediateFallbackChecker` — §IV-C: when no worker is idle, the
  zc caller falls back to a regular ocall *immediately*.  Every
  ``zc.fallback`` event carries ``waited_cycles`` (simulated cycles
  between backend dispatch and the fallback decision); any positive value
  means the caller busy-waited SDK-style first.
- :class:`ConfigPhaseChecker` — §IV-A / Fig. 5: every configuration
  phase probes exactly ``N/2 + 1`` worker counts (``i = 0 .. N/2``,
  capped by the pool that exists), in ascending order, one micro-quantum
  each, and the probe utilities are exactly the ``U_i`` vector the
  decision reports.
- :class:`ArgminChecker` — §IV-A: the kept worker count is
  ``argmin_i U_i`` (first minimum, matching the scheduler's strict-``<``
  scan).
- :class:`ConservationChecker` — the ledger identity behind ``U = F·T_es
  + M·T``: categorised wall cycles plus idle capacity equal
  ``now × n_cpus`` at every window boundary, not just at the end of the
  run.  Live-only (replay has events but no ledger).
- :class:`RecoveryChecker` — graceful degradation under
  :mod:`repro.faults`: every ``fault.worker.crash`` that schedules a
  respawn is matched by a ``fault.worker.respawn`` (or an explicit
  ``.skipped``) by its deadline; a crashed slot that silently never
  heals is a supervision bug.  Vacuously green on healthy runs.
- :class:`RouterConservationChecker` / :class:`QuarantineRoutingChecker`
  — the :mod:`repro.serve` router's contract: every request terminates
  exactly once (ok/shed/failed, sheds balance their completions) and no
  request is ever placed on a quarantined or dead shard.  Vacuously
  green on runs without ``serve.*`` events.
- :class:`SpanConservationChecker` — the router's tracing contract:
  exactly one ``serve.request.span`` per request id, boundaries stamped
  in monotonic order, and every boundary present on ok requests (the
  property that makes :mod:`repro.slo.trace` span trees sum exactly).
- :class:`ScalingSanityChecker` — the :mod:`repro.autoscale` control
  plane's contract: no ``autoscale.spawn`` while any shard is
  quarantined, no routing to (or re-adding of) a retired shard, and
  every request drained by ``serve.shard.retire`` conserved — it must
  re-surface as a submit or a shed.  Vacuously green on runs without
  ``autoscale.*``/``serve.shard.retire`` events.

Checkers run in two modes: *live*, subscribed to a cell's
:class:`~repro.telemetry.events.EventBus` via :func:`attach_auditor`
(this is what the ``--audit-invariants`` pytest option wires up), and
*replay*, fed from an exported JSONL event log by
:mod:`repro.regress.replay`.  A checker that has proven its violation
can unsubscribe mid-``emit`` — the bus snapshots its subscriber tuple per
dispatch, so one-shot checkers are safe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.telemetry.events import EventBus, TelemetryEvent

if TYPE_CHECKING:
    from repro.telemetry.ledger import LedgerSnapshot
    from repro.telemetry.session import CellCapture

#: Relative tolerance for float comparisons over replayed (JSON) values.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation, with its event context."""

    checker: str
    cell: str
    t_cycles: float
    message: str
    #: The last few events before (and including) the offending one, as
    #: ``"<t_cycles>:<name>"`` strings — the window to look at in the
    #: JSONL export or Chrome trace.
    window: tuple[str, ...] = ()

    def __str__(self) -> str:
        text = f"[{self.checker}] {self.cell} @ {self.t_cycles:.0f}: {self.message}"
        if self.window:
            text += f"  (window: {' -> '.join(self.window)})"
        return text


class Checker:
    """Base class: one invariant over one cell's event stream."""

    name = "checker"

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        """Observe one event (called in stream order)."""

    def finish(self, auditor: "InvariantAuditor", snapshot: "LedgerSnapshot | None") -> None:
        """End-of-stream checks; ``snapshot`` is the cell's final ledger
        snapshot when one is available (live mode), else None."""


class ImmediateFallbackChecker(Checker):
    """§IV-C: fallback happens the instant the worker scan comes up empty.

    The zc backend emits ``zc.fallback`` with ``waited_cycles = now −
    request.dispatched_at``; its real implementation has no yield between
    the failed scan and the fallback, so the value is exactly 0.  A
    backend that busy-waits for a worker before giving up (the Intel
    SDK's ``retries_before_fallback`` behaviour) shows up as a positive
    ``waited_cycles``.  ``intel.fallback`` events are deliberately not
    checked: waiting before falling back *is* that mechanism's contract.
    """

    name = "immediate-fallback"

    def __init__(self, tolerance_cycles: float = 0.0) -> None:
        self.tolerance_cycles = tolerance_cycles

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        if event.name != "zc.fallback":
            return
        waited = event.fields.get("waited_cycles")
        if waited is None or waited <= self.tolerance_cycles:
            return
        auditor.report(
            self.name,
            event.t_cycles,
            f"zc fallback busy-waited {waited:.0f} cycles before transitioning "
            "(§IV-C requires immediate fallback, zero busy-waiting)",
        )


class ConfigPhaseChecker(Checker):
    """§IV-A: each configuration phase is exactly the N/2+1 probe sweep."""

    name = "config-phase"

    def __init__(self, expected_probes: int | None = None) -> None:
        #: Explicit probe count to expect; None resolves it from the
        #: auditor's machine context (``min(N/2, pool size) + 1``).
        self.expected_probes = expected_probes
        #: In-flight probes per scheduler ``source`` (several enclaves may
        #: share one kernel — repro.serve shards — and their configuration
        #: phases interleave on the shared bus).
        self._probes: dict[Any, list[TelemetryEvent]] = {}

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        source = event.fields.get("source")
        if event.name == "zc.sched.probe":
            self._probes.setdefault(source, []).append(event)
            return
        if event.name != "zc.sched.decision":
            return
        probes = self._probes.pop(source, [])
        utilities = event.fields.get("utilities", [])
        counts = [p.fields.get("workers") for p in probes]
        if counts != list(range(len(counts))):
            auditor.report(
                self.name,
                event.t_cycles,
                f"configuration phase probed worker counts {counts}, "
                "expected the ascending sweep 0..k",
            )
        if len(probes) != len(utilities):
            auditor.report(
                self.name,
                event.t_cycles,
                f"decision reports {len(utilities)} utilities but the phase "
                f"emitted {len(probes)} probes",
            )
        else:
            for probe, u_decided in zip(probes, utilities):
                u_probed = probe.fields.get("u_cycles", 0.0)
                if abs(u_probed - u_decided) > _REL_TOL * max(abs(u_decided), 1.0):
                    auditor.report(
                        self.name,
                        event.t_cycles,
                        f"probe U_{probe.fields.get('workers')} = {u_probed:.1f} "
                        f"disagrees with the decision's {u_decided:.1f}",
                    )
                    break
        expected = self.expected_probes
        if expected is None:
            expected = auditor.expected_probe_count()
        if expected is not None and len(probes) != expected:
            auditor.report(
                self.name,
                event.t_cycles,
                f"configuration phase ran {len(probes)} micro-quanta, "
                f"expected N/2 + 1 = {expected}",
            )


class ArgminChecker(Checker):
    """§IV-A: the scheduling phase keeps ``M' = argmin_i U_i`` workers."""

    name = "argmin-decision"

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        if event.name != "zc.sched.decision":
            return
        utilities = event.fields.get("utilities", [])
        chosen = event.fields.get("chosen")
        if not utilities or chosen is None or not 0 <= chosen < len(utilities):
            auditor.report(
                self.name,
                event.t_cycles,
                f"malformed decision: chosen={chosen!r} over {len(utilities)} utilities",
            )
            return
        best = min(utilities)
        if utilities[chosen] > best + _REL_TOL * max(abs(best), 1.0):
            auditor.report(
                self.name,
                event.t_cycles,
                f"kept M' = {chosen} workers (U = {utilities[chosen]:.1f}) but "
                f"argmin_i U_i = {utilities.index(best)} (U = {best:.1f})",
            )


class ConservationChecker(Checker):
    """No simulated cycle escapes attribution, checked per window.

    Live-only: replayed event streams carry no ledger.  Every
    ``window_cycles`` of simulated time (default: one scheduler quantum,
    10 ms at the cell's clock) the checker snapshots the live ledger and
    verifies categorised wall cycles + idle capacity == ``now × n_cpus``.
    On the first violation it reports and unsubscribes the whole auditor
    when ``halt_on_violation`` is set — a conservation break means every
    later number is suspect.
    """

    name = "cycle-conservation"

    def __init__(self, window_cycles: float | None = None, rel_tol: float = 1e-6) -> None:
        self.window_cycles = window_cycles
        self.rel_tol = rel_tol
        self._next_boundary: float | None = None
        self._dead = False

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        capture = auditor.capture
        if self._dead or capture is None or capture.kernel is None:
            return
        # Scheduler-dispatch events are emitted from inside the kernel's
        # dispatch loop, where flushing accounting would observe a thread
        # mid-handoff; every other event comes from running program code.
        if event.name.startswith("sched."):
            return
        if self._next_boundary is None:
            window = self.window_cycles
            if window is None:
                window = 0.01 * capture.freq_hz  # one scheduler quantum Q
            self.window_cycles = window
            self._next_boundary = window
        if event.t_cycles < self._next_boundary:
            return
        while event.t_cycles >= self._next_boundary:
            self._next_boundary += self.window_cycles
        snapshot = capture.ledger.snapshot(capture.kernel)
        error = snapshot.conservation_error()
        if error > self.rel_tol * max(snapshot.capacity_cycles, 1.0):
            self._dead = True  # one-shot: report the first broken window only
            auditor.report(
                self.name,
                event.t_cycles,
                f"ledger lost {error:.1f} cycles inside the window ending at "
                f"{event.t_cycles:.0f} (capacity {snapshot.capacity_cycles:.0f})",
            )

    def finish(self, auditor: "InvariantAuditor", snapshot: "LedgerSnapshot | None") -> None:
        if self._dead or snapshot is None:
            return
        error = snapshot.conservation_error()
        if error > self.rel_tol * max(snapshot.capacity_cycles, 1.0):
            auditor.report(
                self.name,
                snapshot.now_cycles,
                f"final ledger does not balance: {error:.1f} cycles unattributed "
                f"of {snapshot.capacity_cycles:.0f} capacity",
            )


class RecoveryChecker(Checker):
    """Fault supervision: scheduled worker respawns actually happen.

    The fault injector emits ``fault.worker.crash`` with
    ``respawn_after_cycles`` when the plan schedules supervision for the
    killed worker (None means the slot stays dead by design).  This
    checker arms a deadline per ``(target, worker)`` slot and expects a
    ``fault.worker.respawn`` — or a ``fault.worker.respawn.skipped``,
    the supervisor's explicit "moot, shutting down" verdict — before any
    later event passes the deadline.  ``fault.plan.detached`` cancels
    not-yet-due deadlines (detach cancels the pending timers too), but a
    deadline already in the past at detach time means the respawn timer
    was lost.  Healthy runs emit no ``fault.*`` events, so this checker
    is vacuously green outside fault injection.
    """

    name = "fault-recovery"

    def __init__(self) -> None:
        #: (target, worker) -> simulated deadline for its respawn event.
        self._pending: dict[tuple[str, int], float] = {}
        self._last_t = 0.0

    def _slot(self, event: TelemetryEvent) -> tuple[str, int]:
        return (event.fields.get("target", "?"), event.fields.get("worker", -1))

    def _overdue(self, auditor: "InvariantAuditor", t_cycles: float) -> None:
        for slot, deadline in sorted(self._pending.items()):
            # Strict >: the respawn emit happens exactly at its deadline,
            # and unrelated events carrying that same timestamp may be
            # dispatched before the timer callback.
            if t_cycles > deadline:
                del self._pending[slot]
                auditor.report(
                    self.name,
                    t_cycles,
                    f"worker {slot[0]}/{slot[1]} crashed with a respawn due at "
                    f"{deadline:.0f} but no fault.worker.respawn arrived",
                )

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        self._last_t = event.t_cycles
        if self._pending:
            self._overdue(auditor, event.t_cycles)
        if event.name == "fault.worker.crash":
            after = event.fields.get("respawn_after_cycles")
            if after is not None:
                self._pending[self._slot(event)] = event.t_cycles + after
        elif event.name in ("fault.worker.respawn", "fault.worker.respawn.skipped"):
            self._pending.pop(self._slot(event), None)
        elif event.name == "fault.plan.detached":
            self._pending.clear()  # _overdue above already flagged past-due slots

    def finish(self, auditor: "InvariantAuditor", snapshot: "LedgerSnapshot | None") -> None:
        # A truncated stream (no detach event) still owes respawns whose
        # deadline the stream itself passed.
        t_end = snapshot.now_cycles if snapshot is not None else self._last_t
        if self._pending:
            self._overdue(auditor, t_end)


class RouterConservationChecker(Checker):
    """Serving layer: no request is dropped or double-counted.

    The router's contract is that every issued request terminates in
    exactly one of ``ok`` / ``shed`` / ``failed`` (carried on its
    ``serve.request.complete`` event), that every shed decision
    (``serve.request.shed``) surfaces as exactly one shed completion, and
    that every non-shed completion was actually enqueued on a shard at
    least once (``serve.request.submit``; re-routes enqueue again, so the
    submit count may exceed completions but never undercut them).
    Quarantine bookkeeping must balance too: a shard cannot be re-admitted
    or declared dead more often than it was quarantined.  Vacuously green
    on runs that emit no ``serve.*`` events.
    """

    name = "serve-conservation"

    def __init__(self) -> None:
        self._enqueued = 0
        self._shed_events = 0
        self._completes: dict[str, int] = {}
        self._quarantines = 0
        self._resolutions = 0
        self._last_t = 0.0

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        if not event.name.startswith("serve."):
            return
        self._last_t = event.t_cycles
        if event.name == "serve.request.submit":
            self._enqueued += 1
        elif event.name == "serve.request.shed":
            self._shed_events += 1
        elif event.name == "serve.request.complete":
            status = event.fields.get("status")
            if status not in ("ok", "shed", "failed"):
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"request completed with unknown status {status!r}",
                )
                return
            self._completes[status] = self._completes.get(status, 0) + 1
        elif event.name == "serve.shard.quarantine":
            self._quarantines += 1
        elif event.name in ("serve.shard.readmit", "serve.shard.dead"):
            self._resolutions += 1
            if self._resolutions > self._quarantines:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"{event.name} without a matching serve.shard.quarantine",
                )

    def finish(self, auditor: "InvariantAuditor", snapshot: "LedgerSnapshot | None") -> None:
        completed_shed = self._completes.get("shed", 0)
        if completed_shed != self._shed_events:
            auditor.report(
                self.name,
                self._last_t,
                f"{self._shed_events} shed decision(s) but {completed_shed} "
                "shed completion(s) — a shed request vanished or doubled",
            )
        served = self._completes.get("ok", 0) + self._completes.get("failed", 0)
        if self._enqueued < served:
            auditor.report(
                self.name,
                self._last_t,
                f"{served} request(s) completed on shards but only "
                f"{self._enqueued} were ever enqueued",
            )


class QuarantineRoutingChecker(Checker):
    """Serving layer: no request is placed on a quarantined or dead shard.

    Tracks shard health from the router's own event stream
    (``serve.shard.quarantine`` marks a shard unroutable until its
    ``serve.shard.readmit``; ``serve.shard.dead`` is terminal) and flags
    any ``serve.request.submit`` that names an unroutable shard — the
    exact window a buggy router would keep feeding a lost enclave.
    Vacuously green on runs that emit no ``serve.*`` events.
    """

    name = "serve-quarantine-routing"

    def __init__(self) -> None:
        self._quarantined: set[int] = set()
        self._dead: set[int] = set()

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        if event.name == "serve.shard.quarantine":
            self._quarantined.add(event.fields.get("shard"))
        elif event.name == "serve.shard.readmit":
            self._quarantined.discard(event.fields.get("shard"))
        elif event.name == "serve.shard.dead":
            shard = event.fields.get("shard")
            self._quarantined.discard(shard)
            self._dead.add(shard)
        elif event.name == "serve.request.submit":
            shard = event.fields.get("shard")
            if shard in self._quarantined:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"request enqueued on shard {shard} while quarantined",
                )
            elif shard in self._dead:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"request enqueued on shard {shard} after it was declared dead",
                )


class SpanConservationChecker(Checker):
    """Serving layer: every ``serve.request.span`` is a valid span tree.

    The router promises span boundaries stamped in monotonic order
    (submit ≤ enqueue ≤ dequeue ≤ result ≤ complete, with absent
    intermediate boundaries only for non-ok requests), exactly one span
    record per request id, and — because :mod:`repro.slo.trace` builds
    children that tile ``[t_submit, t_complete]`` — an exact
    root-equals-children cycle attribution.  This checker guards the
    emitter side of that promise, live or in JSONL replay.  Vacuously
    green on runs without span events.
    """

    name = "span-conservation"

    #: Boundary fields in request order (``t_complete`` is separate: it
    #: is the only one allowed to equal a missing predecessor).
    _ORDERED = ("t_submit", "t_enqueue", "t_dequeue", "t_result", "t_complete")

    def __init__(self) -> None:
        self._seen: set[Any] = set()

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        if event.name != "serve.request.span":
            return
        fields = event.fields
        request_id = fields.get("request_id")
        if request_id in self._seen:
            auditor.report(
                self.name,
                event.t_cycles,
                f"request {request_id} published more than one span record",
            )
            return
        self._seen.add(request_id)
        if fields.get("t_submit") is None or fields.get("t_complete") is None:
            auditor.report(
                self.name,
                event.t_cycles,
                f"request {request_id} span lacks a submit/complete boundary",
            )
            return
        boundaries = [
            (name, fields[name])
            for name in self._ORDERED
            if fields.get(name) is not None
        ]
        for (prev_name, prev_t), (next_name, next_t) in zip(
            boundaries, boundaries[1:]
        ):
            if next_t < prev_t:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"request {request_id} span boundary {next_name} "
                    f"({next_t:.0f}) precedes {prev_name} ({prev_t:.0f})",
                )
                return
        if fields.get("status") == "ok" and len(boundaries) != len(self._ORDERED):
            missing = [
                name for name in self._ORDERED if fields.get(name) is None
            ]
            auditor.report(
                self.name,
                event.t_cycles,
                f"ok request {request_id} span is missing boundaries "
                f"{missing} — an executed request must cross all of them",
            )


class ScalingSanityChecker(Checker):
    """Autoscale layer: scaling actions are sane and conserve requests.

    Three invariants over the ``autoscale.*`` / ``serve.shard.*`` event
    streams:

    1. **No scale-up under quarantine** — an ``autoscale.spawn`` while
       any shard sits in quarantine is a violation: the quarantined
       capacity may be re-admitted any moment, and the controller
       promises to suppress spawns until the episode resolves.
    2. **Retirement is terminal** — a ``serve.request.submit`` naming a
       retired shard, or a ``serve.shard.add`` re-using a retired
       index, would mean the router kept feeding an enclave the
       autoscaler already tore down.
    3. **Re-homing conservation** — every request id listed in a
       ``serve.shard.retire`` event's ``drained_request_ids`` must
       re-surface as exactly a submit (re-homed onto a surviving shard)
       or a shed; :meth:`finish` flags any id that simply vanished.

    Vacuously green on runs that never scale.
    """

    name = "scaling-sanity"

    def __init__(self) -> None:
        self._quarantined: set[int] = set()
        self._retired: set[int] = set()
        self._pending_rehome: set[Any] = set()
        self._last_t = 0.0

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        fields = event.fields
        if event.name == "serve.shard.quarantine":
            self._quarantined.add(fields.get("shard"))
        elif event.name in ("serve.shard.readmit", "serve.shard.dead"):
            self._quarantined.discard(fields.get("shard"))
        elif event.name == "autoscale.spawn":
            self._last_t = event.t_cycles
            if self._quarantined:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"shard {fields.get('shard')} spawned while shard(s) "
                    f"{sorted(self._quarantined)} are quarantined",
                )
        elif event.name == "serve.shard.retire":
            self._last_t = event.t_cycles
            shard = fields.get("shard")
            if shard in self._retired:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"shard {shard} retired twice",
                )
            self._retired.add(shard)
            self._pending_rehome.update(fields.get("drained_request_ids", ()))
        elif event.name == "serve.shard.add":
            shard = fields.get("shard")
            if shard in self._retired:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"retired shard {shard} re-added to the routing set",
                )
        elif event.name == "serve.request.submit":
            shard = fields.get("shard")
            if shard in self._retired:
                auditor.report(
                    self.name,
                    event.t_cycles,
                    f"request {fields.get('request_id')} enqueued on shard "
                    f"{shard} after its retirement",
                )
            self._pending_rehome.discard(fields.get("request_id"))
        elif event.name == "serve.request.shed":
            self._pending_rehome.discard(fields.get("request_id"))

    def finish(self, auditor: "InvariantAuditor", snapshot: "LedgerSnapshot | None") -> None:
        if self._pending_rehome:
            lost = sorted(str(rid) for rid in self._pending_rehome)
            auditor.report(
                self.name,
                self._last_t,
                f"{len(lost)} drained request(s) never re-homed or shed "
                f"after shard retirement: {lost[:5]}"
                + ("…" if len(lost) > 5 else ""),
            )


class ObsAnomalyChecker(Checker):
    """Observability: surface ``obs.anomaly`` events as diagnostics.

    Anomalies are *signals*, not invariant violations — a flash crowd
    legitimately breaches its lane's EWMA band — so this checker reports
    through the auditor's diagnostic channel: the verdict text carries
    them, ``ok`` does not.  Audited runs with no sampler attached emit
    no ``obs.anomaly`` events and stay silent here.
    """

    name = "obs-anomaly"

    def on_event(self, event: TelemetryEvent, auditor: "InvariantAuditor") -> None:
        if event.name != "obs.anomaly":
            return
        fields = event.fields
        auditor.report_diagnostic(
            self.name,
            event.t_cycles,
            f"{fields.get('lane')}/{fields.get('metric')} "
            f"{fields.get('kind')} at window {fields.get('window')} "
            f"(value {fields.get('value', 0.0):.4g}, "
            f"z {fields.get('z', 0.0):.2f})",
        )


def default_checkers() -> list[Checker]:
    """One fresh instance of every stock checker."""
    return [
        ConservationChecker(),
        ImmediateFallbackChecker(),
        ConfigPhaseChecker(),
        ArgminChecker(),
        RecoveryChecker(),
        RouterConservationChecker(),
        QuarantineRoutingChecker(),
        SpanConservationChecker(),
        ScalingSanityChecker(),
        ObsAnomalyChecker(),
    ]


class InvariantAuditor:
    """Runs a set of checkers over one cell's event stream.

    Args:
        cell: Label of the cell being audited (for violation messages).
        n_cpus: Logical CPU count of the simulated machine (``N`` in the
            paper's ``N/2 + 1``); None disables the absolute probe-count
            check.
        workers_cap: Size of the zc worker pool, which caps the probe
            sweep; resolved lazily from the live capture's backend when
            not given (replay passes it from the JSONL meta line).
        capture: The live :class:`CellCapture`, when auditing on the bus;
            enables the (live-only) conservation checker.
        checkers: Checker instances to run; defaults to
            :func:`default_checkers`.
        halt_on_violation: Detach from the bus on the first violation —
            turns every checker one-shot (and exercises the bus's
            unsubscribe-during-emit guarantee).
        recent_window: How many recent events each violation's ``window``
            context keeps.
    """

    def __init__(
        self,
        cell: str = "?",
        n_cpus: int | None = None,
        workers_cap: int | None = None,
        capture: "CellCapture | None" = None,
        checkers: Sequence[Checker] | None = None,
        halt_on_violation: bool = False,
        recent_window: int = 8,
    ) -> None:
        self.cell = cell
        self.n_cpus = n_cpus
        self.workers_cap = workers_cap
        self.capture = capture
        self.checkers = list(checkers) if checkers is not None else default_checkers()
        self.halt_on_violation = halt_on_violation
        self.violations: list[Violation] = []
        #: Non-failing observations (anomaly verdicts and the like):
        #: rendered with the verdict but never counted against ``ok``.
        self.diagnostics: list[Violation] = []
        self._recent: deque[TelemetryEvent] = deque(maxlen=recent_window)
        self._bus: EventBus | None = None

    # ------------------------------------------------------------------
    # Bus lifecycle (live mode)
    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "InvariantAuditor":
        """Subscribe to ``bus``; every emit flows through the checkers."""
        bus.subscribe(self.on_event)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus (idempotent; safe mid-emit)."""
        if self._bus is not None:
            self._bus.unsubscribe(self.on_event)
            self._bus = None

    # ------------------------------------------------------------------
    # Event flow
    # ------------------------------------------------------------------
    def on_event(self, event: TelemetryEvent) -> None:
        """Feed one event to every checker (bus subscriber entry point)."""
        self._recent.append(event)
        for checker in self.checkers:
            checker.on_event(event, self)

    def feed(self, events: Sequence[TelemetryEvent]) -> "InvariantAuditor":
        """Replay a pre-recorded stream through the checkers."""
        for event in events:
            self.on_event(event)
        return self

    def report(self, checker: str, t_cycles: float, message: str) -> None:
        """Record one violation (checkers call this)."""
        self.violations.append(
            Violation(
                checker=checker,
                cell=self.cell,
                t_cycles=t_cycles,
                message=message,
                window=tuple(f"{e.t_cycles:.0f}:{e.name}" for e in self._recent),
            )
        )
        if self.halt_on_violation:
            self.detach()  # unsubscribes during the in-flight emit

    def report_diagnostic(self, checker: str, t_cycles: float, message: str) -> None:
        """Record a non-failing observation (diagnostic checkers call this)."""
        self.diagnostics.append(
            Violation(
                checker=checker,
                cell=self.cell,
                t_cycles=t_cycles,
                message=message,
            )
        )

    def finish(self, snapshot: "LedgerSnapshot | None" = None) -> list[Violation]:
        """Detach and run end-of-stream checks; returns all violations."""
        self.detach()
        if snapshot is None and self.capture is not None:
            snapshot = self.capture.snapshot
        for checker in self.checkers:
            checker.finish(self, snapshot)
        return self.violations

    # ------------------------------------------------------------------
    # Context resolution
    # ------------------------------------------------------------------
    def expected_probe_count(self) -> int | None:
        """``min(N/2, pool size) + 1`` — the paper's probe sweep length."""
        if self.n_cpus is None:
            return None
        cap = self.workers_cap
        if cap is None:
            capture = self.capture
            enclave = capture.enclave if capture is not None else None
            backend = getattr(enclave, "backend", None)
            workers = getattr(backend, "workers", None)
            if workers is None:
                return None
            self.workers_cap = cap = len(workers)
        return min(self.n_cpus // 2, cap) + 1

    @property
    def ok(self) -> bool:
        """True when no checker reported a violation."""
        return not self.violations

    def render(self) -> str:
        """Human-readable verdict for reports and CLI output."""
        if self.ok:
            lines = [f"{self.cell}: all invariants hold"]
        else:
            lines = [f"{self.cell}: {len(self.violations)} violation(s)"]
            lines.extend(f"  - {violation}" for violation in self.violations)
        if self.diagnostics:
            lines.append(f"  {len(self.diagnostics)} diagnostic note(s):")
            lines.extend(f"  ~ {note}" for note in self.diagnostics)
        return "\n".join(lines)


def attach_auditor(
    capture: "CellCapture",
    checkers: Sequence[Checker] | None = None,
    halt_on_violation: bool = False,
) -> InvariantAuditor:
    """Put a live auditor on one cell's bus (the fixture entry point).

    Call while the cell is live (right after the session attaches it);
    call :meth:`InvariantAuditor.finish` after ``Stack.finish()`` has
    finalized the capture so the conservation checker sees the final
    snapshot.
    """
    assert capture.kernel is not None, "attach_auditor needs a live capture"
    auditor = InvariantAuditor(
        cell=capture.label,
        n_cpus=len(capture.kernel.cpus),
        capture=capture,
        checkers=checkers,
        halt_on_violation=halt_on_violation,
    )
    return auditor.attach(capture.bus)
