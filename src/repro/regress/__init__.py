"""Regression sentinel: run snapshots, statistical diffs, invariant audit.

The telemetry layer (PR 1) makes every run emit a cycle ledger, an event
stream and a metrics registry; this package *consumes* those artifacts
across runs:

- :mod:`repro.regress.snapshot` — ``repro baseline`` captures a run's
  cycle-ledger categories, metrics, shape verdicts and (optionally)
  ``BENCH_meta.json`` into one schema-stamped JSON file;
- :mod:`repro.regress.diff` — ``repro diff`` compares two snapshots (or
  re-runs the baseline's experiments) and reports per-category cycle
  deltas and per-metric changes with bootstrap confidence intervals,
  exiting non-zero on confirmed regressions;
- :mod:`repro.regress.audit` — paper-level scheduler invariants checked
  live on the telemetry :class:`~repro.telemetry.events.EventBus`;
- :mod:`repro.regress.replay` — the same checkers over an exported JSONL
  event log.

See the "Regression workflow" section of ``docs/observability.md``.
"""

from repro.regress.audit import (
    ArgminChecker,
    Checker,
    ConfigPhaseChecker,
    ConservationChecker,
    ImmediateFallbackChecker,
    InvariantAuditor,
    ObsAnomalyChecker,
    QuarantineRoutingChecker,
    RecoveryChecker,
    RouterConservationChecker,
    ScalingSanityChecker,
    SpanConservationChecker,
    Violation,
    attach_auditor,
    default_checkers,
)
from repro.regress.diff import DiffEntry, DiffReport, bootstrap_rel_delta, diff_snapshots
from repro.regress.replay import audit_jsonl, read_events_jsonl
from repro.regress.snapshot import capture_run, load_snapshot, save_snapshot

__all__ = [
    "ArgminChecker",
    "Checker",
    "ConfigPhaseChecker",
    "ConservationChecker",
    "DiffEntry",
    "DiffReport",
    "ImmediateFallbackChecker",
    "InvariantAuditor",
    "ObsAnomalyChecker",
    "QuarantineRoutingChecker",
    "RecoveryChecker",
    "RouterConservationChecker",
    "ScalingSanityChecker",
    "SpanConservationChecker",
    "Violation",
    "attach_auditor",
    "audit_jsonl",
    "bootstrap_rel_delta",
    "capture_run",
    "default_checkers",
    "diff_snapshots",
    "load_snapshot",
    "read_events_jsonl",
    "save_snapshot",
]
