"""Replay exported JSONL event logs through the invariant auditor.

The JSONL exporter writes one schema-stamp line, then every bus event
(plus synthesized ``ocall.complete`` lines) tagged with its cell, then
one ``telemetry.meta`` line per cell carrying the machine context.  This
module reads that artifact back into per-cell
:class:`~repro.telemetry.events.TelemetryEvent` streams — refusing
unstamped or version-mismatched files — and runs the audit checkers over
them, so an invariant violation can be diagnosed from a CI artifact long
after the run that produced it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.regress.audit import Checker, InvariantAuditor
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.schema import SchemaMismatch, check_stamp


@dataclass
class CellStream:
    """One cell's replayed events plus its trailing meta context."""

    label: str
    events: list[TelemetryEvent] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def n_cpus(self) -> int | None:
        """Logical CPU count recorded by the exporter's meta line."""
        return self.meta.get("n_cpus")

    @property
    def workers_cap(self) -> int | None:
        """zc worker-pool size from the meta line's backend stats."""
        stats = self.meta.get("backend_stats") or {}
        return stats.get("workers_cap")


def read_events_jsonl(path: str) -> dict[str, CellStream]:
    """Parse an exported event log into per-cell streams, in file order.

    Raises :class:`~repro.telemetry.schema.SchemaMismatch` when the file
    is missing its leading ``telemetry.schema`` stamp or was written by an
    incompatible schema version.
    """
    cells: dict[str, CellStream] = {}
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        try:
            header = json.loads(first) if first.strip() else {}
        except json.JSONDecodeError:
            header = {}
        if header.get("event") != "telemetry.schema":
            raise SchemaMismatch(
                f"{path}: no telemetry.schema stamp on line 1 "
                "(unstamped artifacts predate the regression schema; re-export)"
            )
        check_stamp(header, "events-jsonl", source=path)
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            name = record.get("event", "")
            if name == "telemetry.schema":
                continue
            label = record.get("cell", "")
            stream = cells.get(label)
            if stream is None:
                stream = cells[label] = CellStream(label)
            if name == "telemetry.meta":
                stream.meta = record
                continue
            fields = {
                key: value
                for key, value in record.items()
                if key not in ("t_cycles", "cell", "event")
            }
            stream.events.append(
                TelemetryEvent(record.get("t_cycles", 0.0), name, fields)
            )
    return cells


def audit_jsonl(
    path: str, checkers_factory=None
) -> dict[str, InvariantAuditor]:
    """Run the invariant checkers over every cell of an exported log.

    ``checkers_factory`` builds a fresh checker list per cell (defaults
    to the stock set; the conservation checker is inert in replay — the
    artifact carries events, not the ledger).  Returns one finished
    auditor per cell, keyed by label.
    """
    auditors: dict[str, InvariantAuditor] = {}
    for label, stream in read_events_jsonl(path).items():
        checkers: Sequence[Checker] | None = (
            checkers_factory() if checkers_factory is not None else None
        )
        auditor = InvariantAuditor(
            cell=label,
            n_cpus=stream.n_cpus,
            workers_cap=stream.workers_cap,
            checkers=checkers,
        )
        auditor.feed(stream.events)
        auditor.finish()
        auditors[label] = auditor
    return auditors
