"""Run snapshots: everything ``repro diff`` needs, as one JSON file.

``capture_run`` executes a set of experiments with telemetry attached
(fanned out over :class:`repro.parallel.CellRunner` via each module's
``run(jobs=...)``, result cache disabled so every cell actually runs)
and collects, per repeat:

- per-cell cycle-ledger categories (wall and work cycles) and simulated
  end time, from each cell's :class:`~repro.telemetry.ledger.LedgerSnapshot`;
- the experiment's metrics registry (counters, gauges, histogram
  quantiles), flattened to ``name{label=value,...}`` keys;
- the experiment's shape-check verdicts (the paper-shape violations);
- optionally an existing ``BENCH_meta.json``, embedded for trajectory
  tracking (host-throughput numbers are machine-dependent, so the diff
  treats them as informational).

Repeats are the bootstrap resampling unit: the simulator is
deterministic per parameter set, so repeated identical runs give
zero-width confidence intervals, while perturbed runs (different seeds /
parameters) widen them honestly.  Snapshots are stamped with the
artifact schema version and refuse to diff against mismatched inputs.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Any, Mapping, Sequence

from repro.experiments import EXPERIMENTS
from repro.faults import FaultPlan, activate_plan
from repro.telemetry.ledger import CATEGORIES
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.schema import check_stamp, stamp
from repro.telemetry.session import TelemetrySession

#: Artifact kind recorded in every snapshot's stamp.
SNAPSHOT_ARTIFACT = "run-snapshot"

#: Default location of committed baselines.
DEFAULT_BASELINE_DIR = "baselines"


def _labels_key(name: str, labels: Sequence[tuple[str, str]], suffix: str = "") -> str:
    body = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{suffix}{{{body}}}"


def _registry_values(registry: MetricsRegistry) -> dict[str, float]:
    """Flatten a metrics registry to scalar samples.

    Counters and gauges contribute their value; histograms contribute
    their p50/p95/p99 and count — the quantities the exporters publish,
    and therefore the ones worth guarding.
    """
    values: dict[str, float] = {}
    for counter in registry.counters:
        values[_labels_key(counter.name, counter.labels)] = counter.value
    for gauge in registry.gauges:
        values[_labels_key(gauge.name, gauge.labels)] = gauge.value
    for histogram in registry.histograms:
        summary = histogram.summary()
        for key in ("p50", "p95", "p99", "count"):
            values[_labels_key(histogram.name, histogram.labels, f".{key}")] = summary[key]
    return values


def _merge_samples(into: dict[str, list[float]], values: Mapping[str, float]) -> None:
    for key, value in values.items():
        into.setdefault(key, []).append(round(float(value), 3))


def capture_run(
    experiment_ids: Sequence[str] | None = None,
    overrides: Mapping[str, Mapping[str, Any]] | None = None,
    quick: bool = True,
    jobs: int | str = 1,
    repeats: int = 1,
    bench_meta_path: str | None = None,
    name: str = "run",
    fault_plan: FaultPlan | None = None,
) -> dict[str, Any]:
    """Execute the experiments and build a snapshot document.

    ``overrides`` maps experiment id to ``run()`` kwargs (the CLI passes
    its quick presets).  Each repeat runs every experiment once; samples
    accumulate per (cell, category) and per metric so the diff can
    bootstrap over them.

    ``fault_plan`` runs every cell under that fault plan (see
    :mod:`repro.faults`): ``build_stack`` attaches one injector per
    cell, the snapshot records the plan, and ``diff_snapshots`` refuses
    to compare snapshots whose plans differ.  Fault plans force
    ``jobs=1`` — the active-plan stack is process-global, and serial
    cells keep the injected schedule deterministic.
    """
    ids = list(experiment_ids) if experiment_ids is not None else list(EXPERIMENTS)
    if fault_plan is not None:
        jobs = 1
    overrides = overrides or {}
    experiments: dict[str, Any] = {}
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {exp_id!r}")
        experiments[exp_id] = {"violations": [], "cells": {}, "metrics": {}}

    for _ in range(repeats):
        for exp_id in ids:
            module = EXPERIMENTS[exp_id]
            kwargs = dict(overrides.get(exp_id, {}))
            record = experiments[exp_id]
            plan_scope = (
                activate_plan(fault_plan)
                if fault_plan is not None
                else contextlib.nullcontext()
            )
            with TelemetrySession() as session, plan_scope:
                # cache=None: a cache hit would skip the cell and capture
                # nothing; a snapshot must observe every cell live.
                result = module.run(**kwargs, jobs=jobs, cache=None)
            record["violations"].append(module.check_shape(result))
            for capture in session.captures:
                snapshot = capture.snapshot
                if snapshot is None:
                    continue
                cell = record["cells"].setdefault(
                    capture.label,
                    {
                        "n_cpus": snapshot.n_cpus,
                        "backend": capture.backend_stats.get("backend", "regular"),
                        "now_cycles": [],
                        "wall_by_category": {cat: [] for cat in CATEGORIES},
                        "work_by_category": {},
                    },
                )
                cell["now_cycles"].append(round(snapshot.now_cycles, 3))
                for category in CATEGORIES:
                    cell["wall_by_category"][category].append(
                        round(snapshot.wall_by_category.get(category, 0.0), 3)
                    )
                for category, cycles in snapshot.work_by_category.items():
                    cell["work_by_category"].setdefault(category, []).append(
                        round(cycles, 3)
                    )
            _merge_samples(record["metrics"], _registry_values(session.registry))

    bench_meta = None
    if bench_meta_path is not None:
        with open(bench_meta_path, "r", encoding="utf-8") as handle:
            bench_meta = json.load(handle)

    return {
        **stamp(SNAPSHOT_ARTIFACT),
        "name": name,
        "created_unix": int(time.time()),
        "quick": quick,
        "repeats": repeats,
        "experiment_ids": ids,
        "experiments": experiments,
        "bench_meta": bench_meta,
        "fault_plan": fault_plan.to_dict() if fault_plan is not None else None,
    }


def save_snapshot(snapshot: Mapping[str, Any], path: str) -> str:
    """Write a snapshot document as pretty-printed JSON; returns ``path``."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> dict[str, Any]:
    """Read a snapshot, refusing unstamped or mismatched files."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    check_stamp(document, SNAPSHOT_ARTIFACT, source=path)
    return document
