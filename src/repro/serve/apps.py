"""Served-app adapters: in-enclave applications behind the router.

Each adapter implements the :class:`repro.serve.shard.ServedApp`
protocol, binding one enclave application to the serve layer's canonical
request vocabulary:

========= =========================== ============================ ===========================
op        ``kv``                      ``session``                  ``crypto``
========= =========================== ============================ ===========================
``get``   ``kv_get`` lookup           ``sess_get`` (LRU touch)     decrypt the key's file slot
``set``   ``kv_set`` (WAL append)     ``sess_set`` (may spill)     encrypt the key's file slot
``delete`` ``kv_delete`` (WAL append) ``sess_delete``              *(unsupported)*
``size``  ``kv_size``                 ``sess_size``                ``crypto_stats``
========= =========================== ============================ ===========================

One shard enclave can host several apps at once — each registers its own
ecall names — so a single traffic mix exercises the paper's short-call
(KV, session) and long-call (crypto pipeline) ocall profiles through one
switchless worker pool.  Keeping every op name uniform across apps is
what lets a scenario trace say just ``{"app": ..., "op": ...}``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.apps import (
    CryptoServiceClient,
    CryptoServiceEnclave,
    KvClient,
    KvServerEnclave,
    SessionClient,
    SessionStoreEnclave,
)
from repro.serve.shard import ServedApp
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.api import Runtime
    from repro.serve.router import Request

#: App names accepted by ``--apps`` and scenario specs, in canonical
#: order (the first entry is a shard's default/probe app).
APP_CHOICES = ("kv", "session", "crypto")
DEFAULT_APPS = ("kv",)


class KvServedApp(ServedApp):
    """The WAL-backed KV server as a served app (the classic shard)."""

    name = "kv"

    def __init__(self, runtime: "Runtime", *, wal_path: str = "/kv.wal") -> None:
        self.server = KvServerEnclave(runtime.enclave, wal_path=wal_path)
        self.client = KvClient(runtime.enclave)

    def start(self) -> Program:
        replayed = yield from self.server.start()
        return replayed

    def handle(self, request: "Request") -> Program:
        if request.op == "get":
            result = yield from self.client.get(request.key)
        elif request.op == "set":
            result = yield from self.client.set(request.key, request.value or b"")
        elif request.op == "delete":
            result = yield from self.client.delete(request.key)
        elif request.op == "size":
            result = yield from self.client.size()
        else:
            raise ValueError(f"kv app: unknown request op {request.op!r}")
        return result

    def probe(self) -> Program:
        result = yield from self.client.size()
        return result

    def describe(self) -> dict[str, Any]:
        return {"mutations": self.server.mutations}


class SessionServedApp(ServedApp):
    """The capacity-bounded LRU session cache as a served app."""

    name = "session"

    def __init__(
        self,
        runtime: "Runtime",
        *,
        capacity: int = 512,
        spill_path: str = "/sessions.spill",
    ) -> None:
        self.server = SessionStoreEnclave(
            runtime.enclave, capacity=capacity, spill_path=spill_path
        )
        self.client = SessionClient(runtime.enclave)

    def start(self) -> Program:
        recovered = yield from self.server.start()
        return recovered

    def handle(self, request: "Request") -> Program:
        if request.op == "get":
            result = yield from self.client.get(request.key)
        elif request.op == "set":
            result = yield from self.client.set(request.key, request.value or b"")
        elif request.op == "delete":
            result = yield from self.client.delete(request.key)
        elif request.op == "size":
            result = yield from self.client.size()
        else:
            raise ValueError(f"session app: unknown request op {request.op!r}")
        return result

    def probe(self) -> Program:
        result = yield from self.client.size()
        return result

    def describe(self) -> dict[str, Any]:
        return {
            "live": self.server.live,
            "evictions": self.server.evictions,
            "spilled_bytes": self.server.spilled_bytes,
            "misses": self.server.misses,
        }


class CryptoServedApp(ServedApp):
    """The file-encryption pipeline as a served app (long-call profile).

    ``set`` encrypts the key's file slot, ``get`` decrypts its
    pre-encrypted input — each request runs a whole
    :class:`repro.apps.cryptofile.CryptoFileApp` pass, so its ocalls
    marshal full chunks (and ciphertext stays IV-misaligned).
    Construction seeds the slot files on the shard's host filesystem;
    ``delete`` is not part of this app's vocabulary.
    """

    name = "crypto"

    def __init__(self, runtime: "Runtime", **service_kwargs: Any) -> None:
        self.service = CryptoServiceEnclave(runtime.enclave, **service_kwargs)
        self.service.seed_files(runtime.fs)
        self.client = CryptoServiceClient(runtime.enclave)

    def start(self) -> Program:
        # Slot files are seeded host-side at construction time; nothing
        # to recover.
        return 0
        yield  # pragma: no cover - keeps this a generator

    def handle(self, request: "Request") -> Program:
        if request.op == "get":
            result = yield from self.client.decrypt(request.key)
        elif request.op == "set":
            result = yield from self.client.encrypt(request.key)
        elif request.op == "size":
            result = yield from self.client.stats()
        else:
            raise ValueError(f"crypto app: unsupported request op {request.op!r}")
        return result

    def probe(self) -> Program:
        result = yield from self.client.stats()
        return result

    def describe(self) -> dict[str, Any]:
        return {
            "encrypts": self.service.encrypts,
            "decrypts": self.service.decrypts,
            "chunks_encrypted": self.service.pipeline.chunks_encrypted,
            "chunks_decrypted": self.service.pipeline.chunks_decrypted,
        }


def validate_app_names(names: tuple[str, ...]) -> tuple[str, ...]:
    """Check ``names`` against :data:`APP_CHOICES`; returns them back."""
    if not names:
        raise ValueError("app list must name at least one served app")
    for name in names:
        if name not in APP_CHOICES:
            raise ValueError(
                f"unknown served app {name!r} (choices: {', '.join(APP_CHOICES)})"
            )
    if len(set(names)) != len(names):
        raise ValueError("served app names must be unique")
    return tuple(names)


def make_apps(
    names: tuple[str, ...],
    runtime: "Runtime",
    *,
    wal_path: str = "/kv.wal",
) -> dict[str, ServedApp]:
    """Build the served-app set for one shard, in the order given.

    The first name becomes the shard's default and probe app, so every
    shard in a cluster should receive the same order (the bench does).
    """
    validate_app_names(names)
    apps: dict[str, ServedApp] = {}
    for name in names:
        if name == "kv":
            apps[name] = KvServedApp(runtime, wal_path=wal_path)
        elif name == "session":
            apps[name] = SessionServedApp(runtime)
        else:
            apps[name] = CryptoServedApp(runtime)
    return apps
