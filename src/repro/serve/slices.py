"""Slice-parallel serving simulation: shards partitioned over processes.

``repro serve bench --slices N`` splits an S-shard cluster into N
*slices*, each simulating its subset of shards in its own forked process,
and merges the per-slice artifacts into one ``serve-bench`` result.  This
is how the simulator scales past one host core: the serve layer's shards
share nothing but the router, so the simulation itself is shard-parallel.

**Why the merge is exact.**  Placement is rendezvous hashing over the
*global* shard index (:func:`repro.serve.router._rendezvous_score`), so
every key has one owner shard, computable without running anything.  Each
slice draws the *identical* seeded open-loop arrival schedule — same
Poisson gaps, ops, keys and tenants — and admits exactly the arrivals
whose owner shard it hosts (the :class:`~repro.serve.loadgen.LoadGenerator`
``admit`` hook skips the rest without disturbing the RNG stream).  The
result is a conservative time-sync parallel simulation with *infinite
lookahead* at the router boundary: no event in one slice can ever affect
another slice, so no slice ever needs to wait, and merging is the plain
superposition of the per-slice timelines — counters sum, latency samples
pool, and the merged clock is the maximum of the slice clocks.  The
merge order is fixed (slice 0, 1, …, N-1) regardless of process
completion order, so the merged artifact is byte-deterministic.

**What slicing models.**  Each slice builds its own
:class:`~repro.sim.Kernel` and full simulated machine, so ``--slices N``
models the shards spread over N hosts rather than contending for one
host's cores.  With light per-shard load (no CPU contention between
shards) a sliced run reproduces the unsliced per-shard outcomes exactly —
``tests/serve/test_slices.py`` locks that in.  Restrictions: open loop
only, ``policy="hash"`` only (round-robin placement depends on global
arrival interleaving), and a worker ``budget`` is split across slices
proportionally to their shard counts.

Execution reuses :class:`repro.parallel.runner.CellRunner` — the same
fork pool, spec-order result collection and cross-process telemetry
absorption every experiment grid uses; slices are just one more
registered cell kind (``serve-slice``).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Callable

from repro.analysis.metrics import LatencyRecorder
from repro.api import BenchSpec, ServeSpec, SpecError
from repro.parallel.cells import CellSpec, cell
from repro.parallel.runner import CellRunner
from repro.serve.router import _rendezvous_score
from repro.sim.machine import MachineSpec, server_machine
from repro.telemetry.schema import stamp


def slice_shard_ids(shards: int, slices: int) -> list[tuple[int, ...]]:
    """Partition global shard indices round-robin across slices.

    Shard ``j`` goes to slice ``j % slices`` — balanced to within one
    shard, and stable under growing the shard count.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if not 1 <= slices <= shards:
        raise ValueError(f"slices must be in [1, {shards}] for {shards} shards")
    return [tuple(range(start, shards, slices)) for start in range(slices)]


def owner_shard(key: bytes, shards: int) -> int:
    """The global rendezvous winner for ``key`` over ``shards`` shards.

    Must match :meth:`repro.serve.router.Router._pick` with every shard
    healthy: ``max`` over ascending shard index of the keyed digest.
    """
    return max(range(shards), key=lambda index: _rendezvous_score(key, index))


def make_admit(shard_ids: tuple[int, ...], shards: int) -> Callable[[bytes], bool]:
    """Admit predicate: does this slice own the key's rendezvous winner?"""
    owned = frozenset(shard_ids)
    return lambda key: owner_shard(key, shards) in owned


def split_budget(budget: int | None, partitions: list[tuple[int, ...]], shards: int) -> list[int | None]:
    """Split a fleet-wide worker budget across slices by shard share.

    Largest-remainder apportionment with ties to the lower slice index;
    every slice gets at least 1.  ``None`` stays ``None`` everywhere.
    """
    if budget is None:
        return [None] * len(partitions)
    shares = [budget * len(ids) / shards for ids in partitions]
    floors = [max(1, int(share)) for share in shares]
    leftover = budget - sum(floors)
    remainders = sorted(
        range(len(partitions)),
        key=lambda i: (-(shares[i] - int(shares[i])), i),
    )
    for i in remainders:
        if leftover <= 0:
            break
        floors[i] += 1
        leftover -= 1
    return floors


# ----------------------------------------------------------------------
# Cell execution (runs in the pool worker)
# ----------------------------------------------------------------------
def run_cell(spec: CellSpec) -> dict[str, Any]:
    """Execute one slice; returns the slice row (registry: ``serve-slice``).

    The cell carries its whole configuration as one serialized
    :class:`repro.api.BenchSpec` (``spec_json``) plus the slice plumbing
    (global shard count, owned shard ids, repo root, audit flag).  The
    row carries the full per-slice serve artifact plus the raw latency
    samples the parent needs for the percentile merge, and — with
    ``audit=True`` — the live invariant auditor's verdicts for this
    slice's kernel.
    """
    kw = spec.kwargs
    from repro.serve.bench import run_bench

    bench_spec = BenchSpec.from_json(kw["spec_json"])
    shard_ids = tuple(kw["shard_ids"])
    shards = kw["shards"]
    raw: dict[str, Any] = {}
    plumbing = dict(
        shard_ids=shard_ids,
        admit=make_admit(shard_ids, shards),
        raw_sink=raw,
        root=kw.get("root", "."),
    )
    audit_cells: list[dict[str, Any]] = []
    if kw["audit"]:
        from repro.regress import attach_auditor
        from repro.telemetry.session import TelemetrySession

        auditors: list[Any] = []
        with TelemetrySession(
            on_attach=lambda capture: auditors.append(attach_auditor(capture))
        ) as session:
            result = run_bench(bench_spec, telemetry=session, **plumbing)
        for auditor in auditors:
            auditor.finish()
            audit_cells.append(
                {
                    "cell": f"slice-{kw['slice_index']}:{auditor.cell}",
                    "ok": auditor.ok,
                    "violations": [str(v) for v in auditor.violations],
                }
            )
    else:
        result = run_bench(bench_spec, telemetry=False, **plumbing)
    return {
        "slice": kw["slice_index"],
        "shard_ids": list(shard_ids),
        "result": result,
        "raw": raw,
        "audit": audit_cells,
    }


# ----------------------------------------------------------------------
# Orchestration (parent process)
# ----------------------------------------------------------------------
def slice_cells(
    spec: BenchSpec,
    *,
    root: str = ".",
    audit: bool = False,
) -> list[CellSpec]:
    """The sliced run as cell specs — one ``serve-slice`` cell per slice.

    Each cell receives a complete per-slice :class:`repro.api.BenchSpec`
    (``slices=1``, worker budget apportioned by shard share, the fault
    plan only in the slice owning the faulted shard) serialized through
    :meth:`~repro.api.BenchSpec.to_json`, so the cell boundary speaks
    exactly the declarative schema evidence packs record.  A scenario or
    trace on the spec switches every slice from synthetic load to
    replaying the identical committed trace, admitting only the arrivals
    whose rendezvous owner it hosts — exactly like the loadgen's
    identical-schedule guarantee.
    """
    serve = spec.serve
    if serve.policy != "hash":
        raise SpecError("slice-parallel serving requires policy='hash'")
    partitions = slice_shard_ids(serve.shards, spec.slices)
    budgets = split_budget(serve.budget, partitions, serve.shards)
    specs = []
    for index, shard_ids in enumerate(partitions):
        slice_serve = dataclasses.replace(
            serve,
            budget=budgets[index],
            # The fault plan attaches only in the slice owning the
            # faulted shard; other slices run healthy.
            plan=(
                serve.plan
                if serve.plan is not None and serve.fault_shard in shard_ids
                else None
            ),
        )
        slice_spec = dataclasses.replace(
            spec,
            serve=slice_serve,
            slices=1,
            # Contracts evaluate over the merged artifact in the parent,
            # never over a single slice's partial view.
            contracts=None,
        )
        specs.append(
            cell(
                "serve-slice",
                index,
                slice_index=index,
                shards=serve.shards,
                shard_ids=shard_ids,
                spec_json=slice_spec.to_json(),
                root=root,
                audit=audit,
            )
        )
    return specs


def run_slice_bench(
    spec: BenchSpec | int | None = None,
    slices: int | None = None,
    seconds: float = 2.0,
    backend: str = "zc",
    *,
    machine: MachineSpec | None = None,
    root: str = ".",
    audit: bool = False,
    jobs: int | str | None = None,
    contracts: list | None = None,
    **legacy: Any,
) -> dict[str, Any]:
    """Run the serve bench slice-parallel; returns one merged artifact.

    Takes a :class:`repro.api.BenchSpec` with ``slices > 1`` (this is
    what :func:`repro.serve.bench.run_bench` dispatches to).  The merged
    artifact has the regular ``serve-bench`` stamp and shape (so
    :func:`repro.serve.bench.compare_to_baseline` gates it as usual)
    plus a ``slices`` section with per-slice provenance and — with
    ``audit=True`` — an ``audit`` section aggregating every slice's live
    invariant verdicts.

    The pre-spec keyword signature ``run_slice_bench(shards, slices,
    ...)`` still works but warns :class:`DeprecationWarning`.
    """
    if isinstance(spec, BenchSpec):
        if slices is not None or legacy:
            raise SpecError(
                "run_slice_bench(spec) takes no extra bench keywords; put "
                "them on the BenchSpec"
            )
        bench_spec = spec
    else:
        warnings.warn(
            "run_slice_bench(shards, slices, ...) is deprecated; construct "
            "a repro.api.BenchSpec with slices=N and call Runtime.serve(spec)"
            " (or repro.serve.bench.run_bench)",
            DeprecationWarning,
            stacklevel=2,
        )
        bench_spec = _legacy_slice_spec(
            shards=spec if spec is not None else legacy.pop("shards"),
            slices=slices if slices is not None else legacy.pop("slices"),
            seconds=seconds,
            backend=backend,
            **legacy,
        )
    specs = slice_cells(bench_spec, root=root, audit=audit)
    runner = CellRunner(jobs="auto" if jobs is None else jobs)
    rows = [outcome.row for outcome in runner.run(specs)]
    spec_machine = machine if machine is not None else server_machine()
    if contracts is None and bench_spec.contracts is not None:
        from repro.slo import load_contracts

        contracts = load_contracts(bench_spec.contracts)
    return merge_slice_results(
        rows, spec_machine, contracts=contracts, spec=bench_spec
    )


def _legacy_slice_spec(
    *,
    shards: int,
    slices: int,
    seconds: float = 2.0,
    backend: str = "zc",
    rate: float = 2_000.0,
    policy: str = "hash",
    admission: str = "shed",
    queue_capacity: int = 64,
    servers_per_shard: int = 2,
    budget: int | None = None,
    plan: str | None = None,
    fault_shard: int = 0,
    keydist: str = "uniform",
    keyspace: int = 256,
    set_fraction: float = 1.0 / 3.0,
    seed: int = 0,
    tenants: dict[str, float] | None = None,
    obs: bool = False,
    obs_interval: float | None = None,
    apps: tuple[tuple[str, float], ...] | None = None,
    trace_path: str | None = None,
) -> BenchSpec:
    """The old keyword surface folded into one :class:`BenchSpec`."""
    serve = ServeSpec(
        shards=shards,
        backend=backend,
        policy=policy,
        admission=admission,
        queue_capacity=queue_capacity,
        servers_per_shard=servers_per_shard,
        budget=budget,
        plan=plan,
        fault_shard=fault_shard,
        apps=tuple(tuple(pair) for pair in apps) if apps else None,
        tenants=tuple(sorted(tenants.items())) if tenants else None,
    )
    return BenchSpec(
        serve=serve,
        seconds=seconds,
        rate=rate,
        keydist=keydist,
        keyspace=keyspace,
        set_fraction=set_fraction,
        seed=seed,
        slices=slices,
        obs=obs,
        obs_interval=obs_interval,
        trace=trace_path,
    )


def merge_slice_results(
    rows: list[dict[str, Any]],
    machine: MachineSpec,
    contracts: list | None = None,
    spec: BenchSpec | None = None,
) -> dict[str, Any]:
    """Merge per-slice rows into one ``serve-bench`` artifact.

    Deterministic superposition in slice order: counters sum, latency
    samples pool (then percentiles recompute over the pooled set), the
    merged clock is the max of the slice clocks, and throughput is the
    pooled completion count over that merged clock.  ``spec`` (the
    parent's :class:`BenchSpec`, with the original ``slices`` count)
    stamps the merged artifact's ``spec`` section.
    """
    rows = sorted(rows, key=lambda row: row["slice"])
    if not rows:
        raise ValueError("nothing to merge")
    results = [row["result"] for row in rows]
    base_params = dict(results[0]["params"])

    counters = ("submitted", "completed", "shed", "failed", "rerouted",
                "preempted", "quarantines", "readmissions",
                "forecast_shed", "shards_added", "shards_retired")
    totals: dict[str, Any] = {name: 0 for name in counters}
    quarantined: list[int] = []
    dead: list[int] = []
    retired: list[int] = []
    recoveries: list[dict[str, Any]] = []
    elapsed_s = 0.0
    pooled = LatencyRecorder()
    for row in rows:
        slice_totals = row["result"]["totals"]
        for name in counters:
            totals[name] += slice_totals.get(name, 0)
        quarantined.extend(slice_totals.get("quarantined", []))
        dead.extend(slice_totals.get("dead", []))
        retired.extend(slice_totals.get("retired", []))
        recoveries.extend(slice_totals.get("recoveries", []))
        elapsed_s = max(elapsed_s, slice_totals.get("elapsed_s", 0.0))
        pooled.record_many(row["raw"].get("latency_cycles", []))

    def _us(summary: dict[str, float]) -> dict[str, float]:
        return {
            name: machine.seconds(value) * 1e6 if name != "count" else value
            for name, value in summary.items()
        }

    totals.update(
        issued=results[0]["totals"].get("issued", 0),
        elapsed_s=elapsed_s,
        throughput_rps=totals["completed"] / elapsed_s if elapsed_s > 0 else 0.0,
        latency_us=_us(pooled.summary()),
        quarantined=sorted(quarantined),
        dead=sorted(dead),
        retired=sorted(retired),
        recoveries=recoveries,
    )

    per_tenant: dict[str, Any] = {}
    tenant_samples: dict[str, LatencyRecorder] = {}
    for row in rows:
        for tenant, record in row["result"].get("per_tenant", {}).items():
            merged = per_tenant.setdefault(
                tenant,
                {"submitted": 0, "completed": 0, "shed": 0, "failed": 0},
            )
            for name in ("submitted", "completed", "shed", "failed"):
                merged[name] += record[name]
            tenant_samples.setdefault(tenant, LatencyRecorder()).record_many(
                row["raw"].get("tenant_latency_cycles", {}).get(tenant, [])
            )
    for tenant, merged in sorted(per_tenant.items()):
        recorder = tenant_samples[tenant]
        merged["throughput_rps"] = (
            merged["completed"] / elapsed_s if elapsed_s > 0 else 0.0
        )
        merged["shed_rate"] = (
            merged["shed"] / merged["submitted"] if merged["submitted"] else 0.0
        )
        merged["latency_us"] = _us(recorder.summary())
        merged["latency_notes"] = recorder.diagnostics()

    per_app: dict[str, Any] = {}
    app_samples: dict[str, LatencyRecorder] = {}
    for row in rows:
        for app, record in row["result"].get("per_app", {}).items():
            merged_app = per_app.setdefault(
                app,
                {"submitted": 0, "completed": 0, "shed": 0, "failed": 0},
            )
            for name in ("submitted", "completed", "shed", "failed"):
                merged_app[name] += record[name]
            app_samples.setdefault(app, LatencyRecorder()).record_many(
                row["raw"].get("app_latency_cycles", {}).get(app, [])
            )
    for app, merged_app in sorted(per_app.items()):
        recorder = app_samples[app]
        merged_app["throughput_rps"] = (
            merged_app["completed"] / elapsed_s if elapsed_s > 0 else 0.0
        )
        merged_app["shed_rate"] = (
            merged_app["shed"] / merged_app["submitted"]
            if merged_app["submitted"]
            else 0.0
        )
        merged_app["latency_us"] = _us(recorder.summary())
        merged_app["latency_notes"] = recorder.diagnostics()

    per_shard = sorted(
        (entry for row in rows for entry in row["result"]["per_shard"]),
        key=lambda entry: entry["shard"],
    )

    budgets = [row["result"]["budget"] for row in rows if row["result"]["budget"]]
    budget_section = (
        {
            "cap": sum(b["cap"] for b in budgets),
            "clipped": sum(b["clipped"] for b in budgets),
            "in_use": sum(b["in_use"] for b in budgets),
        }
        if budgets
        else None
    )

    spans = {
        "recorded": sum(row["result"]["spans"]["recorded"] for row in rows),
        "dropped": sum(row["result"]["spans"]["dropped"] for row in rows),
    }

    base_params.pop("shard_ids", None)
    base_params.update(
        slices=len(rows),
        slice_shards=[row["shard_ids"] for row in rows],
        budget=sum(b for b in (r["params"]["budget"] for r in results) if b)
        or base_params.get("budget"),
        plan=next(
            (r["params"]["plan"] for r in results if r["params"]["plan"]), None
        ),
    )

    fleet_rows = [row["result"].get("fleet") for row in rows]
    fleet_section: dict[str, Any] | None = None
    if all(entry is not None for entry in fleet_rows):
        fleet_section = {
            name: sum(entry[name] for entry in fleet_rows)
            for name in (
                "shards_initial",
                "shards_spawned",
                "shards_retired",
                "server_cycles",
                "worker_budget_cycles",
                "creation_cycles",
                "destruction_cycles",
                "provisioned_cycles",
            )
        }
        fleet_section["cycles_per_request"] = (
            fleet_section["provisioned_cycles"] / totals["completed"]
            if totals["completed"]
            else None
        )

    merged: dict[str, Any] = {
        "meta": stamp("serve-bench"),
        "params": base_params,
        "totals": totals,
        "per_tenant": per_tenant,
        "per_app": per_app,
        "spans": spans,
        "per_shard": per_shard,
        "budget": budget_section,
        "fleet": fleet_section,
        "slices": [
            {
                "slice": row["slice"],
                "shard_ids": row["shard_ids"],
                "elapsed_s": row["result"]["totals"]["elapsed_s"],
                "completed": row["result"]["totals"]["completed"],
                "skipped_arrivals": row["result"]["totals"].get("skipped", 0),
            }
            for row in rows
        ],
    }
    if spec is not None:
        merged["spec"] = spec.to_json()
    obs_raws = [row["raw"].get("obs") for row in rows]
    if all(raw is not None for raw in obs_raws):
        merged["obs"] = _merge_obs(obs_raws, per_shard, machine)
        merged["params"]["obs_interval"] = merged["obs"]["interval_cycles"]
    audit_cells = [entry for row in rows for entry in row.get("audit", [])]
    if audit_cells:
        merged["audit"] = {
            "ok": all(entry["ok"] for entry in audit_cells),
            "cells": audit_cells,
            "violations": sum(len(entry["violations"]) for entry in audit_cells),
        }
    if contracts:
        from repro.slo.contract import evaluate_contracts, verdicts_summary

        merged["slo"] = verdicts_summary(evaluate_contracts(merged, contracts))
    return merged


def _merge_obs(
    obs_raws: list[dict[str, Any]],
    per_shard: list[dict[str, Any]],
    machine: MachineSpec,
) -> dict[str, Any]:
    """Merge per-slice raw window streams into one ``obs`` section.

    Slice order is already fixed by the caller's row sort.  Raw windows
    superpose (integer counters sum, latency samples pool, shard lanes
    copy from their owning slice), then the *same* formatter the live
    sampler uses rebuilds the records — which is what makes the merged
    stream byte-identical to an unsliced run's (see
    :mod:`repro.obs.sampler`).  The anomaly detector replays over the
    merged records; it is deterministic over the stream, so this matches
    running it live on an unsliced kernel.
    """
    from repro.obs import AnomalyDetector
    from repro.obs.sampler import (
        build_window_records,
        merge_raw_windows,
        merge_spilled,
        shard_lane,
    )

    first = obs_raws[0]
    interval = first["interval_cycles"]
    if any(raw["interval_cycles"] != interval for raw in obs_raws):
        raise ValueError("slices disagree on the obs interval")
    merged_raw = merge_raw_windows([raw["raw_windows"] for raw in obs_raws])
    shard_lanes = [shard_lane(entry["shard"]) for entry in per_shard]
    records: list[dict[str, Any]] = []
    for raw_window in merged_raw:
        records.extend(
            build_window_records(
                raw_window,
                interval_cycles=interval,
                freq_hz=machine.freq_hz,
                shard_lanes=shard_lanes,
            )
        )
    detector = AnomalyDetector()
    anomalies = detector.observe_all(records)
    tenant_lanes = sorted(
        {
            record["lane"]
            for record in records
            if record["lane"].startswith("tenant:")
        }
    )
    return {
        "interval_cycles": interval,
        "windows": first["windows"],
        "freq_hz": machine.freq_hz,
        "lanes": ["total", *shard_lanes, *tenant_lanes],
        "records": records,
        "dropped_records": 0,
        "spilled": dict(
            sorted(merge_spilled([raw["spilled"] for raw in obs_raws]).items())
        ),
        "anomalies": anomalies,
    }
