"""The ``repro serve bench`` entry point.

Builds a sharded cluster on one shared kernel, drives it with a
:class:`repro.serve.loadgen.LoadGenerator` (or a committed trace
replay), and folds the result into a stamped ``serve-bench`` artifact
(written as ``BENCH_serve.json`` by the CLI) that the regression
sentinel can gate against a committed baseline.

The declarative surface is a :class:`repro.api.BenchSpec`:
:func:`run_bench` takes the spec plus runner plumbing (sinks, slice
hooks, a telemetry session) and nothing else.  :func:`build_cluster`
does the same for a bare cluster from a :class:`repro.api.ServeSpec`.
The historical keyword entry points (:func:`build_serve`,
:func:`run_serve_bench`) survive as DeprecationWarning shims that
construct the equivalent spec.

Everything here is deterministic per seed: same spec → identical
artifact, which is what lets CI compare against
``baselines/serve-quick.json`` with a tight threshold.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api import BenchSpec, Runtime, ServeSpec, SpecError, ZcConfig
from repro.faults import FaultInjector, FaultPlan, active_fault_plan, get_plan
from repro.serve.budget import WorkerBudgetArbiter
from repro.serve.loadgen import LoadGenerator, LoadSpec
from repro.serve.router import Router
from repro.serve.shard import EnclaveShard
from repro.sim import Kernel, MachineSpec, server_machine
from repro.sim.instructions import Sleep
from repro.telemetry.schema import check_stamp, stamp
from repro.telemetry.session import CellCapture, TelemetrySession, active_session

#: Scheduler quantum for serve shards.  Serving runs are short (seconds
#: of simulated time at most); the paper's 10 ms quantum would leave the
#: scheduler mid-first-sweep, so shards default to a faster loop.
SERVE_QUANTUM_S = 0.002


@dataclass
class ServeCluster:
    """A wired serving cluster (kernel + shards + router + arbiter)."""

    kernel: Kernel
    shards: list[EnclaveShard]
    router: Router
    arbiter: WorkerBudgetArbiter | None = None
    capture: CellCapture | None = None
    injector: FaultInjector | None = None
    #: The spec this cluster was built from (None for hand-wired ones).
    spec: ServeSpec | None = None
    #: Fleet ledger: one entry per shard ever provisioned, carrying its
    #: lifetime and modeled enclave-lifecycle cost.  The bench's fleet
    #: accounting (cycles-per-request) integrates over it.
    lifecycle: list[dict[str, Any]] = field(default_factory=list)
    _shard_factory: Callable[[int], EnclaveShard] | None = None
    _closed: bool = False

    def new_shard(self, index: int) -> EnclaveShard:
        """Create (but do not start or route) one more shard.

        The autoscaler's spawn path: the shard shares the cluster kernel,
        arbiter and app set, but the caller owns bring-up — run
        :meth:`EnclaveShard.start_program` on a kernel thread, charge
        :func:`repro.sgx.lifecycle.create_enclave`, then
        :meth:`repro.serve.router.Router.add_shard`.
        """
        if self._shard_factory is None:
            raise RuntimeError("cluster was not built from a spec")
        return self._shard_factory(index)

    def close(self) -> None:
        """Tear the cluster down in ledger order.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.injector is not None:
            self.injector.detach()
        for shard in self.shards:
            shard.stop()
            shard.runtime.close()
        self.kernel.run()
        if self.capture is not None:
            self.capture.finalize()

    def __enter__(self) -> "ServeCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def build_cluster(
    spec: ServeSpec,
    *,
    machine: MachineSpec | None = None,
    telemetry: TelemetrySession | bool | None = None,
    shard_ids: tuple[int, ...] | None = None,
    plan: FaultPlan | str | None = None,
) -> ServeCluster:
    """Wire the serving cluster a :class:`repro.api.ServeSpec` describes.

    Each shard is a full :class:`repro.api.Runtime` (own filesystem, own
    enclave, own backend worker pool) attached to the shared kernel.
    With ``spec.budget`` set — or autoscaling on — a
    :class:`WorkerBudgetArbiter` caps the fleet's aggregate switchless
    workers.  A fault plan (``plan`` argument, else ``spec.plan``, else
    the ambient plan) attaches its injector to shard
    ``spec.fault_shard``'s enclave (one injector per kernel).

    ``shard_ids`` instantiates a *subset* of a larger cluster while
    keeping global shard indices (labels, rendezvous scores, per-shard
    stats) — the slice-parallel runner (:mod:`repro.serve.slices`) builds
    one such cluster per process.  ``spec.shards`` stays the global
    count; a ``fault_shard`` outside the subset is simply not attached
    here (its owning slice attaches it).
    """
    from repro.serve.apps import make_apps

    if not isinstance(spec, ServeSpec):
        raise SpecError(f"build_cluster takes a ServeSpec, got {type(spec).__name__}")
    app_names = spec.app_names()
    shards = spec.shards
    if shard_ids is None:
        shard_ids = tuple(range(shards))
    else:
        shard_ids = tuple(shard_ids)
        if not shard_ids:
            raise SpecError("shard_ids must name at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise SpecError("shard_ids must be unique")
        if any(not 0 <= index < shards for index in shard_ids):
            raise SpecError(f"shard_ids {shard_ids} out of range for {shards} shards")
    kind = spec.backend
    kernel = Kernel(machine if machine is not None else server_machine())

    if telemetry is None or telemetry is True:
        session = active_session()
    elif telemetry is False:
        session = None
    else:
        session = telemetry
    capture = (
        session.attach(kernel, label=f"serve-{kind}x{shards}")
        if session is not None
        else None
    )

    if spec.budget is not None:
        arbiter = WorkerBudgetArbiter(spec.budget)
    elif spec.autoscale is not None:
        # Autoscaling retunes the cap per control window; seed it at the
        # widest candidate fleet so bring-up is not budget-starved.
        arbiter = WorkerBudgetArbiter(shards * spec.autoscale.worker_options[-1])
    else:
        arbiter = None

    def make_shard(index: int) -> EnclaveShard:
        config = ZcConfig(quantum_seconds=SERVE_QUANTUM_S) if kind == "zc" else None
        runtime = Runtime.create(
            backend=kind,
            config=config,
            kernel=kernel,
            telemetry=False,  # the cluster capture covers the shared kernel
            faults=False,  # attached below, to one shard's enclave
            arbiter=arbiter if kind == "zc" else None,
            label=f"shard-{index}",
            name=f"shard-{index}",
        )
        return EnclaveShard(
            index,
            runtime,
            queue_capacity=spec.queue_capacity,
            servers=spec.servers_per_shard,
            apps=make_apps(app_names, runtime) if app_names is not None else None,
            batch=spec.batch,
            dispatch_cycles=spec.dispatch_cycles,
        )

    shard_objs = [make_shard(index) for index in shard_ids]

    router = Router(
        kernel,
        shard_objs,
        policy=spec.policy,
        admission=spec.admission,
        tenant_weights=spec.tenant_weights(),
    )

    resolved_plan: FaultPlan | None
    if plan is None:
        resolved_plan = (
            get_plan(spec.plan) if spec.plan is not None else active_fault_plan()
        )
    elif isinstance(plan, str):
        resolved_plan = get_plan(plan)
    else:
        resolved_plan = plan
    injector = None
    if resolved_plan is not None:
        # Lookup by global index, not list position: a subset cluster's
        # list positions do not match shard indices.
        by_index = {shard.index: shard for shard in shard_objs}
        if spec.fault_shard in by_index:
            injector = FaultInjector(resolved_plan).attach(
                kernel, by_index[spec.fault_shard].enclave
            )

    for shard in shard_objs:
        shard.start()

    return ServeCluster(
        kernel=kernel,
        # The cluster's list is the ownership ledger (close() must reach
        # every shard ever provisioned); the router's copy is the live
        # routing set.  They MUST be distinct lists: the autoscaler
        # appends a spawned shard to the cluster immediately but routes
        # it only after bring-up, via Router.add_shard.
        shards=list(shard_objs),
        router=router,
        arbiter=arbiter,
        capture=capture,
        injector=injector,
        spec=spec,
        # Initial shards are the provisioning floor both static and
        # autoscaled runs pay; only *dynamic* spawns charge the enclave
        # creation model (the autoscaler stamps those entries itself).
        lifecycle=[
            {
                "shard": shard.index,
                "servers": shard.n_servers,
                "spawned_at": 0.0,
                "retired_at": None,
                "creation_cycles": 0.0,
                "destruction_cycles": 0.0,
            }
            for shard in shard_objs
        ],
        _shard_factory=make_shard,
    )


def run_bench(
    spec: BenchSpec,
    *,
    machine: MachineSpec | None = None,
    telemetry: TelemetrySession | bool | None = None,
    root: str = ".",
    audit: bool = False,
    plan: FaultPlan | str | None = None,
    contracts: list | None = None,
    trace: Any = None,
    span_sink: list | None = None,
    shard_ids: tuple[int, ...] | None = None,
    admit: Any = None,
    raw_sink: dict[str, Any] | None = None,
    obs_on_window: Any = None,
) -> dict[str, Any]:
    """Run the benchmark a :class:`repro.api.BenchSpec` describes.

    Everything *declarative* — topology, load shape, windows, slices,
    scenario — lives in the spec; the keyword arguments are runner
    plumbing:

    - ``root`` resolves ``spec.scenario`` against the repo's committed
      trace directory; ``trace`` (a
      :class:`repro.scenarios.ScenarioTrace` or path) overrides the
      spec's trace selection with an already-loaded one.
    - ``plan`` overrides ``spec.plan`` with a live
      :class:`repro.faults.FaultPlan` (or name); ``contracts`` overrides
      ``spec.contracts`` with loaded contract objects.
    - ``shard_ids``/``admit``/``raw_sink`` serve the slice-parallel
      runner (:mod:`repro.serve.slices`): instantiate only the named
      global shard indices, gate open-loop arrivals through the
      ``admit`` predicate, and export raw latency samples (cycles) for a
      cross-slice percentile merge.
    - ``span_sink``, when a list, receives every completed request's
      span record; ``obs_on_window`` is handed to the sampler (the live
      console hook).

    With ``spec.slices > 1`` the run fans out to the slice-parallel
    runner and returns its merged artifact.  With
    ``spec.serve.autoscale`` set, the elastic control plane
    (:mod:`repro.autoscale`) runs on the obs window stream — spawning
    and retiring shards, retuning the worker-budget cap, and gating
    admission on the per-lane arrival forecast — and the artifact grows
    ``autoscale`` and window-driven ``fleet`` sections.
    """
    if not isinstance(spec, BenchSpec):
        raise SpecError(f"run_bench takes a BenchSpec, got {type(spec).__name__}")
    if spec.slices > 1:
        if shard_ids is not None or admit is not None:
            raise SpecError("slice plumbing (shard_ids/admit) is per-cell only")
        from repro.serve.slices import run_slice_bench

        return run_slice_bench(spec, root=root, audit=audit)

    serve = spec.serve
    if plan is None:
        resolved_plan = (
            get_plan(serve.plan) if serve.plan is not None else active_fault_plan()
        )
    elif isinstance(plan, str):
        resolved_plan = get_plan(plan)
    else:
        resolved_plan = plan

    if trace is None and spec.scenario is not None:
        from repro.scenarios.catalog import trace_path

        trace = trace_path(spec.scenario, root)
    elif trace is None and spec.trace is not None:
        trace = spec.trace

    app_mix = serve.apps
    tenants = serve.tenant_weights()
    seconds = spec.seconds
    if trace is not None:
        from repro.scenarios.trace import ScenarioTrace, load_trace

        if not isinstance(trace, ScenarioTrace):
            trace = load_trace(trace)
        if trace.tenants and tenants is None:
            tenants = dict(trace.tenants)
        if app_mix is None:
            installed_apps: tuple[str, ...] | None = trace.apps
        else:
            installed_apps = tuple(name for name, _ in app_mix)
            missing = [a for a in trace.apps if a not in installed_apps]
            if missing:
                raise SpecError(
                    f"trace {trace.name!r} addresses apps {missing} not in "
                    f"the installed app set {list(installed_apps)}"
                )
        if spec.clients is not None:
            raise SpecError("trace replay is open-loop; drop clients")
        # The trace owns the timeline: arrivals stop at its declared
        # duration, and the obs window grid spans exactly that.
        seconds = trace.duration_s
    else:
        installed_apps = serve.app_names()

    overrides: dict[str, Any] = {}
    if serve.apps is None and installed_apps is not None:
        # A trace's app set installs on every shard without becoming a
        # synthetic load mix.
        overrides["apps"] = tuple((name, 1.0) for name in installed_apps)
    if serve.tenants is None and tenants:
        # Trace-declared tenant weights switch the router to
        # weighted-fair shedding, exactly as spec-declared ones do.
        overrides["tenants"] = tuple(sorted(tenants.items()))
    build_spec = (
        dataclasses.replace(serve, **overrides) if overrides else serve
    )
    cluster = build_cluster(
        build_spec,
        machine=machine,
        telemetry=telemetry,
        shard_ids=shard_ids,
        plan=resolved_plan,
    )
    kernel = cluster.kernel
    # Sorted pairs: dict order is insertion order, and the artifact (and
    # the RNG stream behind rng.choices) must not depend on it.
    tenant_mix = tuple(sorted(tenants.items())) if tenants else None
    # A single-app "mix" is no mix at all: passing it to the LoadSpec
    # would consume an RNG draw per request and shift the seeded streams
    # of every pre-existing single-app run.
    load_mix = app_mix if app_mix is not None and len(app_mix) > 1 else None
    if trace is not None:
        from repro.scenarios.replay import TraceReplayer

        generator: Any = TraceReplayer(kernel, cluster.router, trace, admit=admit)
    elif spec.clients is not None:
        load = LoadSpec(
            clients=spec.clients,
            requests_per_client=spec.requests_per_client,
            duration_s=seconds,
            keydist=spec.keydist,
            keyspace=spec.keyspace,
            set_fraction=spec.set_fraction,
            seed=spec.seed,
            tenants=tenant_mix,
            apps=load_mix,
        )
        generator = LoadGenerator(kernel, cluster.router, load, admit=admit)
    else:
        load = LoadSpec(
            rate_rps=spec.rate if spec.rate is not None else 2_000.0,
            duration_s=seconds,
            keydist=spec.keydist,
            keyspace=spec.keyspace,
            set_fraction=spec.set_fraction,
            seed=spec.seed,
            tenants=tenant_mix,
            apps=load_mix,
        )
        generator = LoadGenerator(kernel, cluster.router, load, admit=admit)
    start = kernel.now
    sampler = None
    detector = None
    controller = None
    autoscale = serve.autoscale
    if spec.obs or autoscale is not None:
        from repro.obs import AnomalyDetector, MetricSampler
        from repro.obs.sampler import DEFAULT_WINDOWS

        duration_cycles = kernel.cycles(seconds)
        interval = (
            float(spec.obs_interval)
            if spec.obs_interval is not None
            else duration_cycles / DEFAULT_WINDOWS
        )
        if interval <= 0:
            raise SpecError("obs_interval must be a positive cycle count")
        # Round-up grid: the last window may extend past the load
        # deadline (arrivals stop strictly before it either way).
        n_windows = max(1, math.ceil(duration_cycles / interval - 1e-9))
        detector = AnomalyDetector()
        sampler = MetricSampler(
            kernel,
            interval,
            n_windows,
            shards=cluster.shards,
            detector=detector,
            on_window=obs_on_window,
        ).install()
    if autoscale is not None:
        from repro.autoscale.controller import AutoscaleController

        controller = AutoscaleController(cluster, autoscale, sampler)
        controller.install()
    generator.run()
    end_of_load = kernel.now
    if sampler is not None:
        # Drive the kernel to the exact window horizon: every tick fires
        # on its grid boundary and the per-shard schedulers observe the
        # same stretch of simulated time in sliced and unsliced runs.
        # A parked sleeper (rather than ``run(until_time=...)``) keeps
        # the timer wheel and CPU accounting on their normal path.
        if kernel.now < sampler.horizon:

            def _hold_until_horizon() -> Any:
                yield Sleep(sampler.horizon - kernel.now)

            kernel.join(kernel.spawn(_hold_until_horizon(), name="obs-horizon"))
        sampler.detach()
    elapsed_s = kernel.seconds(end_of_load - start)
    router = cluster.router
    latency = router.latency.summary()

    def _us(summary: dict[str, float]) -> dict[str, float]:
        return {
            name: kernel.seconds(cycles) * 1e6 if name != "count" else cycles
            for name, cycles in summary.items()
        }

    def _breakdown(record: dict[str, Any]) -> dict[str, Any]:
        submitted = record["submitted"]
        return {
            "submitted": submitted,
            "completed": record["completed"],
            "shed": record["shed"],
            "failed": record["failed"],
            "throughput_rps": (
                record["completed"] / elapsed_s if elapsed_s > 0 else 0.0
            ),
            "shed_rate": record["shed"] / submitted if submitted else 0.0,
            "latency_us": _us(record["latency_cycles"]),
            "latency_notes": record["latency_notes"],
        }

    per_tenant = {
        tenant: _breakdown(record)
        for tenant, record in router.tenant_stats().items()
    }
    per_app = {
        app: _breakdown(record) for app, record in router.app_stats().items()
    }
    result: dict[str, Any] = {
        "meta": stamp("serve-bench"),
        "spec": spec.to_json(),
        "params": {
            "shards": serve.shards,
            "backend": serve.backend,
            "seconds": seconds,
            "rate": (
                None
                if spec.clients is not None
                else (spec.rate or 2_000.0)
            ),
            "clients": spec.clients,
            "policy": serve.policy,
            "admission": serve.admission,
            "queue_capacity": serve.queue_capacity,
            "servers_per_shard": serve.servers_per_shard,
            "budget": serve.budget,
            "keydist": spec.keydist,
            "keyspace": spec.keyspace,
            "set_fraction": spec.set_fraction,
            "seed": spec.seed,
            "plan": resolved_plan.name if resolved_plan is not None else None,
            "tenants": dict(tenant_mix) if tenant_mix else None,
            "apps": (
                [list(pair) for pair in app_mix]
                if app_mix is not None
                else ([[name, 1.0] for name in installed_apps]
                      if installed_apps is not None else None)
            ),
        },
        "totals": {
            **router.stats(),
            "issued": generator.issued,
            "elapsed_s": elapsed_s,
            "throughput_rps": router.completed / elapsed_s if elapsed_s > 0 else 0.0,
            "latency_us": _us(latency),
            "recoveries": [
                {
                    "shard": episode["shard"],
                    "outcome": episode["outcome"],
                    "seconds": kernel.seconds(episode["cycles"]),
                }
                for episode in router.recoveries
            ],
        },
        "per_tenant": per_tenant,
        "per_app": per_app,
        "spans": {
            "recorded": len(router.spans),
            "dropped": router.spans_dropped,
        },
        "per_shard": [
            {
                "shard": shard.index,
                "completed": shard.completed,
                "failed": shard.failed,
                "switchless_ocalls": shard.enclave.stats.total_switchless,
                "regular_ocalls": shard.enclave.stats.total_regular,
                "fallback_ocalls": shard.enclave.stats.total_fallback,
                "mutations": (
                    shard.server.mutations if shard.server is not None else 0
                ),
                "apps": shard.app_stats(),
            }
            for shard in sorted(cluster.shards, key=lambda s: s.index)
        ],
        "budget": (
            {
                "cap": cluster.arbiter.cap,
                "clipped": cluster.arbiter.clipped,
                "in_use": cluster.arbiter.in_use,
            }
            if cluster.arbiter is not None
            else None
        ),
        "fleet": _fleet_section(cluster, kernel.now, router.completed),
    }
    # Host-side counter (not part of the simulated outcome): the obs
    # overhead bench divides it by wall time per arm.
    result["host"] = {"events_processed": kernel.events_processed}
    if trace is not None:
        result["params"]["rate"] = None  # the trace owns the arrival times
        result["params"]["scenario"] = trace.name
        result["params"]["trace_digest"] = trace.digest
        result["params"]["trace_events"] = len(trace.events)
    if shard_ids is not None:
        result["params"]["shard_ids"] = list(shard_ids)
        result["totals"]["skipped"] = generator.skipped
    if sampler is not None and spec.obs:
        result["params"]["obs_interval"] = sampler.interval
        result["obs"] = {
            "interval_cycles": sampler.interval,
            "windows": sampler.n_windows,
            "freq_hz": kernel.spec.freq_hz,
            "lanes": _obs_lanes(sampler),
            "records": list(sampler.records),
            "dropped_records": sampler.dropped_records,
            "spilled": dict(sorted(sampler.spilled.items())),
            "anomalies": list(sampler.anomalies),
        }
    if controller is not None:
        result["autoscale"] = controller.report()
    if contracts is None and spec.contracts is not None:
        from repro.slo import load_contracts

        contracts = load_contracts(spec.contracts)
    if contracts:
        # Local import: repro.slo consumes serve artifacts; importing it
        # eagerly here would make the dependency circular.
        from repro.slo.contract import evaluate_contracts, verdicts_summary

        result["slo"] = verdicts_summary(evaluate_contracts(result, contracts))
    if span_sink is not None:
        span_sink.extend(router.spans)
    if raw_sink is not None:
        raw_sink["latency_cycles"] = list(router.latency.samples_cycles)
        raw_sink["tenant_latency_cycles"] = {
            tenant: list(stats.latency.samples_cycles)
            for tenant, stats in sorted(router.tenants.items())
        }
        raw_sink["app_latency_cycles"] = {
            app: list(stats.latency.samples_cycles)
            for app, stats in sorted(router.apps.items())
        }
        if sampler is not None and spec.obs:
            raw_sink["obs"] = {
                "interval_cycles": sampler.interval,
                "windows": sampler.n_windows,
                "t0": sampler.t0,
                "raw_windows": sampler.raw_windows,
                "spilled": sampler.spilled,
            }
    if cluster.capture is not None:
        _export_serve_metrics(cluster.capture.registry, cluster.capture.label,
                              router, cluster.shards, kernel.now)
    cluster.close()
    return result


def _fleet_section(
    cluster: ServeCluster, end_cycles: float, completed: int
) -> dict[str, Any]:
    """Provisioned-fleet accounting over the cluster's lifecycle ledger.

    ``cycles_per_request`` divides everything the run *provisioned* —
    server-thread cycles, the integrated worker-budget cap, and the
    modeled enclave create/teardown cost of dynamic scaling — by the
    requests it completed.  This is the fleet-level wasted-cycle
    objective the autoscaler optimizes: a static over-provisioned config
    pays for idle shards all run long, an autoscaled one pays creation
    cost for exactly the capacity the load curve demanded.
    """
    server_cycles = 0.0
    creation = 0.0
    destruction = 0.0
    spawned = 0
    retired = 0
    for entry in cluster.lifecycle:
        until = entry["retired_at"] if entry["retired_at"] is not None else end_cycles
        server_cycles += entry["servers"] * max(0.0, min(until, end_cycles) - entry["spawned_at"])
        creation += entry["creation_cycles"]
        destruction += entry["destruction_cycles"]
        if entry["creation_cycles"] > 0 or entry["spawned_at"] > 0:
            spawned += 1
        if entry["retired_at"] is not None:
            retired += 1
    budget_cycles = (
        cluster.arbiter.cap_integral(end_cycles)
        if cluster.arbiter is not None
        else 0.0
    )
    total = server_cycles + budget_cycles + creation + destruction
    return {
        "shards_initial": len(cluster.lifecycle) - spawned,
        "shards_spawned": spawned,
        "shards_retired": retired,
        "server_cycles": server_cycles,
        "worker_budget_cycles": budget_cycles,
        "creation_cycles": creation,
        "destruction_cycles": destruction,
        "provisioned_cycles": total,
        "cycles_per_request": total / completed if completed else None,
    }


# ----------------------------------------------------------------------
# Deprecated keyword entry points (pre-spec surface)
# ----------------------------------------------------------------------
def build_serve(
    shards: int = 2,
    backend: str = "zc",
    *,
    machine: MachineSpec | None = None,
    policy: str = "hash",
    admission: str = "shed",
    queue_capacity: int = 64,
    servers_per_shard: int = 2,
    budget: int | None = None,
    plan: FaultPlan | str | None = None,
    fault_shard: int = 0,
    tenant_weights: dict[str, float] | None = None,
    telemetry: TelemetrySession | bool | None = None,
    shard_ids: tuple[int, ...] | None = None,
    apps: tuple[str, ...] | None = None,
) -> ServeCluster:
    """Deprecated: build a :class:`repro.api.ServeSpec` and use
    ``Runtime.serve(spec)`` / :func:`build_cluster` instead."""
    warnings.warn(
        "build_serve(...) is deprecated; construct a repro.api.ServeSpec "
        "and call Runtime.serve(spec) (or repro.serve.bench.build_cluster)",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = ServeSpec(
        shards=shards,
        backend=backend,
        policy=policy,
        admission=admission,
        queue_capacity=queue_capacity,
        servers_per_shard=servers_per_shard,
        budget=budget,
        apps=tuple((name, 1.0) for name in apps) if apps is not None else None,
        tenants=(
            tuple(sorted(tenant_weights.items()))
            if tenant_weights is not None
            else None
        ),
        fault_shard=fault_shard,
    )
    return build_cluster(
        spec,
        machine=machine,
        telemetry=telemetry,
        shard_ids=shard_ids,
        plan=plan,
    )


def run_serve_bench(
    shards: int = 2,
    seconds: float = 2.0,
    backend: str = "zc",
    *,
    rate: float | None = 2_000.0,
    clients: int | None = None,
    requests_per_client: int | None = None,
    policy: str = "hash",
    admission: str = "shed",
    queue_capacity: int = 64,
    servers_per_shard: int = 2,
    budget: int | None = None,
    plan: FaultPlan | str | None = None,
    fault_shard: int = 0,
    keydist: str = "uniform",
    keyspace: int = 256,
    set_fraction: float = 1.0 / 3.0,
    seed: int = 0,
    tenants: dict[str, float] | None = None,
    contracts: list | None = None,
    span_sink: list | None = None,
    machine: MachineSpec | None = None,
    telemetry: TelemetrySession | bool | None = None,
    shard_ids: tuple[int, ...] | None = None,
    admit: Any = None,
    raw_sink: dict[str, Any] | None = None,
    obs: bool = False,
    obs_interval: float | None = None,
    obs_on_window: Any = None,
    apps: tuple[tuple[str, float], ...] | None = None,
    trace: Any = None,
) -> dict[str, Any]:
    """Deprecated: build a :class:`repro.api.BenchSpec` and use
    ``Runtime.serve(spec)`` / :func:`run_bench` instead."""
    warnings.warn(
        "run_serve_bench(...) is deprecated; construct a repro.api.BenchSpec "
        "and call Runtime.serve(spec) (or repro.serve.bench.run_bench)",
        DeprecationWarning,
        stacklevel=2,
    )
    serve = ServeSpec(
        shards=shards,
        backend=backend,
        policy=policy,
        admission=admission,
        queue_capacity=queue_capacity,
        servers_per_shard=servers_per_shard,
        budget=budget,
        apps=tuple(apps) if apps is not None else None,
        tenants=tuple(sorted(tenants.items())) if tenants is not None else None,
        fault_shard=fault_shard,
    )
    spec = BenchSpec(
        serve=serve,
        seconds=seconds,
        rate=None if clients is not None else (rate if rate is not None else 2_000.0),
        clients=clients,
        requests_per_client=requests_per_client,
        keydist=keydist,
        keyspace=keyspace,
        set_fraction=set_fraction,
        seed=seed,
        obs=obs,
        obs_interval=obs_interval,
    )
    return run_bench(
        spec,
        machine=machine,
        telemetry=telemetry,
        plan=plan,
        contracts=contracts,
        trace=trace,
        span_sink=span_sink,
        shard_ids=shard_ids,
        admit=admit,
        raw_sink=raw_sink,
        obs_on_window=obs_on_window,
    )


def _obs_lanes(sampler: Any) -> list[str]:
    """Every lane present in the window stream, in canonical order."""
    tenant_lanes = sorted(
        {
            record["lane"]
            for record in sampler.records
            if record["lane"].startswith("tenant:")
        }
    )
    return ["total", *sampler.shard_lanes, *tenant_lanes]


def _export_serve_metrics(
    registry: Any,
    cell: str,
    router: Router,
    shards: list[EnclaveShard],
    now_cycles: float,
) -> None:
    """Register the serve layer's metrics on the session registry.

    The Prometheus exporter (:func:`repro.telemetry.exporters
    .render_prometheus`) then renders them alongside the ledger metrics
    with its usual name sanitization and ``repro_build_info`` header.
    """
    for outcome in ("submitted", "completed", "shed", "failed"):
        registry.counter(
            "repro_serve_requests_total", cell=cell, outcome=outcome
        ).inc(getattr(router, outcome))
    for tenant, stats in sorted(router.tenants.items()):
        label = tenant or "anonymous"
        for outcome, value in stats.counts().items():
            registry.counter(
                "repro_serve_tenant_requests_total",
                cell=cell,
                tenant=label,
                outcome=outcome,
            ).inc(value)
        registry.histogram(
            "repro_serve_tenant_latency_cycles", cell=cell, tenant=label
        ).observe_many(list(stats.latency.samples_cycles))
    for shard in shards:
        label = str(shard.index)
        registry.gauge(
            "repro_serve_shard_queue_depth", cell=cell, shard=label
        ).set(float(len(shard.queue)), t_cycles=now_cycles)
        backend = getattr(shard.enclave, "backend", None)
        workers = getattr(backend, "workers", None)
        if backend is None or not hasattr(backend, "active_worker_target"):
            continue
        if not workers:
            continue
        active = int(backend.active_worker_target)
        registry.gauge(
            "repro_serve_shard_workers_active", cell=cell, shard=label
        ).set(float(active), t_cycles=now_cycles)
        registry.gauge(
            "repro_serve_shard_occupancy", cell=cell, shard=label
        ).set(active / len(workers), t_cycles=now_cycles)


def write_result(result: dict[str, Any], path: str) -> str:
    """Write the bench artifact as JSON; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(path: str) -> dict[str, Any]:
    """Load and stamp-check a committed serve baseline."""
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    check_stamp(baseline.get("meta", {}), "serve-bench", source=path)
    return baseline


def compare_to_baseline(
    result: dict[str, Any], baseline: dict[str, Any], threshold: float = 0.1
) -> list[str]:
    """Gate a serve run against a baseline; returns violation messages.

    Fails when throughput regresses by more than ``threshold`` (relative)
    or p99 latency inflates by more than ``threshold``.  Simulated runs
    are deterministic, so the threshold only absorbs intentional model
    changes that nudge the numbers without being regressions.
    """
    violations: list[str] = []
    new = result["totals"]
    old = baseline["totals"]
    old_tput = old.get("throughput_rps", 0.0)
    new_tput = new.get("throughput_rps", 0.0)
    if old_tput > 0 and new_tput < old_tput * (1 - threshold):
        violations.append(
            f"throughput regressed: {new_tput:.0f} rps vs baseline "
            f"{old_tput:.0f} rps (> {threshold:.0%} drop)"
        )
    old_p99 = old.get("latency_us", {}).get("p99", 0.0)
    new_p99 = new.get("latency_us", {}).get("p99", 0.0)
    if old_p99 > 0 and new_p99 > old_p99 * (1 + threshold):
        violations.append(
            f"p99 latency inflated: {new_p99:.1f} us vs baseline "
            f"{old_p99:.1f} us (> {threshold:.0%} rise)"
        )
    old_shed = old.get("shed", 0)
    new_shed = new.get("shed", 0)
    if new_shed > max(old_shed * (1 + threshold), old_shed + 5):
        violations.append(
            f"shed count grew: {new_shed} vs baseline {old_shed}"
        )
    new_slo = result.get("slo") or {}
    old_slo = baseline.get("slo") or {}
    new_hard = new_slo.get("hard_breaches", 0)
    old_hard = old_slo.get("hard_breaches", 0)
    if new_hard > old_hard:
        violations.append(
            f"hard SLO breaches grew: {new_hard} vs baseline {old_hard} "
            "(see the artifact's slo.verdicts for the tenants involved)"
        )
    return violations
