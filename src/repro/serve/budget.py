"""Cross-enclave worker-budget arbitration.

Each ZC shard runs the paper's feedback scheduler unmodified: every
quantum it sweeps candidate worker counts and activates the ``argmin
U_i``.  On a shared machine, N independent argmin loops can collectively
decide on more spinning workers than there are spare cores — each shard's
sweep is locally optimal and globally oblivious.

The arbiter closes that gap without touching the scheduler: it sits
behind :meth:`repro.core.backend.ZcSwitchlessBackend.set_active_workers`
and clips each backend's requested count to its share of a global cap.
First-come-first-served over the *current* grants: a shard can always
shrink, and can grow into whatever the others are not using.  Because
every scheduler re-sweeps each quantum, budget freed by one shard is
picked up by the others within a quantum — no explicit rebalancing pass.
"""

from __future__ import annotations

from typing import Any, Protocol


class BudgetClaimant(Protocol):
    """What the arbiter needs from a claimant (zc backends satisfy it)."""

    @property
    def kernel(self) -> Any: ...


class WorkerBudgetArbiter:
    """Clips per-shard worker grants to a global core budget.

    Args:
        cap: Maximum switchless workers across all registered claimants
            (a logical-core budget for the fleet).
    """

    def __init__(self, cap: int) -> None:
        if cap < 0:
            raise ValueError("worker budget cap must be >= 0")
        self.cap = cap
        #: Current grant per claimant (identity-keyed).
        self.grants: dict[Any, int] = {}
        #: Times a request was clipped below what was asked.
        self.clipped = 0
        #: Cap trajectory as ``(since_cycles, cap)`` steps — the
        #: autoscaler retunes the cap per control window, and the fleet
        #: accounting integrates provisioned worker-cycles over it.
        self._cap_history: list[tuple[float, int]] = [(0.0, cap)]

    def set_cap(self, cap: int, *, at: float = 0.0) -> None:
        """Retune the global cap (autoscaler surface).

        Existing grants are not clawed back — each shard's next argmin
        re-sweep passes through :meth:`grant` and lands under the new
        cap within a quantum.  ``at`` (simulated cycles) stamps the step
        for :meth:`cap_integral`.
        """
        if cap < 0:
            raise ValueError("worker budget cap must be >= 0")
        self.cap = cap
        self._cap_history.append((at, cap))

    def cap_integral(self, end: float) -> float:
        """Provisioned worker-cycles: ∫ cap(t) dt over ``[0, end]``.

        This is the *budgeted* fleet capacity the wasted-cycle objective
        charges for, whether or not the shards spun workers up to it.
        """
        total = 0.0
        for step, (since, cap) in enumerate(self._cap_history):
            until = (
                self._cap_history[step + 1][0]
                if step + 1 < len(self._cap_history)
                else end
            )
            if since >= end:
                break
            if until > since:
                total += cap * (min(until, end) - since)
        return total

    @property
    def in_use(self) -> int:
        """Workers currently granted across all claimants."""
        return sum(self.grants.values())

    def grant(self, claimant: BudgetClaimant, count: int) -> int:
        """Grant ``claimant`` up to ``count`` workers; returns the grant.

        The claimant's previous grant is released first, so a shard can
        always shrink and re-grow within its own share.
        """
        others = sum(n for c, n in self.grants.items() if c is not claimant)
        granted = max(0, min(count, self.cap - others))
        self.grants[claimant] = granted
        if granted < count:
            self.clipped += 1
            bus = getattr(claimant.kernel, "bus", None)
            if bus is not None:
                bus.emit(
                    "serve.budget.clip",
                    requested=count,
                    granted=granted,
                    in_use=self.in_use,
                    cap=self.cap,
                )
        return granted

    def release(self, claimant: BudgetClaimant) -> None:
        """Return ``claimant``'s grant to the pool (backend teardown)."""
        self.grants.pop(claimant, None)
