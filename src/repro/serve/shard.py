"""One serving shard: an enclave runtime plus a bounded request queue.

A shard owns a :class:`repro.api.Runtime` created on the *shared* kernel
(``Runtime.create(..., kernel=shared)``), hosting one or more
:class:`ServedApp` instances — the WAL-backed KV server by default, plus
optionally the session-store and file-encryption apps of
:mod:`repro.serve.apps`.  Untrusted server threads drain a bounded FIFO
of :class:`repro.serve.router.Request` objects and execute each as an
ecall into the shard's enclave, dispatched to the app the request names;
the apps persist state through ocalls on the enclave's own switchless
worker pool.

The queue is the admission-control surface: the router either sheds or
blocks when :meth:`EnclaveShard.try_enqueue` reports it full.  Queue
depth is a level-triggered :class:`repro.sim.primitives.Gate`, so server
threads (waiting for work) and blocked submitters (waiting for space)
park on events instead of polling.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sgx import EnclaveLostError
from repro.sim.instructions import Block, Compute
from repro.sim.kernel import Program, SimThread

if TYPE_CHECKING:
    from repro.api import Runtime
    from repro.serve.router import Request, Router


class ServedApp:
    """Adapter protocol for one application served behind the router.

    Concrete adapters (see :mod:`repro.serve.apps`) bind an in-enclave
    application to the serve layer's canonical request vocabulary
    (``get``/``set``/``delete``/``size``).  All four methods returning
    :class:`Program` run on the shard's simulated threads and may ecall
    into the shard's enclave.
    """

    #: Routing name carried by :attr:`repro.serve.router.Request.app`.
    name: str = ""

    def start(self) -> Program:
        """One-time setup (open files, recover state); run before serving."""
        raise NotImplementedError

    def handle(self, request: "Request") -> Program:
        """Execute one request; returns its result payload."""
        raise NotImplementedError

    def probe(self) -> Program:
        """Cheap ecall used by the router's quarantine probe."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """App-level counters for the bench's per-shard report."""
        raise NotImplementedError


class EnclaveShard:
    """One enclave-backed serving shard on the shared serving kernel.

    Args:
        index: Shard number (routing identity and event field).
        runtime: The shard's :class:`repro.api.Runtime` (must share the
            cluster kernel).
        queue_capacity: Bound on queued-but-unstarted requests.
        servers: Untrusted server threads draining the queue.
        wal_path: KV WAL path inside the shard's private filesystem
            (used by the default app set).
        apps: Served apps by routing name, in deterministic start order.
            None installs the classic single-app KV shard.
        batch: Requests a server thread drains per dispatch burst.  The
            dispatch cost (below) is charged once per burst, so larger
            batches amortise it — the serving-layer analogue of the
            paper's request batching.
        dispatch_cycles: Untrusted cycles charged per dispatch burst
            (0 models dispatch as free, the historical behaviour).
    """

    def __init__(
        self,
        index: int,
        runtime: "Runtime",
        *,
        queue_capacity: int = 64,
        servers: int = 2,
        wal_path: str = "/kv.wal",
        apps: "dict[str, ServedApp] | None" = None,
        batch: int = 1,
        dispatch_cycles: float = 0.0,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if servers < 1:
            raise ValueError("servers must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if dispatch_cycles < 0:
            raise ValueError("dispatch_cycles must be >= 0")
        self.index = index
        self.runtime = runtime
        self.kernel = runtime.kernel
        self.enclave = runtime.enclave
        if apps is None:
            # Deferred import: repro.serve.apps imports ServedApp from
            # this module at load time.
            from repro.serve.apps import KvServedApp

            apps = {"kv": KvServedApp(runtime, wal_path=wal_path)}
        if not apps:
            raise ValueError("shard needs at least one served app")
        self.apps = apps
        # Back-compat aliases for the classic KV shard surface; None when
        # the shard serves no KV app.
        kv = apps.get("kv")
        self.server = kv.server if kv is not None else None
        self.client = kv.client if kv is not None else None
        self.capacity = queue_capacity
        self.n_servers = servers
        self.batch = batch
        self.dispatch_cycles = dispatch_cycles
        self.queue: deque["Request"] = deque()
        self.depth = self.kernel.gate(0, name=f"shard{index}.depth")
        self.server_threads: list[SimThread] = []
        self.stopping = False
        #: Requests this shard executed to completion.
        self.completed = 0
        #: Requests that failed on this shard (enclave lost, no recovery).
        self.failed = 0
        #: Back-reference installed by the router at cluster wiring time.
        self.router: "Router | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every served app (in order) and spawn server threads."""
        def starter() -> Program:
            for app in self.apps.values():
                yield from app.start()
            return None

        self.kernel.join(
            self.kernel.spawn(starter(), name=f"shard{self.index}-start", kind="app")
        )
        self.spawn_servers()

    def start_program(self) -> Program:
        """In-kernel variant of :meth:`start` for mid-run shard spawns.

        :meth:`start` drives the kernel (``kernel.join``) and therefore
        only works before ``kernel.run()``.  The autoscaler spawns shards
        from *inside* the running kernel, where the app bring-up must be
        a plain program: run the app starters inline, then spawn the
        server threads.
        """
        for app in self.apps.values():
            yield from app.start()
        self.spawn_servers()
        return None

    def spawn_servers(self) -> None:
        """Spawn the shard's daemon server threads (idempotent per call)."""
        for slot in range(self.n_servers):
            thread = self.kernel.spawn(
                self._server_loop(),
                name=f"shard{self.index}-srv{slot}",
                kind="serve-server",
                daemon=True,
            )
            self.server_threads.append(thread)

    def stop(self) -> None:
        """Stop accepting work; parked server threads stay parked (daemon)."""
        self.stopping = True

    @property
    def available(self) -> bool:
        """Routable: accepting work and its enclave is not lost."""
        return not self.stopping and not self.enclave.lost

    @property
    def default_app(self) -> str:
        """Routing name requests fall back to when they name no app."""
        return next(iter(self.apps))

    def probe(self) -> Program:
        """Cheap ecall into the first served app (quarantine probe)."""
        app = next(iter(self.apps.values()))
        result = yield from app.probe()
        return result

    def app_stats(self) -> dict[str, dict[str, Any]]:
        """Each served app's counters (bench per-shard report)."""
        return {name: app.describe() for name, app in self.apps.items()}

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def try_enqueue(self, request: "Request") -> bool:
        """Queue ``request`` unless the shard is full; returns success."""
        if len(self.queue) >= self.capacity:
            return False
        request.shard = self.index
        request.enqueued_at = self.kernel.now
        self.queue.append(request)
        self.depth.set(len(self.queue))
        return True

    def tenant_occupancy(self) -> dict[str, int]:
        """Queued-but-unstarted request count per tenant.

        The router's weighted-fair admission compares these against the
        tenant weights to pick a shed victim when the queue is full.
        """
        occupancy: dict[str, int] = {}
        for request in self.queue:
            occupancy[request.tenant] = occupancy.get(request.tenant, 0) + 1
        return occupancy

    def evict_newest(self, tenant: str) -> "Request | None":
        """Remove ``tenant``'s newest queued request (None if it has none).

        Newest-first keeps the eviction cheap to reason about: the victim
        has waited the least, so the work already sunk into older queued
        requests is preserved.
        """
        for position in range(len(self.queue) - 1, -1, -1):
            if self.queue[position].tenant == tenant:
                victim = self.queue[position]
                del self.queue[position]
                self.depth.set(len(self.queue))
                return victim
        return None

    def space_event(self):
        """One-shot event firing once the queue has room again."""
        return self.depth.wait_for(lambda depth: depth < self.capacity)

    def drain(self) -> list["Request"]:
        """Remove and return all queued-but-unstarted requests."""
        drained = list(self.queue)
        self.queue.clear()
        self.depth.set(0)
        return drained

    # ------------------------------------------------------------------
    # Server threads
    # ------------------------------------------------------------------
    def _server_loop(self) -> Program:
        while not self.stopping:
            if not self.queue:
                # Level-triggered wait; re-check on wake (several servers
                # may race for one queued request).
                yield Block(self.depth.wait_for(lambda depth: depth > 0))
                continue
            if self.dispatch_cycles > 0:
                # Charged once per burst: batching amortises dispatch.
                yield Compute(self.dispatch_cycles, tag="serve-dispatch")
            served = 0
            while served < self.batch and self.queue and not self.stopping:
                request = self.queue.popleft()
                self.depth.set(len(self.queue))
                request.dequeued_at = self.kernel.now
                served += 1
                if self.enclave.lost and self.router is not None:
                    # Don't start new work on a lost enclave (we would
                    # park inside its recovery for the whole outage):
                    # hand the request back for re-routing.  Requests
                    # already inside the enclave when the fault fired do
                    # ride out recovery.
                    self.router.shard_lost(self, request)
                    continue
                yield from self._handle(request)

    def _handle(self, request: "Request") -> Program:
        try:
            result = yield from self._execute(request)
        except EnclaveLostError as exc:
            # Recovery is exhausted (or absent): hand the request back to
            # the router, which quarantines this shard and re-routes.
            self.failed += 1
            if self.router is not None:
                self.router.shard_lost(self, request)
            else:
                request.fail(f"enclave lost: {exc}")
            return
        self.completed += 1
        request.executed_at = self.kernel.now
        request.complete(result)

    def _execute(self, request: "Request") -> Program:
        app = self.apps.get(request.app)
        if app is None:
            raise ValueError(
                f"shard {self.index} serves no app {request.app!r} "
                f"(has {sorted(self.apps)})"
            )
        result = yield from app.handle(request)
        return result
