"""Load generation for the serving layer.

Two standard shapes:

- **Closed loop** — ``spec.clients`` request threads, each issuing its
  next request the moment the previous one completes.  Offered load
  tracks service capacity; use it for saturation/scaling measurements.
- **Open loop** — a Poisson arrival process at ``spec.rate_rps``
  (selected by setting the rate); every arrival runs on its own thread
  regardless of how the previous requests are doing.  Offered load is
  independent of the system, so queues actually build and shed/latency
  tails mean something.  This is the ``repro serve bench`` default.

Key choice reuses the seeded YCSB-style generators of
:mod:`repro.workloads.keydist`; everything is deterministic per
``spec.seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.serve.router import Router
from repro.sim.instructions import Compute, Sleep
from repro.sim.kernel import Kernel, Program, SimThread
from repro.workloads.keydist import SequentialKeys, UniformKeys, ZipfKeys

#: Key-distribution names accepted by :class:`LoadSpec`.
KEYDIST_CHOICES = ("uniform", "zipf", "seq")


def _check_mix(
    mix: tuple[tuple[str, float], ...] | None, what: str
) -> None:
    """Validate a weighted ``(name, weight)`` mix (tenants or apps)."""
    if mix is None:
        return
    if not mix:
        raise ValueError(f"{what}s needs at least one (name, weight) pair")
    names = [name for name, _ in mix]
    if len(set(names)) != len(names):
        raise ValueError(f"{what} names must be unique")
    if any(weight <= 0 for _, weight in mix):
        raise ValueError(f"{what} weights must be positive")


@dataclass(frozen=True)
class LoadSpec:
    """Shape of the offered load.

    Attributes:
        clients: Closed-loop request threads (ignored by the open loop).
        requests_per_client: Closed-loop per-thread request budget
            (None = bounded by ``duration_s`` alone — set at least one!).
        duration_s: Stop issuing after this much simulated time.
        rate_rps: Open-loop Poisson arrival rate; None selects the
            closed loop.
        total_requests: Open-loop arrival budget.
        set_fraction: Fraction of requests that are ``kv_set`` (the rest
            are ``kv_get``); sets WAL-append via ocalls.
        keyspace: Distinct keys for the uniform/zipf distributions.
        keydist: ``uniform`` | ``zipf`` | ``seq``.
        value_bytes: Value payload size for sets.
        parse_cycles: Untrusted request-parse cost charged per request.
        seed: Base RNG seed (each client derives its own stream).
        tenants: Weighted tenant mix as ``(name, weight)`` pairs; each
            request is attributed to a tenant drawn with these weights
            (so per-tenant SLO contracts are actually exercised).  None
            leaves every request on the anonymous ``""`` tenant.
        apps: Weighted served-app mix as ``(name, weight)`` pairs; each
            request targets an app drawn with these weights.  None sends
            every request to the router's default app (the classic
            single-app KV stream).
    """

    clients: int = 4
    requests_per_client: int | None = 500
    duration_s: float | None = None
    rate_rps: float | None = None
    total_requests: int | None = None
    set_fraction: float = 1.0 / 3.0
    keyspace: int = 256
    keydist: str = "uniform"
    value_bytes: int = 8
    parse_cycles: float = 1_200.0
    seed: int = 0
    tenants: tuple[tuple[str, float], ...] | None = None
    apps: tuple[tuple[str, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.keydist not in KEYDIST_CHOICES:
            raise ValueError(f"keydist must be one of {KEYDIST_CHOICES}")
        if self.rate_rps is None:
            if self.requests_per_client is None and self.duration_s is None:
                raise ValueError("closed loop needs a request or duration bound")
        elif self.total_requests is None and self.duration_s is None:
            raise ValueError("open loop needs a request or duration bound")
        _check_mix(self.tenants, "tenant")
        _check_mix(self.apps, "app")

    def tenant_weights(self) -> dict[str, float] | None:
        """The mix as a name → weight dict (None without tenants)."""
        if self.tenants is None:
            return None
        return dict(self.tenants)

    def app_names(self) -> tuple[str, ...] | None:
        """The served apps this load targets (None = default app only)."""
        if self.apps is None:
            return None
        return tuple(name for name, _ in self.apps)


class LoadGenerator:
    """Drives a :class:`repro.serve.router.Router` with a :class:`LoadSpec`.

    ``admit`` is the slice-parallel hook (see :mod:`repro.serve.slices`):
    a ``key -> bool`` predicate consulted per open-loop arrival.  The
    generator always draws the *complete* seeded arrival stream — gaps,
    ops, keys and tenants — and only gates the spawn, so every slice of a
    partitioned run reproduces the identical global schedule and serves
    exactly the arrivals it owns.  Closed-loop runs reject ``admit``
    (a closed client's next arrival depends on its previous completion,
    which a filtered slice cannot reproduce).
    """

    def __init__(
        self,
        kernel: Kernel,
        router: Router,
        spec: LoadSpec,
        admit: "Callable[[bytes], bool] | None" = None,
    ) -> None:
        if admit is not None and spec.rate_rps is None:
            raise ValueError("admit filtering requires the open loop (rate_rps)")
        self.kernel = kernel
        self.router = router
        self.spec = spec
        self._admit = admit
        #: Requests issued (arrivals, for the open loop) — counts every
        #: drawn arrival, including ones skipped by ``admit``.
        self.issued = 0
        #: Arrivals skipped by the ``admit`` predicate.
        self.skipped = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Generate the load and run the kernel until it completes."""
        if self.spec.rate_rps is not None:
            self._run_open()
        else:
            self._run_closed()

    def _run_closed(self) -> None:
        threads = [
            self.kernel.spawn(
                self._closed_client(index),
                name=f"client-{index}",
                kind="serve-client",
            )
            for index in range(self.spec.clients)
        ]
        self.kernel.join(*threads)

    def _run_open(self) -> None:
        request_threads: list[SimThread] = []
        arrivals = self.kernel.spawn(
            self._arrival_process(request_threads),
            name="loadgen-arrivals",
            kind="serve-client",
        )
        self.kernel.join(arrivals)
        if request_threads:
            self.kernel.join(*request_threads)

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------
    def _closed_client(self, index: int) -> Program:
        spec = self.spec
        # Integer-derived stream: tuple seeds would go through the salted
        # hash() and break cross-process determinism.
        rng = random.Random(spec.seed * 1_000_003 + index)
        dist = self._make_dist(index)
        deadline = self._deadline()
        issued = 0
        while spec.requests_per_client is None or issued < spec.requests_per_client:
            if deadline is not None and self.kernel.now >= deadline:
                break
            op, key, value = self._next_op(rng, dist, issued)
            tenant = self._pick_tenant(rng)
            app = self._pick_app(rng)
            self.issued += 1
            issued += 1
            yield Compute(spec.parse_cycles, tag="request-parse")
            yield from self.router.request(op, key, value, tenant=tenant, app=app)

    def _arrival_process(self, request_threads: list[SimThread]) -> Program:
        spec = self.spec
        rng = random.Random(spec.seed * 1_000_003 + 999_331)
        dist = self._make_dist(0)
        deadline = self._deadline()
        rate = spec.rate_rps
        assert rate is not None and rate > 0
        # Absolute Poisson schedule: each arrival is *due* at the running
        # sum of the seeded gaps, independent of how long this thread
        # waited in the ready queue.  A relative sleep would silently
        # under-offer load whenever the system is busy (the queue delay
        # would stretch every gap) — and would make the arrival stream
        # depend on contention, which the slice-parallel runner's
        # identical-schedule guarantee cannot tolerate.
        due = self.kernel.now
        while spec.total_requests is None or self.issued < spec.total_requests:
            due += self.kernel.cycles(rng.expovariate(rate))
            if deadline is not None and due >= deadline:
                break
            delay = due - self.kernel.now
            if delay > 0:
                yield Sleep(delay)
            op, key, value = self._next_op(rng, dist, self.issued)
            tenant = self._pick_tenant(rng)
            app = self._pick_app(rng)
            index = self.issued
            self.issued += 1
            if self._admit is not None and not self._admit(key):
                self.skipped += 1
                continue
            request_threads.append(
                self.kernel.spawn(
                    self._one_request(op, key, value, tenant, app),
                    name=f"req-{index}",
                    kind="serve-client",
                )
            )

    def _one_request(
        self,
        op: str,
        key: bytes,
        value: bytes | None,
        tenant: str = "",
        app: str | None = None,
    ) -> Program:
        yield Compute(self.spec.parse_cycles, tag="request-parse")
        yield from self.router.request(op, key, value, tenant=tenant, app=app)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _deadline(self) -> float | None:
        if self.spec.duration_s is None:
            return None
        return self.kernel.now + self.kernel.cycles(self.spec.duration_s)

    def _make_dist(self, index: int):
        spec = self.spec
        if spec.keydist == "seq":
            return SequentialKeys()
        if spec.keydist == "zipf":
            return ZipfKeys(spec.keyspace, seed=spec.seed + index)
        return UniformKeys(spec.keyspace, seed=spec.seed + index)

    def _pick_tenant(self, rng: random.Random) -> str:
        """Weighted tenant draw; consumes RNG only when a mix is set.

        Guarding on ``spec.tenants`` keeps the seeded op/key streams of
        existing (tenant-less) runs byte-identical to what they produced
        before tenancy existed.
        """
        if self.spec.tenants is None:
            return ""
        names = [name for name, _ in self.spec.tenants]
        weights = [weight for _, weight in self.spec.tenants]
        return rng.choices(names, weights=weights, k=1)[0]

    def _pick_app(self, rng: random.Random) -> str | None:
        """Weighted app draw; consumes RNG only when a mix is set.

        The same guard as :meth:`_pick_tenant`, and the draw happens
        *after* it, so app-less (and tenant-less) runs keep their seeded
        streams byte-identical to what they produced before the mix
        options existed.
        """
        if self.spec.apps is None:
            return None
        names = [name for name, _ in self.spec.apps]
        weights = [weight for _, weight in self.spec.apps]
        return rng.choices(names, weights=weights, k=1)[0]

    def _next_op(
        self, rng: random.Random, dist, counter: int
    ) -> tuple[str, bytes, bytes | None]:
        key = dist.next_key()
        if rng.random() < self.spec.set_fraction:
            value = (counter % 2**63).to_bytes(self.spec.value_bytes, "big")
            return "set", key, value
        return "get", key, None
