"""Sharded multi-enclave serving on one simulated machine.

The paper evaluates ZC-SWITCHLESS one enclave at a time; this package
asks the deployment question that follows: what happens when *several*
enclaves, each with its own configless worker pool and scheduler, serve
one request stream on a shared machine?

- :mod:`repro.serve.budget` — a cross-enclave worker-budget arbiter: the
  per-shard schedulers keep their ``argmin U_i`` feedback loops, but
  their grants are clipped so the fleet never spins more switchless
  workers than a global core cap allows.
- :mod:`repro.serve.shard` — one shard: a :class:`repro.api.Runtime` on
  the shared kernel hosting one or more served apps behind a bounded
  request queue drained by server threads; the :class:`ServedApp`
  protocol is the adapter surface.
- :mod:`repro.serve.apps` — the served-app adapters (``kv``,
  ``session``, ``crypto``) binding in-enclave applications to the
  router's canonical op vocabulary.
- :mod:`repro.serve.router` — consistent-hash (rendezvous) or
  round-robin routing with shed/block admission control (weighted-fair
  across tenants when weights are set), shard quarantine on enclave loss
  and re-admission after recovery, and per-request span tracing
  (``serve.request.span``) consumed by :mod:`repro.slo`.
- :mod:`repro.serve.loadgen` — open-loop (Poisson) and closed-loop load
  generation over the seeded key distributions, optionally tagged with a
  weighted tenant mix.
- :mod:`repro.serve.bench` — the ``repro serve bench`` entry point:
  takes a declarative :class:`repro.api.BenchSpec`/:class:`repro.api
  .ServeSpec` (``Runtime.serve(spec)``), builds a cluster, drives it,
  and emits a stamped result artifact with per-tenant counters and
  (with contracts) SLO verdicts.  The elastic control plane over it
  lives in :mod:`repro.autoscale`.
"""

from repro.serve.apps import (
    APP_CHOICES,
    CryptoServedApp,
    KvServedApp,
    SessionServedApp,
    make_apps,
)
from repro.serve.bench import (
    ServeCluster,
    build_cluster,
    build_serve,
    run_bench,
    run_serve_bench,
)
from repro.serve.budget import WorkerBudgetArbiter
from repro.serve.loadgen import KEYDIST_CHOICES, LoadGenerator, LoadSpec
from repro.serve.router import (
    ADMISSION_CHOICES,
    POLICY_CHOICES,
    Request,
    Router,
    TenantStats,
)
from repro.serve.shard import EnclaveShard, ServedApp

__all__ = [
    "ADMISSION_CHOICES",
    "APP_CHOICES",
    "KEYDIST_CHOICES",
    "POLICY_CHOICES",
    "CryptoServedApp",
    "EnclaveShard",
    "KvServedApp",
    "LoadGenerator",
    "LoadSpec",
    "Request",
    "Router",
    "ServeCluster",
    "ServedApp",
    "SessionServedApp",
    "TenantStats",
    "WorkerBudgetArbiter",
    "build_cluster",
    "build_serve",
    "make_apps",
    "run_bench",
    "run_serve_bench",
]
