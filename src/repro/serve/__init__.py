"""Sharded multi-enclave serving on one simulated machine.

The paper evaluates ZC-SWITCHLESS one enclave at a time; this package
asks the deployment question that follows: what happens when *several*
enclaves, each with its own configless worker pool and scheduler, serve
one request stream on a shared machine?

- :mod:`repro.serve.budget` — a cross-enclave worker-budget arbiter: the
  per-shard schedulers keep their ``argmin U_i`` feedback loops, but
  their grants are clipped so the fleet never spins more switchless
  workers than a global core cap allows.
- :mod:`repro.serve.shard` — one shard: a :class:`repro.api.Runtime` on
  the shared kernel hosting a :class:`repro.apps.KvServerEnclave`, plus
  a bounded request queue drained by server threads.
- :mod:`repro.serve.router` — consistent-hash (rendezvous) or
  round-robin routing with shed/block admission control (weighted-fair
  across tenants when weights are set), shard quarantine on enclave loss
  and re-admission after recovery, and per-request span tracing
  (``serve.request.span``) consumed by :mod:`repro.slo`.
- :mod:`repro.serve.loadgen` — open-loop (Poisson) and closed-loop load
  generation over the seeded key distributions, optionally tagged with a
  weighted tenant mix.
- :mod:`repro.serve.bench` — the ``repro serve bench`` entry point:
  builds a cluster, drives it, and emits a stamped result artifact with
  per-tenant counters and (with contracts) SLO verdicts.
"""

from repro.serve.bench import ServeCluster, build_serve, run_serve_bench
from repro.serve.budget import WorkerBudgetArbiter
from repro.serve.loadgen import KEYDIST_CHOICES, LoadGenerator, LoadSpec
from repro.serve.router import (
    ADMISSION_CHOICES,
    POLICY_CHOICES,
    Request,
    Router,
    TenantStats,
)
from repro.serve.shard import EnclaveShard

__all__ = [
    "ADMISSION_CHOICES",
    "KEYDIST_CHOICES",
    "POLICY_CHOICES",
    "EnclaveShard",
    "LoadGenerator",
    "LoadSpec",
    "Request",
    "Router",
    "ServeCluster",
    "TenantStats",
    "WorkerBudgetArbiter",
    "build_serve",
    "run_serve_bench",
]
