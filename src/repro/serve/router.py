"""Request routing across enclave shards.

The router is the untrusted front door of the serving layer:

- **Placement** — ``policy="hash"`` uses rendezvous (highest-random-
  weight) hashing over a keyed BLAKE2b digest, so each key has a stable
  shard preference and losing a shard only re-homes that shard's keys;
  ``policy="round-robin"`` sprays requests evenly (keys lose affinity,
  which for the WAL-backed KV store means a key's value only survives on
  the shard that stored it — fine for uniform benchmarking traffic).
- **Admission** — a full shard queue either sheds the request with an
  error (``admission="shed"``, the open-loop default) or blocks the
  submitter until space frees (``admission="block"``).
- **Fault handling** — a shard whose enclave is lost is *quarantined*:
  routing skips it, its queued requests re-route to healthy shards, and
  a probe thread drives the enclave's recovery manager; on success the
  shard is re-admitted, on exhausted recovery it is declared dead.

Bus events (emitted only when the kernel carries an event bus):
``serve.request.submit`` / ``serve.request.complete`` /
``serve.request.shed``, ``serve.shard.quarantine`` /
``serve.shard.readmit`` / ``serve.shard.dead``.  The regression
auditor's serving checkers consume exactly these.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.analysis.metrics import LatencyRecorder
from repro.serve.shard import EnclaveShard
from repro.sgx import EnclaveLostError
from repro.sim.instructions import Block
from repro.sim.kernel import Kernel, Program

#: Admission-control policies for a full shard queue.
ADMISSION_CHOICES = ("shed", "block")
#: Request-placement policies.
POLICY_CHOICES = ("hash", "round-robin")


class Request:
    """One in-flight client request.

    Completion is a one-shot event carrying ``(status, payload)`` where
    status is ``"ok"``, ``"shed"`` or ``"failed"``; submitters block on
    ``done`` and read latency off the simulated clock.
    """

    __slots__ = ("op", "key", "value", "done", "submitted_at", "shard")

    def __init__(
        self, kernel: Kernel, op: str, key: bytes, value: bytes | None = None
    ) -> None:
        self.op = op
        self.key = key
        self.value = value
        self.done = kernel.event(name=f"serve:{op}")
        self.submitted_at = kernel.now
        #: Index of the shard that accepted the request (None until queued).
        self.shard: int | None = None

    @property
    def status(self) -> str | None:
        """Completion status, or None while in flight."""
        return self.done.value[0] if self.done.fired else None

    def complete(self, payload: Any) -> None:
        """Mark served successfully."""
        self.done.fire(("ok", payload))

    def shed(self) -> None:
        """Mark rejected by admission control."""
        self.done.fire(("shed", None))

    def fail(self, reason: str) -> None:
        """Mark failed (shard dead with no healthy alternative)."""
        self.done.fire(("failed", reason))


def _rendezvous_score(key: bytes, shard_index: int) -> bytes:
    # Keyed digest, not hash(): Python's hash is salted per process and
    # would make placement nondeterministic across runs.
    return hashlib.blake2b(
        key + shard_index.to_bytes(4, "big"), digest_size=8
    ).digest()


class Router:
    """Routes client requests across :class:`EnclaveShard` instances."""

    def __init__(
        self,
        kernel: Kernel,
        shards: list[EnclaveShard],
        *,
        policy: str = "hash",
        admission: str = "shed",
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        if policy not in POLICY_CHOICES:
            raise ValueError(f"policy must be one of {POLICY_CHOICES}")
        if admission not in ADMISSION_CHOICES:
            raise ValueError(f"admission must be one of {ADMISSION_CHOICES}")
        self.kernel = kernel
        self.shards = shards
        self.policy = policy
        self.admission = admission
        for shard in shards:
            shard.router = self
        self._rr_next = 0
        self.quarantined: set[int] = set()
        self.dead: set[int] = set()
        self.latency = LatencyRecorder()
        # Conservation invariant: submitted == completed + shed + failed
        # once the run drains (audited by RouterConservationChecker).
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        #: Requests re-homed off a quarantined shard.
        self.rerouted = 0
        #: Lifetime quarantine entries / re-admissions (the live sets
        #: above only show current membership).
        self.quarantines = 0
        self.readmissions = 0

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def request(
        self, op: str, key: bytes, value: bytes | None = None
    ) -> Program:
        """Issue one request end-to-end; returns ``(status, payload)``."""
        req = Request(self.kernel, op, key, value)
        self.submitted += 1
        yield from self.submit(req)
        if not req.done.fired:
            yield Block(req.done)
        status, payload = req.done.value
        if status == "ok":
            self.completed += 1
            self.latency.record(self.kernel.now - req.submitted_at)
        elif status == "failed":
            self.failed += 1
        self._emit(
            "serve.request.complete", shard=req.shard, op=op, status=status
        )
        return status, payload

    def submit(self, request: Request) -> Program:
        """Route ``request`` onto a shard queue (or shed it).

        Does not wait for completion and does not touch the submitted
        counter — re-routing a quarantined shard's requests goes through
        here too.
        """
        while True:
            shard = self._pick(request.key)
            if shard is None:
                self.shed += 1
                self._emit("serve.request.shed", op=request.op, reason="no-shard")
                request.shed()
                return request
            if shard.try_enqueue(request):
                self._emit(
                    "serve.request.submit", shard=shard.index, op=request.op
                )
                return request
            if self.admission == "shed":
                self.shed += 1
                self._emit(
                    "serve.request.shed",
                    op=request.op,
                    reason="queue-full",
                    shard=shard.index,
                )
                request.shed()
                return request
            # Blocking admission: wait for space, then re-pick (the shard
            # may have been quarantined while we slept).
            yield Block(shard.space_event())

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def available_shards(self) -> list[EnclaveShard]:
        """Shards currently routable, quarantining lost ones on sight."""
        healthy = []
        for shard in self.shards:
            if shard.index in self.dead or shard.index in self.quarantined:
                continue
            if not shard.available:
                # Lazy detection: the injector flipped enclave.lost but no
                # request has tripped over it yet.
                if shard.enclave.lost:
                    self.quarantine(shard)
                continue
            healthy.append(shard)
        return healthy

    def _pick(self, key: bytes) -> EnclaveShard | None:
        candidates = self.available_shards()
        if not candidates:
            return None
        if self.policy == "round-robin":
            shard = candidates[self._rr_next % len(candidates)]
            self._rr_next += 1
            return shard
        return max(candidates, key=lambda s: _rendezvous_score(key, s.index))

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def shard_lost(self, shard: EnclaveShard, request: Request) -> None:
        """A server thread lost its enclave mid-request (recovery spent).

        Called synchronously from the shard's server loop: quarantine the
        shard and re-home the failed request on a fresh thread.
        """
        self.quarantine(shard)
        self._respawn_submit(request)

    def quarantine(self, shard: EnclaveShard) -> None:
        """Stop routing to ``shard``; re-home its queue; probe recovery."""
        if shard.index in self.quarantined or shard.index in self.dead:
            return
        self.quarantined.add(shard.index)
        self.quarantines += 1
        self._emit("serve.shard.quarantine", shard=shard.index)
        for queued in shard.drain():
            self._respawn_submit(queued)
        self.kernel.spawn(
            self._probe(shard),
            name=f"probe-shard{shard.index}",
            kind="serve-probe",
            daemon=True,
        )

    def _respawn_submit(self, request: Request) -> None:
        self.rerouted += 1
        request.shard = None

        def resubmit() -> Program:
            yield from self.submit(request)

        self.kernel.spawn(
            resubmit(), name="serve-reroute", kind="serve-router", daemon=True
        )

    def _probe(self, shard: EnclaveShard) -> Program:
        """Drive the quarantined enclave's recovery, then re-admit it.

        The probe ecall enters the lost enclave, which routes it through
        the installed :class:`repro.faults.recovery.EnclaveRecovery`
        (single-flight, capped exponential backoff).  Recovery success
        re-admits the shard; exhausted attempts (or no recovery manager)
        declare it dead.
        """
        try:
            yield from shard.client.size()
        except EnclaveLostError:
            self.quarantined.discard(shard.index)
            self.dead.add(shard.index)
            self._emit("serve.shard.dead", shard=shard.index)
            return
        self.quarantined.discard(shard.index)
        self.readmissions += 1
        self._emit("serve.shard.readmit", shard=shard.index)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counter snapshot (the bench folds this into its artifact)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "rerouted": self.rerouted,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "quarantined": sorted(self.quarantined),
            "dead": sorted(self.dead),
        }

    def _emit(self, name: str, **fields: Any) -> None:
        bus = self.kernel.bus
        if bus is not None:
            bus.emit(name, **fields)
