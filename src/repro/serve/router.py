"""Request routing across enclave shards.

The router is the untrusted front door of the serving layer:

- **Placement** — ``policy="hash"`` uses rendezvous (highest-random-
  weight) hashing over a keyed BLAKE2b digest, so each key has a stable
  shard preference and losing a shard only re-homes that shard's keys;
  ``policy="round-robin"`` sprays requests evenly (keys lose affinity,
  which for the WAL-backed KV store means a key's value only survives on
  the shard that stored it — fine for uniform benchmarking traffic).
- **Admission** — a full shard queue either sheds with an error
  (``admission="shed"``, the open-loop default) or blocks the submitter
  until space frees (``admission="block"``).  With ``tenant_weights``
  set, shedding is *weighted-fair*: instead of always dropping the
  newcomer, the router sheds whichever tenant is furthest over its
  weighted share of the queue — an over-share tenant's newest queued
  request is evicted to admit an under-share newcomer.
- **Fault handling** — a shard whose enclave is lost is *quarantined*:
  routing skips it, its queued requests re-route to healthy shards, and
  a probe thread drives the enclave's recovery manager; on success the
  shard is re-admitted, on exhausted recovery it is declared dead.
- **Tracing** — every request carries a ``request_id`` and ``tenant``;
  the router stamps admission/queue/execute boundaries off the simulated
  clock and publishes one ``serve.request.span`` event per completion,
  so :mod:`repro.slo.trace` can rebuild the span tree live or from a
  JSONL replay.

Bus events (emitted only when the kernel carries an event bus), all
tagged with ``tenant``/``request_id`` (empty for shard-level events) and
— for request-level events — the ``app`` the request addressed:
``serve.request.submit`` / ``serve.request.complete`` /
``serve.request.shed`` / ``serve.request.span``,
``serve.shard.quarantine`` / ``serve.shard.readmit`` /
``serve.shard.dead``, plus the elastic-fleet pair
``serve.shard.add`` / ``serve.shard.retire`` (the autoscaler's
ScalingSanityChecker consumes the latter two together with the
``autoscale.*`` stream).  The regression auditor's serving checkers
consume exactly these.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.metrics import LatencyRecorder
from repro.serve.shard import EnclaveShard
from repro.sgx import EnclaveLostError
from repro.sim.instructions import Block
from repro.sim.kernel import Kernel, Program

#: Admission-control policies for a full shard queue.
ADMISSION_CHOICES = ("shed", "block")
#: Request-placement policies.
POLICY_CHOICES = ("hash", "round-robin")


class Request:
    """One in-flight client request.

    Completion is a one-shot event carrying ``(status, payload)`` where
    status is ``"ok"``, ``"shed"`` or ``"failed"``; submitters block on
    ``done`` and read latency off the simulated clock.  The span
    timestamps (``enqueued_at``/``dequeued_at``/``executed_at``) are
    stamped by the shard as the request moves through it; a re-routed
    request's earlier attempts are absorbed into its admission span.
    """

    __slots__ = (
        "op",
        "key",
        "value",
        "app",
        "done",
        "submitted_at",
        "shard",
        "request_id",
        "tenant",
        "enqueued_at",
        "dequeued_at",
        "executed_at",
    )

    def __init__(
        self,
        kernel: Kernel,
        op: str,
        key: bytes,
        value: bytes | None = None,
        *,
        request_id: int = 0,
        tenant: str = "",
        app: str = "kv",
    ) -> None:
        self.op = op
        self.key = key
        self.value = value
        self.app = app
        self.done = kernel.event(name=f"serve:{op}")
        self.submitted_at = kernel.now
        #: Index of the shard that accepted the request (None until queued).
        self.shard: int | None = None
        self.request_id = request_id
        self.tenant = tenant
        #: Simulated instants of the span boundaries (None until reached).
        self.enqueued_at: float | None = None
        self.dequeued_at: float | None = None
        self.executed_at: float | None = None

    @property
    def status(self) -> str | None:
        """Completion status, or None while in flight."""
        return self.done.value[0] if self.done.fired else None

    def complete(self, payload: Any) -> None:
        """Mark served successfully."""
        self.done.fire(("ok", payload))

    def shed(self) -> None:
        """Mark rejected by admission control."""
        self.done.fire(("shed", None))

    def fail(self, reason: str) -> None:
        """Mark failed (shard dead with no healthy alternative)."""
        self.done.fire(("failed", reason))


@dataclass
class TenantStats:
    """Per-tenant request accounting (the contract engine's raw input)."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def counts(self) -> dict[str, int]:
        """The four terminal counters as a plain dict."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
        }


def _rendezvous_score(key: bytes, shard_index: int) -> bytes:
    # Keyed digest, not hash(): Python's hash is salted per process and
    # would make placement nondeterministic across runs.
    return hashlib.blake2b(
        key + shard_index.to_bytes(4, "big"), digest_size=8
    ).digest()


class Router:
    """Routes client requests across :class:`EnclaveShard` instances."""

    def __init__(
        self,
        kernel: Kernel,
        shards: list[EnclaveShard],
        *,
        policy: str = "hash",
        admission: str = "shed",
        tenant_weights: dict[str, float] | None = None,
        max_spans: int = 100_000,
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        if policy not in POLICY_CHOICES:
            raise ValueError(f"policy must be one of {POLICY_CHOICES}")
        if admission not in ADMISSION_CHOICES:
            raise ValueError(f"admission must be one of {ADMISSION_CHOICES}")
        if tenant_weights is not None:
            if not tenant_weights:
                raise ValueError("tenant_weights must name at least one tenant")
            for tenant, weight in tenant_weights.items():
                if weight <= 0:
                    raise ValueError(f"tenant {tenant!r} needs a positive weight")
        self.kernel = kernel
        self.shards = shards
        self.policy = policy
        self.admission = admission
        self.tenant_weights = tenant_weights
        for shard in shards:
            shard.router = self
        self._rr_next = 0
        self.quarantined: set[int] = set()
        self.dead: set[int] = set()
        #: Shards retired by the autoscaler (permanently unroutable).
        self.retired: set[int] = set()
        #: Predictive-admission hook (autoscaler): ``tenant -> bool``;
        #: False sheds the request up front with reason ``forecast``.
        self.predictive_gate: "Callable[[str], bool] | None" = None
        self.latency = LatencyRecorder()
        #: Per-tenant terminal counters and latency (created on first use).
        self.tenants: dict[str, TenantStats] = {}
        #: Per-app terminal counters and latency (created on first use).
        self.apps: dict[str, TenantStats] = {}
        #: App a request falls back to when it names none.
        self.default_app = getattr(shards[0], "default_app", "kv")
        # Conservation invariant: submitted == completed + shed + failed
        # once the run drains (audited by RouterConservationChecker).
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        #: Requests re-homed off a quarantined shard.
        self.rerouted = 0
        #: Requests shed up front by the predictive-admission gate.
        self.forecast_shed = 0
        #: Lifetime mid-run shard additions / retirements.
        self.shards_added = 0
        self.shards_retired = 0
        #: Queued requests evicted by weighted-fair admission.
        self.preempted = 0
        #: Lifetime quarantine entries / re-admissions (the live sets
        #: above only show current membership).
        self.quarantines = 0
        self.readmissions = 0
        #: Completed-request span records (dicts; see ``_record_span``).
        self.spans: list[dict[str, Any]] = []
        self.max_spans = max_spans
        self.spans_dropped = 0
        #: Quarantine entry instants and resolved recovery episodes.
        self._quarantined_at: dict[int, float] = {}
        self.recoveries: list[dict[str, Any]] = []
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def request(
        self,
        op: str,
        key: bytes,
        value: bytes | None = None,
        *,
        tenant: str = "",
        app: str | None = None,
    ) -> Program:
        """Issue one request end-to-end; returns ``(status, payload)``."""
        self._next_request_id += 1
        req = Request(
            self.kernel,
            op,
            key,
            value,
            request_id=self._next_request_id,
            tenant=tenant,
            app=app if app is not None else self.default_app,
        )
        self.submitted += 1
        stats = self._tenant(tenant)
        stats.submitted += 1
        app_stats = self._app(req.app)
        app_stats.submitted += 1
        if self.predictive_gate is not None and not self.predictive_gate(tenant):
            # Shed *before* queueing: the forecast says admitting this
            # request would blow the window's capacity (and p99).  Only
            # fresh client arrivals are gated — re-routed/drained
            # requests go through ``submit`` directly.
            self.forecast_shed += 1
            self._shed(req, reason="forecast")
        else:
            yield from self.submit(req)
        if not req.done.fired:
            yield Block(req.done)
        status, payload = req.done.value
        t_complete = self.kernel.now
        if status == "ok":
            self.completed += 1
            stats.completed += 1
            app_stats.completed += 1
            latency = t_complete - req.submitted_at
            self.latency.record(latency)
            stats.latency.record(latency)
            app_stats.latency.record(latency)
        elif status == "failed":
            self.failed += 1
            stats.failed += 1
            app_stats.failed += 1
        else:
            stats.shed += 1
            app_stats.shed += 1
        self._emit(
            "serve.request.complete",
            shard=req.shard,
            op=op,
            status=status,
            tenant=req.tenant,
            app=req.app,
            request_id=req.request_id,
        )
        self._record_span(req, status, t_complete)
        return status, payload

    def submit(self, request: Request) -> Program:
        """Route ``request`` onto a shard queue (or shed it).

        Does not wait for completion and does not touch the submitted
        counter — re-routing a quarantined shard's requests goes through
        here too.
        """
        while True:
            shard = self._pick(request.key)
            if shard is None:
                self._shed(request, reason="no-shard")
                return request
            if shard.try_enqueue(request):
                self._emit(
                    "serve.request.submit",
                    shard=shard.index,
                    op=request.op,
                    tenant=request.tenant,
                    app=request.app,
                    request_id=request.request_id,
                )
                return request
            if self.admission == "shed":
                if self.tenant_weights is not None and self._preempt_for(
                    shard, request
                ):
                    return request
                self._shed(request, reason="queue-full", shard=shard.index)
                return request
            # Blocking admission: wait for space, then re-pick (the shard
            # may have been quarantined while we slept).
            yield Block(shard.space_event())

    def _shed(self, request: Request, reason: str, shard: int | None = None) -> None:
        """Reject ``request`` (admission control); fires its completion."""
        self.shed += 1
        fields: dict[str, Any] = {
            "op": request.op,
            "reason": reason,
            "tenant": request.tenant,
            "app": request.app,
            "request_id": request.request_id,
        }
        if shard is not None:
            fields["shard"] = shard
        self._emit("serve.request.shed", **fields)
        request.shed()

    # ------------------------------------------------------------------
    # Weighted-fair admission
    # ------------------------------------------------------------------
    def _weight(self, tenant: str) -> float:
        weights = self.tenant_weights or {}
        return weights.get(tenant, 1.0)

    def _preempt_for(self, shard: EnclaveShard, incoming: Request) -> bool:
        """Weighted-fair shed: evict an over-share tenant for ``incoming``.

        Each tenant's *pressure* on the full queue is ``queued / weight``.
        If some queued tenant's pressure exceeds what the incoming
        tenant's would be after admission, that tenant's newest queued
        request is shed instead of the newcomer.  Returns True when the
        incoming request was admitted this way.
        """
        occupancy = shard.tenant_occupancy()
        incoming_pressure = (
            occupancy.get(incoming.tenant, 0) + 1
        ) / self._weight(incoming.tenant)
        # Deterministic victim choice: max pressure, ties to the
        # lexicographically largest tenant name.
        victim_tenant: str | None = None
        victim_pressure = incoming_pressure
        for tenant, queued in sorted(occupancy.items()):
            pressure = queued / self._weight(tenant)
            if pressure > victim_pressure or (
                pressure == victim_pressure
                and victim_tenant is not None
                and tenant > victim_tenant
            ):
                victim_tenant = tenant
                victim_pressure = pressure
        if victim_tenant is None:
            return False
        victim = shard.evict_newest(victim_tenant)
        if victim is None:  # pragma: no cover - occupancy said otherwise
            return False
        self.preempted += 1
        self._shed(victim, reason="preempted", shard=shard.index)
        admitted = shard.try_enqueue(incoming)
        assert admitted, "eviction must leave room for the incoming request"
        self._emit(
            "serve.request.submit",
            shard=shard.index,
            op=incoming.op,
            tenant=incoming.tenant,
            app=incoming.app,
            request_id=incoming.request_id,
        )
        return True

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def available_shards(self) -> list[EnclaveShard]:
        """Shards currently routable, quarantining lost ones on sight."""
        healthy = []
        for shard in self.shards:
            if (
                shard.index in self.dead
                or shard.index in self.quarantined
                or shard.index in self.retired
            ):
                continue
            if not shard.available:
                # Lazy detection: the injector flipped enclave.lost but no
                # request has tripped over it yet.
                if shard.enclave.lost:
                    self.quarantine(shard)
                continue
            healthy.append(shard)
        return healthy

    def _pick(self, key: bytes) -> EnclaveShard | None:
        candidates = self.available_shards()
        if not candidates:
            return None
        if self.policy == "round-robin":
            shard = candidates[self._rr_next % len(candidates)]
            self._rr_next += 1
            return shard
        return max(candidates, key=lambda s: _rendezvous_score(key, s.index))

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def shard_lost(self, shard: EnclaveShard, request: Request) -> None:
        """A server thread lost its enclave mid-request (recovery spent).

        Called synchronously from the shard's server loop: quarantine the
        shard and re-home the failed request on a fresh thread.
        """
        self.quarantine(shard)
        self._respawn_submit(request)

    def quarantine(self, shard: EnclaveShard) -> None:
        """Stop routing to ``shard``; re-home its queue; probe recovery."""
        if shard.index in self.quarantined or shard.index in self.dead:
            return
        self.quarantined.add(shard.index)
        self.quarantines += 1
        self._quarantined_at[shard.index] = self.kernel.now
        self._emit(
            "serve.shard.quarantine", shard=shard.index, tenant="", request_id=""
        )
        for queued in shard.drain():
            self._respawn_submit(queued)
        self.kernel.spawn(
            self._probe(shard),
            name=f"probe-shard{shard.index}",
            kind="serve-probe",
            daemon=True,
        )

    def _respawn_submit(self, request: Request) -> None:
        self.rerouted += 1
        request.shard = None
        request.enqueued_at = None
        request.dequeued_at = None

        def resubmit() -> Program:
            yield from self.submit(request)

        self.kernel.spawn(
            resubmit(), name="serve-reroute", kind="serve-router", daemon=True
        )

    def _probe(self, shard: EnclaveShard) -> Program:
        """Drive the quarantined enclave's recovery, then re-admit it.

        The probe ecall enters the lost enclave, which routes it through
        the installed :class:`repro.faults.recovery.EnclaveRecovery`
        (single-flight, capped exponential backoff).  Recovery success
        re-admits the shard; exhausted attempts (or no recovery manager)
        declare it dead.
        """
        try:
            yield from shard.probe()
        except EnclaveLostError:
            self.quarantined.discard(shard.index)
            self.dead.add(shard.index)
            self._resolve_recovery(shard.index, "dead")
            self._emit(
                "serve.shard.dead", shard=shard.index, tenant="", request_id=""
            )
            return
        self.quarantined.discard(shard.index)
        self.readmissions += 1
        recovery_cycles = self._resolve_recovery(shard.index, "readmitted")
        self._emit(
            "serve.shard.readmit",
            shard=shard.index,
            recovery_cycles=recovery_cycles,
            tenant="",
            request_id="",
        )

    # ------------------------------------------------------------------
    # Elastic fleet (autoscaler surface)
    # ------------------------------------------------------------------
    def add_shard(self, shard: EnclaveShard) -> None:
        """Admit a freshly spawned shard into the routing set.

        Rendezvous hashing makes this incremental: only keys whose
        highest score moves to the new shard re-home; every other key
        keeps its placement bit-for-bit (covered by
        ``tests/serve/test_router.py``).
        """
        if any(existing.index == shard.index for existing in self.shards):
            raise ValueError(f"shard index {shard.index} already routed")
        shard.router = self
        self.shards.append(shard)
        self.shards_added += 1
        self._emit("serve.shard.add", shard=shard.index, tenant="", request_id="")

    def retire_shard(self, shard: EnclaveShard) -> list[Request]:
        """Permanently remove ``shard`` from routing; re-home its queue.

        Unlike quarantine there is no probe/readmit path — retirement is
        the autoscaler scaling down.  Queued-but-unstarted requests are
        drained and resubmitted to the surviving shards (conservation
        across retire is audited by the ScalingSanityChecker via the
        ``drained_request_ids`` event field).  Returns the drained
        requests.
        """
        if shard.index in self.retired:
            return []
        shard.stop()
        self.retired.add(shard.index)
        self.shards_retired += 1
        drained = shard.drain()
        self._emit(
            "serve.shard.retire",
            shard=shard.index,
            drained=len(drained),
            drained_request_ids=[request.request_id for request in drained],
            tenant="",
            request_id="",
        )
        for queued in drained:
            self._respawn_submit(queued)
        return drained

    def _resolve_recovery(self, shard_index: int, outcome: str) -> float:
        """Close a quarantine episode; returns its duration in cycles."""
        started = self._quarantined_at.pop(shard_index, self.kernel.now)
        cycles = self.kernel.now - started
        self.recoveries.append(
            {"shard": shard_index, "outcome": outcome, "cycles": cycles}
        )
        return cycles

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counter snapshot (the bench folds this into its artifact)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "rerouted": self.rerouted,
            "preempted": self.preempted,
            "forecast_shed": self.forecast_shed,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "shards_added": self.shards_added,
            "shards_retired": self.shards_retired,
            "quarantined": sorted(self.quarantined),
            "dead": sorted(self.dead),
            "retired": sorted(self.retired),
        }

    def tenant_stats(self) -> dict[str, dict[str, Any]]:
        """Per-tenant counters plus a latency summary in cycles."""
        return {
            tenant: {
                **stats.counts(),
                "latency_cycles": stats.latency.summary(),
                "latency_notes": stats.latency.diagnostics(),
            }
            for tenant, stats in sorted(self.tenants.items())
        }

    def app_stats(self) -> dict[str, dict[str, Any]]:
        """Per-app counters plus a latency summary in cycles."""
        return {
            app: {
                **stats.counts(),
                "latency_cycles": stats.latency.summary(),
                "latency_notes": stats.latency.diagnostics(),
            }
            for app, stats in sorted(self.apps.items())
        }

    def _tenant(self, tenant: str) -> TenantStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = TenantStats()
        return stats

    def _app(self, app: str) -> TenantStats:
        stats = self.apps.get(app)
        if stats is None:
            stats = self.apps[app] = TenantStats()
        return stats

    def _record_span(self, request: Request, status: str, t_complete: float) -> None:
        """Store and publish the request's span boundaries.

        One flat record per request; :mod:`repro.slo.trace` turns it into
        the admission → queue → execute → reply tree.  Stored even with
        no bus installed (the bench reads spans without telemetry); the
        matching ``serve.request.span`` event makes the same record
        reconstructable from a JSONL export.
        """
        record = {
            "request_id": request.request_id,
            "tenant": request.tenant,
            "app": request.app,
            "op": request.op,
            "status": status,
            "shard": request.shard,
            "t_submit": request.submitted_at,
            "t_enqueue": request.enqueued_at,
            "t_dequeue": request.dequeued_at,
            "t_result": request.executed_at,
            "t_complete": t_complete,
        }
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
        else:
            self.spans_dropped += 1
        self._emit("serve.request.span", **record)

    def _emit(self, name: str, **fields: Any) -> None:
        bus = self.kernel.bus
        if bus is not None:
            bus.emit(name, **fields)
