"""Command-line interface: regenerate any paper figure from a shell.

Usage::

    python -m repro list
    python -m repro run fig8            # full benchmark-scale run
    python -m repro run fig8 --quick    # scaled-down smoke run
    python -m repro run all --quick

Each run prints the series the paper's figure plots and the result of the
shape check; the exit code is non-zero if any shape expectation is
violated.  ``--csv DIR`` additionally writes each figure's data table as
``<experiment>.csv`` for external plotting.

Observability (see ``docs/observability.md``):

- ``--telemetry DIR`` captures the full telemetry suite per experiment —
  JSONL event log, Chrome trace, Prometheus-style metrics and a
  cycle-budget table (also printed after the report);
- ``--trace DIR`` writes just the Chrome trace (scheduler lanes + ocalls).

Performance (see ``docs/performance.md``):

- ``--jobs N`` fans independent cells over N worker processes
  (``auto`` = host CPU count) with bit-identical results;
- ``--no-cache`` / ``--cache-dir DIR`` control the content-addressed
  result cache (default ``.repro_cache/``).

Regression sentinel (see the "Regression workflow" section of
``docs/observability.md``):

- ``repro baseline`` snapshots a run (cycle-ledger categories, metrics,
  shape verdicts) into a schema-stamped JSON file;
- ``repro diff BASELINE`` re-runs the baseline's experiments (or reads a
  second snapshot with ``--against``) and fails on confirmed regressions;
- ``repro audit`` runs the paper-invariant checkers live over an
  experiment, or replays an exported ``*.events.jsonl``.

Fault injection (see ``docs/faults.md``):

- ``repro faults list`` / ``repro faults show PLAN`` inspect the named
  fault plans (and ``show`` pretty-prints any plan JSON file);
- ``repro faults run EXPERIMENT --plan PLAN`` runs one experiment under
  a fault plan — optionally with ``--audit`` (live invariant checkers;
  gates the exit code) and ``--telemetry DIR``;
- ``repro baseline --plan PLAN`` captures a faulty-run baseline, and
  ``repro diff`` re-runs under the baseline's recorded plan, gating on
  the ``fault`` cycle category (the fault_overhead bound).

Spans, SLOs and evidence packs (see the "Spans, SLOs, and evidence
packs" section of ``docs/observability.md``):

- ``repro serve bench --tenants gold:3,bronze:1`` tags the load with a
  weighted tenant mix (weighted-fair shedding, per-tenant stats);
  ``--contracts FILE`` evaluates per-tenant SLO contracts and exits 1 on
  hard breaches; ``--spans FILE`` exports per-request span records;
- ``repro evidence build --out DIR [--tar FILE]`` runs the bench under
  live audit and packs run config, bench artifact, span samples, audit
  and SLO verdicts with a SHA-256 manifest;
- ``repro evidence verify PACK`` re-hashes a pack (directory or
  tarball) against its manifest, refusing schema mismatches.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any

from repro.analysis.report import to_csv
from repro.experiments import EXPERIMENTS

#: Reduced parameter sets for --quick runs (seconds instead of minutes).
QUICK_KWARGS: dict[str, dict[str, Any]] = {
    "sec3a": {"total_calls": 4_000},
    "fig2": {"total_calls": 4_000, "workers": (1, 3, 5)},
    "fig3": {"total_calls": 3_000, "workers": (1, 5), "g_sweep": (0, 500)},
    "fig7": {"ops": 100},
    "fig8": {"n_keys_sweep": (600,), "worker_counts": (2, 4)},
    "fig9": {"n_keys_sweep": (600,), "worker_counts": (2, 4)},
    "fig10": {"chunks_per_file": 96, "files_per_thread": 4},
    "fig11": {"worker_counts": (2,)},
    "fig12": {"worker_counts": (2,)},
    "fig13": {"ops": 100},
    "sec5d": {"record_sizes": (4_096, 16_384), "records": 60},
    "serve": {"shard_counts": (1, 2), "seconds": 0.05},
}


def run_experiment(
    exp_id: str,
    quick: bool,
    csv_dir: str | None = None,
    telemetry_dir: str | None = None,
    trace_dir: str | None = None,
    jobs: int | str = 1,
    cache: Any | None = None,
) -> int:
    """Run one experiment; returns the number of shape violations."""
    module = EXPERIMENTS[exp_id]
    kwargs = QUICK_KWARGS.get(exp_id, {}) if quick else {}
    started = time.monotonic()
    session = None
    if telemetry_dir is not None or trace_dir is not None:
        from repro.telemetry import TelemetrySession

        session = TelemetrySession()
        # A cache hit skips the cell, so nothing would be captured; an
        # observed run must execute every cell.
        cache = None
    if session is not None:
        with session:
            result = module.run(**kwargs, jobs=jobs, cache=cache)
    else:
        result = module.run(**kwargs, jobs=jobs, cache=cache)
    elapsed = time.monotonic() - started
    print(module.report(result))
    if session is not None:
        if telemetry_dir is not None:
            paths = session.export(telemetry_dir, exp_id)
            print(f"\n{session.render_cycle_budget()}")
            print(f"[telemetry written to {', '.join(sorted(paths.values()))}]")
        if trace_dir is not None:
            path = session.export_trace(trace_dir, exp_id)
            print(f"[trace written to {path}]")
    if csv_dir is not None:
        headers, rows = module.table(result)
        path = os.path.join(csv_dir, f"{exp_id}.csv")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_csv(headers, rows))
        print(f"[csv written to {path}]")
    violations = module.check_shape(result)
    if violations:
        print(f"\nshape check: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
    else:
        print("\nshape check: OK (matches the paper)")
    print(f"[{exp_id}: {elapsed:.1f}s wall]")
    return len(violations)


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    """The shared --jobs/--no-cache/--cache-dir flags (run + report)."""
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="run cells over N worker processes ('auto' = CPU count; default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always execute cells, even when a cached result exists",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache location (default .repro_cache)",
    )


def _make_cache(args: argparse.Namespace) -> Any | None:
    """Build the result cache the flags ask for (None with --no-cache)."""
    if args.no_cache:
        return None
    from repro.parallel import DEFAULT_CACHE_DIR, ResultCache

    return ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)


def _parse_experiments(value: str) -> list[str] | None:
    """``--experiments all`` (None = every experiment) or a comma list."""
    if value == "all":
        return None
    ids = [item.strip() for item in value.split(",") if item.strip()]
    unknown = [exp_id for exp_id in ids if exp_id not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}")
    return ids


def _resolve_plan(name_or_path: str | None) -> Any | None:
    """``--plan`` value → FaultPlan (registry name or JSON file), or None."""
    if name_or_path is None:
        return None
    from repro.faults import get_plan

    return get_plan(name_or_path)


def _cmd_baseline(args: argparse.Namespace) -> int:
    """Capture a run snapshot and write it to ``--out``."""
    from repro.regress import capture_run, save_snapshot

    fault_plan = _resolve_plan(args.plan)
    snapshot = capture_run(
        experiment_ids=_parse_experiments(args.experiments),
        overrides=QUICK_KWARGS if args.quick else {},
        quick=args.quick,
        jobs=args.jobs,
        repeats=args.repeats,
        bench_meta_path=args.bench_meta,
        name=args.name,
        fault_plan=fault_plan,
    )
    path = save_snapshot(snapshot, args.out)
    cells = sum(
        len(record["cells"]) for record in snapshot["experiments"].values()
    )
    plan_note = f", fault plan '{fault_plan.name}'" if fault_plan is not None else ""
    print(
        f"baseline '{snapshot['name']}' written to {path} "
        f"({len(snapshot['experiments'])} experiment(s), {cells} cell(s), "
        f"{args.repeats} repeat(s){plan_note})"
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """Diff a baseline against a re-run (or a second snapshot)."""
    from repro.regress import capture_run, diff_snapshots, load_snapshot

    # Peek at the artifact kind before the regress loader stamps it:
    # obs-windows baselines re-run their own scenario and gate the
    # window stream instead of the cycle ledger.
    with open(args.baseline, encoding="utf-8") as handle:
        peek = json.load(handle)
    if peek.get("meta", {}).get("artifact") == "obs-windows":
        return _diff_obs_baseline(args)
    if peek.get("meta", {}).get("artifact") == "scenario-bench":
        return _diff_scenario_baseline(args)
    if peek.get("meta", {}).get("artifact") == "autoscale-sweep":
        return _diff_autoscale_baseline(args)

    base = load_snapshot(args.baseline)
    if args.against is not None:
        current = load_snapshot(args.against)
    else:
        # Re-run exactly what the baseline recorded, at its own scale —
        # including its fault plan, unless --plan overrides it.
        quick = base.get("quick", True)
        if args.plan is not None:
            fault_plan = _resolve_plan(args.plan)
        elif base.get("fault_plan"):
            from repro.faults import FaultPlan

            fault_plan = FaultPlan.from_dict(base["fault_plan"])
        else:
            fault_plan = None
        current = capture_run(
            experiment_ids=base.get("experiment_ids"),
            overrides=QUICK_KWARGS if quick else {},
            quick=quick,
            jobs=args.jobs,
            repeats=args.repeats if args.repeats else base.get("repeats", 1),
            name="current",
            fault_plan=fault_plan,
        )
    report = diff_snapshots(
        base, current, threshold=args.threshold, min_cycles=args.min_cycles
    )
    text = report.render()
    print(text, end="")
    if args.report is not None:
        directory = os.path.dirname(args.report)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"[diff report written to {args.report}]")
    return report.exit_code()


def _diff_obs_baseline(args: argparse.Namespace) -> int:
    """Re-run an obs-windows baseline's scenario and gate the stream."""
    from repro.obs import (
        compare_obs_baseline,
        load_obs_baseline,
        obs_snapshot,
        run_obs_scenario,
    )

    baseline = load_obs_baseline(args.baseline)
    if args.against is not None:
        current = load_obs_baseline(args.against)
    else:
        print(
            f"[obs baseline: re-running "
            f"{baseline['params']['shards']}-shard windowed bench]"
        )
        current = obs_snapshot(run_obs_scenario(baseline["params"]))
    violations = compare_obs_baseline(current, baseline, threshold=args.threshold)
    summary = current["summary"]
    print(
        f"obs diff: {summary['records']} record(s) over "
        f"{current['windows']} window(s), {summary['anomalies']} anomaly(ies)"
    )
    if violations:
        print(f"obs baseline gate: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"obs baseline gate: OK (matches {args.baseline})")
    return 0


def _diff_scenario_baseline(args: argparse.Namespace) -> int:
    """Re-run a scenario baseline's replay and gate the outcome."""
    from repro.scenarios import (
        compare_scenario_baseline,
        load_scenario_baseline,
        run_scenario_from_baseline,
        scenario_snapshot,
    )

    baseline = load_scenario_baseline(args.baseline)
    name = baseline["params"].get("scenario")
    if args.against is not None:
        current = load_scenario_baseline(args.against)
    else:
        print(
            f"[scenario baseline: replaying {name!r} on "
            f"{baseline['params'].get('shards')} shard(s)]"
        )
        try:
            current = scenario_snapshot(run_scenario_from_baseline(baseline))
        except (OSError, ValueError) as exc:
            print(f"scenario baseline gate: {exc}")
            return 1
    violations = compare_scenario_baseline(
        current, baseline, threshold=args.threshold
    )
    totals = current["totals"]
    print(
        f"scenario diff: {totals.get('issued')} arrival(s), "
        f"{totals.get('completed')} completed, {totals.get('shed')} shed"
    )
    if violations:
        print(f"scenario baseline gate: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"scenario baseline gate: OK (matches {args.baseline})")
    return 0


def _diff_autoscale_baseline(args: argparse.Namespace) -> int:
    """Re-run an autoscale sweep baseline's arms and gate the outcome."""
    from repro.autoscale.bench import (
        compare_sweep_baseline,
        load_sweep_baseline,
        run_autoscale_sweep,
        sweep_snapshot,
    )

    baseline = load_sweep_baseline(args.baseline)
    if args.against is not None:
        current = load_sweep_baseline(args.against)
    else:
        scenario = baseline.get("scenario", "diurnal-kv")
        print(f"[autoscale baseline: re-running the {scenario!r} sweep]")
        try:
            current = sweep_snapshot(run_autoscale_sweep(scenario))
        except (OSError, ValueError) as exc:
            print(f"autoscale baseline gate: {exc}")
            return 1
    violations = compare_sweep_baseline(
        current, baseline, threshold=args.threshold
    )
    arms = current.get("arms", {})
    elastic = arms.get("autoscale", {})
    print(
        f"autoscale diff: {len(arms)} arm(s), elastic "
        f"{elastic.get('cycles_per_request', 0) or 0:,.0f} cycles/request"
    )
    if violations:
        print(f"autoscale baseline gate: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"autoscale baseline gate: OK (matches {args.baseline})")
    return 0


def _cmd_autoscale(args: argparse.Namespace) -> int:
    """The elastic control plane's acceptance sweep (and its baseline)."""
    from repro.autoscale.bench import (
        compare_sweep_baseline,
        load_sweep_baseline,
        run_autoscale_sweep,
        sweep_snapshot,
        write_sweep_baseline,
    )
    from repro.telemetry.schema import SchemaMismatch

    started = time.monotonic()
    result = run_autoscale_sweep(args.scenario)
    elapsed = time.monotonic() - started
    print(f"autoscale sweep: scenario {result['scenario']!r}")
    for name, arm in sorted(result["arms"].items()):
        cpr = arm.get("cycles_per_request")
        p99 = arm.get("p99_us")
        extra = ""
        if arm.get("autoscale"):
            scale = arm["autoscale"]
            extra = (
                f" [{scale['spawns']} spawn(s), {scale['retires']} "
                f"retire(s), final {scale['final_shards']} shard(s)]"
            )
        print(
            f"  {name}: {arm['completed']} completed, "
            f"p99 {p99:.1f} us, "
            f"{cpr:,.0f} cycles/request{extra}"
            if cpr is not None and p99 is not None
            else f"  {name}: {arm['completed']} completed"
        )
    gate = result["gate"]
    if gate["ok"]:
        print("acceptance gate: OK (autoscale beats every static arm)")
    else:
        print(f"acceptance gate: {len(gate['violations'])} violation(s)")
        for violation in gate["violations"]:
            print(f"  - {violation}")
    failures = 0 if gate["ok"] else 1
    if args.out is not None:
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[sweep artifact written to {args.out}]")
    if args.snapshot is not None:
        path = write_sweep_baseline(sweep_snapshot(result), args.snapshot)
        print(f"[sweep baseline snapshot written to {path}]")
    if args.baseline is not None:
        try:
            baseline = load_sweep_baseline(args.baseline)
        except (OSError, SchemaMismatch, ValueError) as exc:
            raise SystemExit(f"--baseline: {exc}")
        violations = compare_sweep_baseline(
            sweep_snapshot(result), baseline, threshold=args.threshold
        )
        if violations:
            print(f"baseline gate: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  - {violation}")
            failures += 1
        else:
            print(
                f"baseline gate: OK (within {args.threshold:.0%} of "
                f"{args.baseline})"
            )
    print(f"[autoscale sweep: {elapsed:.1f}s wall]")
    return 1 if failures else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Run the invariant checkers, live or over an exported event log."""
    from repro.regress import attach_auditor, audit_jsonl

    auditors = []
    if args.events is not None:
        auditors = list(audit_jsonl(args.events).values())
    else:
        if args.experiment is None:
            raise SystemExit("audit needs an experiment id or --events FILE")
        from repro.telemetry import TelemetrySession

        module = EXPERIMENTS[args.experiment]
        kwargs = QUICK_KWARGS.get(args.experiment, {}) if args.quick else {}
        live = []
        # jobs=1: the checkers subscribe to in-process buses; pool workers
        # would run their cells in children the auditors cannot see.
        with TelemetrySession(on_attach=lambda c: live.append(attach_auditor(c))):
            module.run(**kwargs, jobs=1, cache=None)
        for auditor in live:
            auditor.finish()
        auditors = live
    violations = 0
    for auditor in auditors:
        print(auditor.render())
        violations += len(auditor.violations)
    print(
        f"\naudit: {len(auditors)} cell(s), "
        + (f"{violations} violation(s)" if violations else "all invariants hold")
    )
    return 1 if violations else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Inspect fault plans, or run one experiment under a plan."""
    from repro.faults import NAMED_PLANS, activate_plan, get_plan

    if args.faults_cmd == "list":
        for name, plan in NAMED_PLANS.items():
            kinds: dict[str, int] = {}
            for spec in plan.faults:
                kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
            summary = ", ".join(f"{n}x {kind}" for kind, n in sorted(kinds.items()))
            print(f"{name:14s} seed={plan.seed:<7d} {summary}")
        return 0
    if args.faults_cmd == "show":
        print(get_plan(args.plan).to_json())
        return 0

    # faults run
    plan = get_plan(args.plan)
    module = EXPERIMENTS[args.experiment]
    kwargs = QUICK_KWARGS.get(args.experiment, {}) if args.quick else {}
    from repro.telemetry import TelemetrySession

    live: list[Any] = []
    on_attach = None
    if args.audit:
        from repro.regress import attach_auditor

        on_attach = lambda capture: live.append(attach_auditor(capture))  # noqa: E731
    started = time.monotonic()
    # jobs=1: the active plan is process-global state, serial cells keep
    # the injected schedule deterministic, and (with --audit) the live
    # checkers subscribe to in-process buses.
    with TelemetrySession(on_attach=on_attach) as session:
        with activate_plan(plan):
            result = module.run(**kwargs, jobs=1, cache=None)
    elapsed = time.monotonic() - started
    print(module.report(result))

    fault_counts: dict[str, int] = {}
    for capture in session.captures:
        for name, count in capture.event_counts.items():
            if name.startswith("fault."):
                fault_counts[name] = fault_counts.get(name, 0) + count
    print(f"\nfault plan '{plan.name}' (seed {plan.seed}):")
    if fault_counts:
        for name in sorted(fault_counts):
            print(f"  {name:30s} {fault_counts[name]}")
    else:
        print("  no fault events fired (all fault instants past the run's end?)")

    if args.telemetry is not None:
        paths = session.export(args.telemetry, f"{args.experiment}-{plan.name}")
        print(f"\n{session.render_cycle_budget()}")
        print(f"[telemetry written to {', '.join(sorted(paths.values()))}]")

    violations = module.check_shape(result)
    if violations:
        # Under injected faults the paper-shape envelopes may legitimately
        # move; report, but gate on the invariant audit only.
        print(
            f"\nshape check: {len(violations)} violation(s) "
            "(informational under fault injection)"
        )
        for violation in violations:
            print(f"  - {violation}")
    else:
        print("\nshape check: OK even under faults")

    audit_violations = 0
    for auditor in live:
        auditor.finish()
        print(auditor.render())
        audit_violations += len(auditor.violations)
    if args.audit:
        print(
            f"\naudit: {len(live)} cell(s), "
            + (
                f"{audit_violations} violation(s)"
                if audit_violations
                else "all invariants hold"
            )
        )
    print(f"[{args.experiment} under '{plan.name}': {elapsed:.1f}s wall]")
    return 1 if audit_violations else 0


def _parse_tenants(value: str | None) -> dict[str, float] | None:
    """``--tenants "gold:3,bronze:1"`` → weight dict (None when unset)."""
    if value is None:
        return None
    mix: dict[str, float] = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition(":")
        if not name:
            raise SystemExit(f"--tenants: empty tenant name in {value!r}")
        try:
            mix[name.strip()] = float(weight) if weight else 1.0
        except ValueError:
            raise SystemExit(f"--tenants: bad weight for {name!r} in {value!r}")
    if not mix:
        raise SystemExit("--tenants given but names no tenants")
    return mix


def _parse_app_mix(value: str | None) -> tuple[tuple[str, float], ...] | None:
    """``--apps "kv:6,session:3,crypto:1"`` → weighted pairs (None unset).

    Order is preserved: the first app is the shard default/probe app.
    Unknown app names fail here, before any cluster is built.
    """
    if value is None:
        return None
    from repro.serve.apps import APP_CHOICES

    pairs: list[tuple[str, float]] = []
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition(":")
        name = name.strip()
        if not name:
            raise SystemExit(f"--apps: empty app name in {value!r}")
        if name not in APP_CHOICES:
            raise SystemExit(
                f"--apps: unknown app {name!r}; choices: {', '.join(APP_CHOICES)}"
            )
        if any(existing == name for existing, _ in pairs):
            raise SystemExit(f"--apps: duplicate app {name!r} in {value!r}")
        try:
            pairs.append((name, float(weight) if weight else 1.0))
        except ValueError:
            raise SystemExit(f"--apps: bad weight for {name!r} in {value!r}")
    if not pairs:
        raise SystemExit("--apps given but names no apps")
    return tuple(pairs)


def _resolve_trace(args: argparse.Namespace) -> tuple[Any, str | None]:
    """``--scenario``/``--trace`` → (loaded trace, its file path).

    Returns ``(None, None)`` when neither flag is set.  Every failure
    mode — unknown scenario name, missing file, bad schema stamp,
    corrupted events — exits with a one-line message instead of a
    traceback (the flags are user input, not code).
    """
    scenario = getattr(args, "scenario", None)
    trace_file = getattr(args, "trace", None)
    if scenario is None and trace_file is None:
        return None, None
    if scenario is not None and trace_file is not None:
        raise SystemExit("--scenario and --trace are mutually exclusive")
    from repro.scenarios import get_scenario, load_trace, trace_path
    from repro.telemetry.schema import SchemaMismatch

    if scenario is not None:
        try:
            get_scenario(scenario)
        except ValueError as exc:
            raise SystemExit(f"--scenario: {exc}")
        path = trace_path(scenario)
        if not os.path.exists(path):
            raise SystemExit(
                f"--scenario: no committed trace at {path}; generate it with "
                f"'repro scenarios gen {scenario}'"
            )
    else:
        path = trace_file
    try:
        trace = load_trace(path)
    except FileNotFoundError:
        raise SystemExit(f"--trace: no such file: {path}")
    except (SchemaMismatch, ValueError) as exc:
        raise SystemExit(f"--trace: {exc}")
    return trace, path


def _replay_live_console(console: Any, obs: dict[str, Any]) -> None:
    """Feed a finished window stream through the live console window by
    window — the end-of-run fallback for sliced runs, where the windows
    closed inside child processes."""
    by_window: dict[int, list[dict[str, Any]]] = {}
    for record in obs["records"]:
        by_window.setdefault(record["window"], []).append(record)
    anomalies_by_window: dict[int, list[dict[str, Any]]] = {}
    for anomaly in obs["anomalies"]:
        anomalies_by_window.setdefault(anomaly["window"], []).append(anomaly)
    for index in sorted(by_window):
        console.on_window(
            index, by_window[index], anomalies_by_window.get(index, [])
        )


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """The scenario library: list the catalog, gen traces, replay them."""
    from repro.scenarios import (
        CATALOG,
        SCENARIO_NAMES,
        generate_trace,
        get_scenario,
        load_trace,
        trace_path,
        write_trace,
    )

    if args.scenarios_cmd == "list":
        print(f"{'scenario':<14} {'arrival':<8} {'apps':<20} description")
        for spec in CATALOG:
            apps = ",".join(name for name, _ in spec.apps)
            print(f"{spec.name:<14} {spec.arrival:<8} {apps:<20} {spec.description}")
        return 0

    if args.scenarios_cmd == "gen":
        names = list(SCENARIO_NAMES) if args.name == "all" else [args.name]
        if args.out is not None and len(names) > 1:
            raise SystemExit("--out needs a single scenario, not 'all'")
        drifted = 0
        for name in names:
            try:
                spec = get_scenario(name)
            except ValueError as exc:
                raise SystemExit(str(exc))
            trace = generate_trace(spec)
            path = args.out if args.out is not None else trace_path(name)
            if args.check:
                try:
                    committed = load_trace(path)
                except FileNotFoundError:
                    print(f"{name}: MISSING ({path})")
                    drifted += 1
                    continue
                except ValueError as exc:
                    print(f"{name}: INVALID ({exc})")
                    drifted += 1
                    continue
                if committed.digest != trace.digest:
                    print(
                        f"{name}: DRIFT (committed {committed.digest[:12]}… "
                        f"vs regenerated {trace.digest[:12]}…)"
                    )
                    drifted += 1
                else:
                    print(f"{name}: OK ({len(trace.events)} events)")
                continue
            write_trace(trace, path)
            print(
                f"{name}: {len(trace.events)} events over "
                f"{trace.duration_s * 1e3:.0f} ms -> {path}"
            )
        return 1 if drifted else 0

    # replay
    from repro.scenarios import (
        compare_scenario_baseline,
        load_scenario_baseline,
        replay_scenario,
        scenario_snapshot,
        write_scenario_baseline,
    )
    from repro.serve.bench import write_result
    from repro.telemetry.schema import SchemaMismatch

    overrides: dict[str, Any] = {}
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.backend is not None:
        overrides["backend"] = args.backend
    started = time.monotonic()
    try:
        result = replay_scenario(
            args.name, slices=args.slices, audit=args.audit, **overrides
        )
    except FileNotFoundError as exc:
        raise SystemExit(
            f"no committed trace for {args.name!r} ({exc}); generate it "
            f"with 'repro scenarios gen {args.name}'"
        )
    except (SchemaMismatch, ValueError) as exc:
        raise SystemExit(str(exc))
    elapsed = time.monotonic() - started
    totals = result["totals"]
    latency = totals["latency_us"]
    print(
        f"scenario {args.name}: {result['params']['trace_events']} arrival(s) "
        f"replayed on {result['params']['shards']} shard(s)"
        + (f" over {args.slices} slice(s)" if args.slices > 1 else "")
    )
    print(
        f"  {totals['completed']} completed, {totals['shed']} shed, "
        f"{totals['failed']} failed; p50 {latency['p50']:.1f} us, "
        f"p99 {latency['p99']:.1f} us"
    )
    for app, record in result.get("per_app", {}).items():
        print(
            f"  app {app}: {record['completed']} completed, "
            f"{record['shed']} shed, p99 {record['latency_us']['p99']:.1f} us"
        )
    failures = 0
    if "audit" in result:
        audit = result["audit"]
        if audit["ok"]:
            print(f"  audit: OK ({len(audit['cells'])} kernel(s))")
        else:
            print(f"  audit: {audit['violations']} violation(s)")
            for entry in audit["cells"]:
                for violation in entry["violations"]:
                    print(f"    - {violation}")
            failures += 1
    path = write_result(result, args.out)
    print(f"[scenario artifact written to {path}]")
    if args.snapshot is not None:
        snap_path = write_scenario_baseline(
            scenario_snapshot(result), args.snapshot
        )
        print(f"[scenario baseline snapshot written to {snap_path}]")
    if args.baseline is not None:
        try:
            baseline = load_scenario_baseline(args.baseline)
        except (OSError, SchemaMismatch, ValueError) as exc:
            raise SystemExit(f"--baseline: {exc}")
        violations = compare_scenario_baseline(
            result, baseline, threshold=args.threshold
        )
        if violations:
            print(f"baseline gate: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  - {violation}")
            failures += 1
        else:
            print(
                f"baseline gate: OK (within {args.threshold:.0%} of "
                f"{args.baseline})"
            )
    print(f"[scenarios replay: {elapsed:.1f}s wall]")
    return 1 if failures else 0


def _serve_bench_spec(
    args: argparse.Namespace,
    *,
    tenants: dict[str, float] | None,
    app_mix: tuple[tuple[str, float], ...] | None,
    obs_enabled: bool,
) -> Any:
    """The serve-bench flags folded into one validated ``BenchSpec``.

    All spec-combination validation (slices vs shards, autoscale vs
    fixed slices, trace vs closed loop, …) happens inside the spec
    constructors — :class:`repro.api.SpecError` is the single error
    path, surfaced as a one-line ``SystemExit``.
    """
    from repro.api import AutoscaleSpec, BenchSpec, ServeSpec, SpecError
    from repro.telemetry.schema import SchemaMismatch

    if getattr(args, "spec", None) is not None:
        conflicting = [
            flag
            for flag, given in (
                ("--scenario", getattr(args, "scenario", None) is not None),
                ("--trace", getattr(args, "trace", None) is not None),
                ("--autoscale", bool(getattr(args, "autoscale", False))),
            )
            if given
        ]
        if conflicting:
            raise SystemExit(
                f"--spec carries the full bench config; drop {conflicting}"
            )
        try:
            with open(args.spec, encoding="utf-8") as fh:
                spec = BenchSpec.from_json(json.load(fh))
        except FileNotFoundError:
            raise SystemExit(f"--spec: no such file: {args.spec}")
        except (SchemaMismatch, SpecError, KeyError, TypeError, ValueError) as exc:
            raise SystemExit(f"--spec: {exc}")
        if obs_enabled and not spec.obs:
            spec = spec.replace(obs=True)
        return spec
    autoscale = None
    if getattr(args, "autoscale", False):
        try:
            autoscale = AutoscaleSpec(
                min_shards=args.min_shards, max_shards=args.max_shards
            )
        except SpecError as exc:
            raise SystemExit(str(exc))
    try:
        serve = ServeSpec(
            shards=args.shards,
            backend=args.backend,
            policy=args.policy,
            admission=args.admission,
            queue_capacity=args.queue_capacity,
            servers_per_shard=args.servers_per_shard,
            budget=args.budget,
            apps=app_mix,
            tenants=tuple(sorted(tenants.items())) if tenants else None,
            plan=args.plan,
            fault_shard=args.fault_shard,
            autoscale=autoscale,
        )
        return BenchSpec(
            serve=serve,
            seconds=args.seconds,
            rate=None if args.clients is not None else args.rate,
            clients=args.clients,
            requests_per_client=args.requests_per_client,
            keydist=args.keydist,
            seed=args.seed,
            scenario=getattr(args, "scenario", None),
            trace=getattr(args, "trace", None),
            slices=args.slices,
            obs=obs_enabled,
            obs_interval=args.obs_interval,
        )
    except SpecError as exc:
        raise SystemExit(str(exc))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the sharded serving bench; optionally gate against a baseline."""
    from repro.api import SpecError
    from repro.serve.bench import (
        compare_to_baseline,
        load_baseline,
        run_bench,
        write_result,
    )

    obs_enabled = bool(
        args.obs
        or args.live
        or args.obs_interval is not None
        or args.obs_out is not None
        or args.obs_html is not None
        or args.obs_snapshot is not None
    )
    console = None
    obs_on_window = None
    if args.live:
        from repro.obs import LiveConsole

        console = LiveConsole()
        if args.slices > 1 or args.audit:
            # Slice kernels run in child processes; the merged stream is
            # only available at the end, so replay it then.
            print(
                "[--live: windows close inside slice processes; "
                "rendering the merged stream after the run]"
            )
        else:
            obs_on_window = console.on_window
    tenants = _parse_tenants(args.tenants)
    app_mix = _parse_app_mix(args.apps)
    # Early, user-friendly validation of the trace flags (unknown
    # scenario names, missing files); the loaded trace is reused below.
    trace, _trace_file = _resolve_trace(args)
    contracts = None
    if args.contracts is not None:
        from repro.slo import load_contracts

        contracts = load_contracts(args.contracts)
    span_sink: list | None = [] if args.spans is not None else None
    spec = _serve_bench_spec(
        args, tenants=tenants, app_mix=app_mix, obs_enabled=obs_enabled
    )
    started = time.monotonic()
    try:
        if args.slices > 1 or args.audit:
            # Slice-parallel path: shards partitioned across processes,
            # merged deterministically (repro.serve.slices).  --audit
            # rides this path even with one slice so the live checkers
            # run in a child kernel.
            from repro.serve.slices import run_slice_bench

            if args.spans is not None:
                raise SystemExit(
                    "--spans is unavailable with --slices/--audit "
                    "(span records stay in the slice processes)"
                )
            if spec.clients is not None:
                raise SystemExit(
                    "--slices/--audit require the open loop (no --clients)"
                )
            result = run_slice_bench(
                spec,
                audit=args.audit,
                jobs=args.jobs,
                contracts=contracts,
            )
        else:
            result = run_bench(
                spec,
                telemetry=False,
                contracts=contracts,
                span_sink=span_sink,
                obs_on_window=obs_on_window,
                trace=trace,
            )
    except SpecError as exc:
        raise SystemExit(str(exc))
    if console is not None and obs_on_window is None and "obs" in result:
        _replay_live_console(console, result["obs"])
    if console is not None:
        console.finish()
    elapsed = time.monotonic() - started
    totals = result["totals"]
    latency = totals["latency_us"]
    plan_name = result["params"].get("plan")
    print(
        f"serve bench: {result['params']['shards']} shard(s), "
        f"backend {result['params']['backend']}"
        + (f", plan '{plan_name}'" if plan_name else "")
    )
    print(
        f"  throughput {totals['throughput_rps']:.0f} rps over "
        f"{totals['elapsed_s'] * 1e3:.2f} ms simulated "
        f"({totals['completed']} completed, {totals['shed']} shed, "
        f"{totals['failed']} failed)"
    )
    print(
        f"  latency p50 {latency['p50']:.1f} us, p99 {latency['p99']:.1f} us, "
        f"max {latency['max']:.1f} us"
    )
    if result["budget"] is not None:
        budget = result["budget"]
        print(
            f"  worker budget: cap {budget['cap']}, in use {budget['in_use']}, "
            f"{budget['clipped']} grant(s) clipped"
        )
    if result.get("autoscale") is not None:
        scale = result["autoscale"]
        print(
            f"  autoscale: {scale['windows']} window(s), "
            f"{scale['spawns']} spawn(s), {scale['retires']} retire(s), "
            f"{scale['forecast_shed']} forecast-shed, "
            f"final {scale['final_shards']} shard(s) @ cap {scale['final_cap']}"
        )
    fleet = result.get("fleet")
    if fleet is not None and fleet.get("cycles_per_request") is not None:
        print(
            f"  fleet: {fleet['provisioned_cycles']:,.0f} provisioned "
            f"cycle(s), {fleet['cycles_per_request']:,.0f} per completed "
            f"request"
        )
    if totals["quarantines"] or totals["dead"]:
        print(
            f"  faults: {totals['quarantines']} quarantine(s), "
            f"{totals['readmissions']} readmission(s), "
            f"{totals['rerouted']} rerouted, dead shards {totals['dead'] or 'none'}"
        )
    for tenant, record in result.get("per_tenant", {}).items():
        print(
            f"  tenant {tenant or '<anon>'}: {record['completed']} completed, "
            f"{record['shed']} shed ({record['shed_rate']:.1%}), "
            f"p99 {record['latency_us']['p99']:.1f} us"
        )
    for entry in result.get("slices", []):
        print(
            f"  slice {entry['slice']}: shards {entry['shard_ids']}, "
            f"{entry['completed']} completed, "
            f"{entry['skipped_arrivals']} arrival(s) owned elsewhere"
        )
    path = write_result(result, args.out)
    print(f"[serve artifact written to {path}]")
    if span_sink is not None:
        from repro.slo import write_spans_jsonl

        count = write_spans_jsonl(args.spans, span_sink)
        print(f"[{count} span record(s) written to {args.spans}]")
    if obs_enabled and "obs" in result:
        from repro.obs import (
            obs_snapshot,
            write_html_report,
            write_obs_snapshot,
            write_windows_jsonl,
        )

        obs = result["obs"]
        print(
            f"  obs: {obs['windows']} window(s) x {len(obs['lanes'])} lane(s), "
            f"{len(obs['records'])} record(s), "
            f"{len(obs['anomalies'])} anomaly(ies)"
            + (
                f", {sum(obs['spilled'].values())} event(s) past the horizon"
                if obs.get("spilled")
                else ""
            )
        )
        for anomaly in obs["anomalies"][:8]:
            print(
                f"    ! window {anomaly['window']} {anomaly['lane']}."
                f"{anomaly['metric']}: {anomaly['kind']} "
                f"(value {anomaly['value']:.3g}, z {anomaly['z']:.1f})"
            )
        if len(obs["anomalies"]) > 8:
            print(f"    ... and {len(obs['anomalies']) - 8} more")
        obs_out = args.obs_out
        if obs_out is None:
            stem = args.out[:-5] if args.out.endswith(".json") else args.out
            obs_out = stem + ".windows.jsonl"
        write_windows_jsonl(obs, obs_out)
        print(f"[window stream written to {obs_out}]")
        if args.obs_html is not None:
            write_html_report(obs, args.obs_html)
            print(f"[obs dashboard written to {args.obs_html}]")
        if args.obs_snapshot is not None:
            write_obs_snapshot(obs_snapshot(result), args.obs_snapshot)
            print(f"[obs baseline snapshot written to {args.obs_snapshot}]")
    print(f"[serve: {elapsed:.1f}s wall]")
    failures = 0
    if "audit" in result:
        audit = result["audit"]
        if audit["ok"]:
            print(f"audit: OK ({len(audit['cells'])} kernel(s), all invariants hold)")
        else:
            print(f"audit: {audit['violations']} violation(s)")
            for entry in audit["cells"]:
                for violation in entry["violations"]:
                    print(f"  - {violation}")
            failures += 1
    if contracts is not None:
        from repro.slo import Verdict, render_verdicts

        verdicts = [
            Verdict(**{k: v for k, v in entry.items() if k != "diff_severity"})
            for entry in result["slo"]["verdicts"]
        ]
        print("\n" + render_verdicts(verdicts))
        if result["slo"]["hard_breaches"]:
            failures += 1
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        violations = compare_to_baseline(
            result, baseline, threshold=args.threshold
        )
        if violations:
            print(f"\nbaseline gate: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  - {violation}")
            failures += 1
        else:
            print(
                f"\nbaseline gate: OK (within {args.threshold:.0%} of {args.baseline})"
            )
    return 1 if failures else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile the simulator's host-side hot paths (``profile meta``)."""
    import json as json_mod

    from repro.profiler.meta import export_sched_trace, profile_storm, render_profile

    use_zc = args.backend == "zc"
    artifact = profile_storm(
        use_zc=use_zc, n_ocalls=args.ocalls, timers=args.timers, top=args.top
    )
    print(render_profile(artifact))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_mod.dump(artifact, handle, indent=2)
            handle.write("\n")
        print(f"[profile artifact written to {args.json}]")
    if args.trace is not None:
        count = export_sched_trace(
            args.trace, use_zc=use_zc, n_ocalls=args.ocalls, timers=args.timers
        )
        print(f"[{count} chrome trace event(s) written to {args.trace}]")
    return 0


def _cmd_evidence(args: argparse.Namespace) -> int:
    """Build (run + pack) or verify an evidence pack."""
    from repro.slo import verify_evidence_pack
    from repro.telemetry.schema import SchemaMismatch

    if args.evidence_cmd == "verify":
        try:
            errors = verify_evidence_pack(args.pack)
        except SchemaMismatch as exc:
            print(f"evidence verify: refused — {exc}")
            return 1
        if errors:
            print(f"evidence verify: {len(errors)} problem(s) in {args.pack}")
            for error in errors:
                print(f"  - {error}")
            return 1
        print(f"evidence verify: OK ({args.pack} matches its manifest)")
        return 0

    # evidence build: one command runs the bench (with telemetry + live
    # audit), evaluates contracts, and packs every artifact with hashes.
    from repro.api import BenchSpec, ServeSpec, SpecError
    from repro.regress import attach_auditor
    from repro.serve.bench import compare_to_baseline, load_baseline, run_bench
    from repro.slo import (
        Verdict,
        build_evidence_pack,
        load_contracts,
        pack_tarball,
        render_verdicts,
        tenant_lane_trace_events,
    )
    from repro.telemetry import TelemetrySession
    from repro.telemetry.schema import stamp

    tenants = _parse_tenants(args.tenants)
    contracts = load_contracts(args.contracts) if args.contracts else None
    obs_enabled = bool(args.obs or args.obs_interval is not None)
    if args.obs_interval is not None and args.obs_interval <= 0:
        raise SystemExit(
            f"--obs-interval must be a positive cycle count "
            f"(got {args.obs_interval:g})"
        )
    try:
        spec = BenchSpec(
            serve=ServeSpec(
                shards=args.shards,
                backend=args.backend,
                policy=args.policy,
                admission=args.admission,
                queue_capacity=args.queue_capacity,
                servers_per_shard=args.servers_per_shard,
                budget=args.budget,
                plan=args.plan,
                fault_shard=args.fault_shard,
                tenants=tuple(sorted(tenants.items())) if tenants else None,
            ),
            seconds=args.seconds,
            rate=args.rate,
            keydist=args.keydist,
            seed=args.seed,
            obs=obs_enabled,
            obs_interval=args.obs_interval,
        )
    except SpecError as exc:
        raise SystemExit(str(exc))
    span_sink: list = []
    auditors: list[Any] = []
    started = time.monotonic()
    with TelemetrySession(
        on_attach=lambda capture: auditors.append(attach_auditor(capture))
    ) as session:
        result = run_bench(
            spec,
            contracts=contracts,
            span_sink=span_sink,
            telemetry=session,
        )
    freq_hz = session.captures[0].freq_hz if session.captures else 1e9
    for auditor in auditors:
        auditor.finish()
    audit_doc = {
        "meta": stamp("audit-report"),
        "cells": [
            {
                "cell": auditor.cell,
                "ok": auditor.ok,
                "violations": [str(v) for v in auditor.violations],
            }
            for auditor in auditors
        ],
    }
    audit_violations = sum(len(a.violations) for a in auditors)

    contents: dict[str, Any] = {
        "run_config.json": {"meta": stamp("run-config"), "params": result["params"]},
        "bench.json": result,
        "audit.json": audit_doc,
        "trace.json": {
            **stamp("chrome-trace"),
            "traceEvents": tenant_lane_trace_events(span_sink, freq_hz),
        },
    }
    # Span samples as their own stamped JSONL artifact (capped: evidence
    # wants representative samples, not an unbounded transcript).
    sample = span_sink[: args.span_samples]
    span_lines = [json.dumps(stamp("spans-jsonl"))]
    span_lines += [json.dumps(record) for record in sample]
    contents["spans.jsonl"] = "\n".join(span_lines) + "\n"
    if obs_enabled and "obs" in result:
        from repro.obs import render_windows_jsonl

        contents["windows.jsonl"] = render_windows_jsonl(result["obs"])
    if len(span_sink) > len(sample):
        print(
            f"[spans.jsonl carries the first {len(sample)} of "
            f"{len(span_sink)} span record(s); raise --span-samples for more]"
        )

    gate_violations: list[str] = []
    if args.contracts:
        with open(args.contracts, encoding="utf-8") as handle:
            contents["contracts.json"] = handle.read()
        contents["verdicts.json"] = {
            "meta": stamp("slo-verdicts"),
            **result["slo"],
        }
        verdicts = [
            Verdict(**{k: v for k, v in entry.items() if k != "diff_severity"})
            for entry in result["slo"]["verdicts"]
        ]
        print(render_verdicts(verdicts))
    if args.baseline:
        baseline = load_baseline(args.baseline)
        gate_violations = compare_to_baseline(
            result, baseline, threshold=args.threshold
        )
        with open(args.baseline, encoding="utf-8") as handle:
            contents["baseline.json"] = handle.read()
        contents["gate.json"] = {
            "meta": stamp("baseline-gate"),
            "baseline": args.baseline,
            "threshold": args.threshold,
            "violations": gate_violations,
        }

    build_evidence_pack(args.out, contents)
    print(
        f"[evidence pack: {len(contents) + 1} file(s) in {args.out} "
        f"({time.monotonic() - started:.1f}s wall)]"
    )
    if args.tar:
        print(f"[evidence tarball written to {pack_tarball(args.out, args.tar)}]")

    failures = 0
    if audit_violations:
        print(f"evidence: {audit_violations} invariant violation(s) — see audit.json")
        failures += 1
    if args.contracts and result["slo"]["hard_breaches"]:
        print(
            f"evidence: {result['slo']['hard_breaches']} hard SLO breach(es) "
            "— see verdicts.json"
        )
        failures += 1
    if gate_violations:
        print(f"evidence: baseline gate failed ({len(gate_violations)} violation(s))")
        for violation in gate_violations:
            print(f"  - {violation}")
        failures += 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures of 'SGX Switchless Calls Made Configless'",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "parallelism and caching (run/report subcommands):\n"
            "  --jobs N       fan independent experiment cells over N worker\n"
            "                 processes ('auto' = host CPU count).  Results are\n"
            "                 bit-identical to --jobs 1: cells own their kernels\n"
            "                 and are collected in deterministic cell order.\n"
            "  --no-cache     disable the content-addressed result cache; by\n"
            "                 default cells whose (code, parameters) were already\n"
            "                 computed are served from .repro_cache/.\n"
            "  --cache-dir D  keep the cache somewhere else.\n"
            "  Runs with --telemetry/--trace always execute every cell.\n"
            "  See docs/performance.md for details."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run_parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters"
    )
    run_parser.add_argument(
        "--csv", metavar="DIR", help="also write <experiment>.csv into DIR"
    )
    run_parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help="capture telemetry (events/trace/metrics/cycle budget) into DIR",
    )
    run_parser.add_argument(
        "--trace", metavar="DIR", help="write a Chrome trace per experiment into DIR"
    )
    _add_parallel_args(run_parser)
    report_parser = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report_parser.add_argument("--out", default="report.md", help="output file")
    report_parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters"
    )
    report_parser.add_argument(
        "--csv", metavar="DIR", help="also write each experiment's CSV into DIR"
    )
    _add_parallel_args(report_parser)

    baseline_parser = sub.add_parser(
        "baseline", help="snapshot a run for later regression diffs"
    )
    baseline_parser.add_argument(
        "--out", default="baselines/quick.json", help="snapshot output file"
    )
    baseline_parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters"
    )
    baseline_parser.add_argument(
        "--experiments",
        default="all",
        metavar="IDS",
        help="comma-separated experiment ids (default all)",
    )
    baseline_parser.add_argument(
        "--repeats", type=int, default=1, help="runs per experiment (bootstrap samples)"
    )
    baseline_parser.add_argument(
        "--jobs", default="1", metavar="N", help="worker processes per run"
    )
    baseline_parser.add_argument(
        "--bench-meta", default=None, metavar="FILE", help="embed a BENCH_meta.json"
    )
    baseline_parser.add_argument("--name", default="baseline", help="snapshot name")
    baseline_parser.add_argument(
        "--plan",
        default=None,
        metavar="PLAN",
        help="capture the run under a fault plan (name or JSON file)",
    )

    diff_parser = sub.add_parser(
        "diff", help="compare a run against a baseline snapshot"
    )
    diff_parser.add_argument("baseline", help="baseline snapshot file")
    diff_parser.add_argument(
        "--against",
        default=None,
        metavar="SNAPSHOT",
        help="second snapshot to compare (default: re-run the baseline's experiments)",
    )
    diff_parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative delta a gated quantity may move (default 0.05)",
    )
    diff_parser.add_argument(
        "--min-cycles",
        type=float,
        default=1_000.0,
        help="ignore cycle categories smaller than this on both sides",
    )
    diff_parser.add_argument(
        "--repeats", type=int, default=0, help="re-run repeats (default: baseline's)"
    )
    diff_parser.add_argument(
        "--jobs", default="1", metavar="N", help="worker processes for the re-run"
    )
    diff_parser.add_argument(
        "--report", default=None, metavar="FILE", help="also write the markdown report"
    )
    diff_parser.add_argument(
        "--plan",
        default=None,
        metavar="PLAN",
        help="fault plan for the re-run (default: the baseline's recorded plan)",
    )

    audit_parser = sub.add_parser(
        "audit", help="check paper invariants, live or from an event log"
    )
    audit_parser.add_argument(
        "experiment", nargs="?", choices=list(EXPERIMENTS), help="run live"
    )
    audit_parser.add_argument(
        "--events", default=None, metavar="FILE", help="replay an exported *.events.jsonl"
    )
    audit_parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters"
    )

    faults_parser = sub.add_parser(
        "faults", help="inspect fault plans / run an experiment under one"
    )
    faults_sub = faults_parser.add_subparsers(dest="faults_cmd", required=True)
    faults_sub.add_parser("list", help="list the named fault plans")
    faults_show = faults_sub.add_parser("show", help="print a plan as JSON")
    faults_show.add_argument("plan", help="plan name or JSON file")
    faults_run = faults_sub.add_parser(
        "run", help="run one experiment under a fault plan (always jobs=1, no cache)"
    )
    faults_run.add_argument("experiment", choices=list(EXPERIMENTS))
    faults_run.add_argument(
        "--plan", default="crash-heavy", help="plan name or JSON file (default crash-heavy)"
    )
    faults_run.add_argument(
        "--quick", action="store_true", help="scaled-down parameters"
    )
    faults_run.add_argument(
        "--audit",
        action="store_true",
        help="attach live invariant checkers; violations drive the exit code",
    )
    faults_run.add_argument(
        "--telemetry",
        metavar="DIR",
        help="capture telemetry (events/trace/metrics/cycle budget) into DIR",
    )
    serve_parser = sub.add_parser(
        "serve", help="sharded multi-enclave serving layer"
    )
    serve_sub = serve_parser.add_subparsers(dest="serve_cmd", required=True)
    serve_bench = serve_sub.add_parser(
        "bench", help="run the serving bench and write BENCH_serve.json"
    )
    from repro.api import BACKEND_CHOICES
    from repro.serve import ADMISSION_CHOICES, KEYDIST_CHOICES, POLICY_CHOICES

    serve_bench.add_argument(
        "--shards", type=int, default=2, help="enclave shards (default 2)"
    )
    serve_bench.add_argument(
        "--seconds",
        type=float,
        default=2.0,
        help="simulated run length in seconds (default 2.0)",
    )
    serve_bench.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="zc",
        help="call backend per shard (default zc)",
    )
    serve_bench.add_argument(
        "--rate",
        type=float,
        default=2_000.0,
        help="open-loop offered load in rps (default 2000)",
    )
    serve_bench.add_argument(
        "--clients",
        type=int,
        default=None,
        help="switch to a closed loop with N client threads",
    )
    serve_bench.add_argument(
        "--requests-per-client",
        type=int,
        default=None,
        help="closed-loop bound on requests per client",
    )
    serve_bench.add_argument(
        "--policy",
        choices=POLICY_CHOICES,
        default="hash",
        help="request placement (default hash = rendezvous)",
    )
    serve_bench.add_argument(
        "--admission",
        choices=ADMISSION_CHOICES,
        default="shed",
        help="full-queue behaviour (default shed)",
    )
    serve_bench.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="per-shard queue bound (default 64)",
    )
    serve_bench.add_argument(
        "--servers-per-shard",
        type=int,
        default=2,
        help="untrusted server threads per shard (default 2)",
    )
    serve_bench.add_argument(
        "--budget",
        type=int,
        default=None,
        help="global switchless-worker cap across all shards (default uncapped)",
    )
    serve_bench.add_argument(
        "--plan",
        default=None,
        metavar="PLAN",
        help="fault plan (name or JSON file) injected into one shard",
    )
    serve_bench.add_argument(
        "--fault-shard",
        type=int,
        default=0,
        help="shard the fault plan targets (default 0)",
    )
    serve_bench.add_argument(
        "--keydist",
        choices=KEYDIST_CHOICES,
        default="uniform",
        help="client key distribution (default uniform)",
    )
    serve_bench.add_argument(
        "--seed", type=int, default=0, help="load-generator seed (default 0)"
    )
    serve_bench.add_argument(
        "--out",
        default="BENCH_serve.json",
        metavar="FILE",
        help="artifact output path (default BENCH_serve.json)",
    )
    serve_bench.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="gate the run against a committed serve baseline",
    )
    serve_bench.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="relative drift the baseline gate tolerates (default 0.1)",
    )
    serve_bench.add_argument(
        "--tenants",
        default=None,
        metavar="MIX",
        help=(
            "weighted tenant mix, e.g. 'gold:3,bronze:1' "
            "(enables weighted-fair shedding and per-tenant stats)"
        ),
    )
    serve_bench.add_argument(
        "--contracts",
        default=None,
        metavar="FILE",
        help="evaluate per-tenant SLO contracts; hard breaches exit 1",
    )
    serve_bench.add_argument(
        "--apps",
        default=None,
        metavar="MIX",
        help=(
            "weighted served-app mix, e.g. 'kv:6,session:3,crypto:1' "
            "(installs every named app on every shard; first = default)"
        ),
    )
    serve_bench.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help=(
            "replay a catalog scenario's committed trace instead of "
            "synthetic load (see 'repro scenarios list')"
        ),
    )
    serve_bench.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay a scenario trace file instead of synthetic load",
    )
    serve_bench.add_argument(
        "--spans",
        default=None,
        metavar="FILE",
        help="write per-request span records as stamped JSONL",
    )
    serve_bench.add_argument(
        "--slices",
        type=int,
        default=1,
        help=(
            "partition the shards across N slice processes, each simulating "
            "its subset, and merge deterministically (open loop only; "
            "default 1 = single process)"
        ),
    )
    serve_bench.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="slice worker processes ('auto' = CPU count; default auto)",
    )
    serve_bench.add_argument(
        "--audit",
        action="store_true",
        help=(
            "attach live invariant checkers to every slice kernel; "
            "violations drive the exit code (requires --slices)"
        ),
    )
    serve_bench.add_argument(
        "--obs",
        action="store_true",
        help=(
            "attach the windowed metric sampler + anomaly detector; "
            "writes the window stream as stamped JSONL"
        ),
    )
    serve_bench.add_argument(
        "--obs-interval",
        type=float,
        default=None,
        metavar="CYCLES",
        help=(
            "window length in simulated cycles (implies --obs; default: "
            "the run split into 10 windows)"
        ),
    )
    serve_bench.add_argument(
        "--obs-out",
        default=None,
        metavar="FILE",
        help=(
            "window-stream JSONL path (implies --obs; default: derived "
            "from --out as *.windows.jsonl)"
        ),
    )
    serve_bench.add_argument(
        "--obs-html",
        default=None,
        metavar="FILE",
        help="also write a self-contained HTML sparkline dashboard (implies --obs)",
    )
    serve_bench.add_argument(
        "--obs-snapshot",
        default=None,
        metavar="FILE",
        help=(
            "write an obs-windows baseline snapshot for 'repro diff' "
            "(implies --obs)"
        ),
    )
    serve_bench.add_argument(
        "--live",
        action="store_true",
        help=(
            "render a live per-shard console as windows close (implies "
            "--obs; plain lines when stdout is not a TTY)"
        ),
    )
    serve_bench.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help=(
            "load the full bench config from a serve-spec JSON file "
            "(BenchSpec.to_json; replaces the topology/load flags)"
        ),
    )
    serve_bench.add_argument(
        "--autoscale",
        action="store_true",
        help=(
            "run the elastic control plane (repro.autoscale): spawn/retire "
            "shards, retune the worker cap and gate admission per obs window"
        ),
    )
    serve_bench.add_argument(
        "--min-shards",
        type=int,
        default=1,
        help="autoscale floor on the fleet size (default 1)",
    )
    serve_bench.add_argument(
        "--max-shards",
        type=int,
        default=8,
        help="autoscale ceiling on the fleet size (default 8)",
    )

    scenarios_parser = sub.add_parser(
        "scenarios", help="trace-driven scenario library (list/gen/replay)"
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_cmd", required=True
    )
    scenarios_sub.add_parser("list", help="list the catalog scenarios")
    scen_gen = scenarios_sub.add_parser(
        "gen", help="deterministically (re)generate a scenario's trace file"
    )
    scen_gen.add_argument("name", help="catalog scenario name, or 'all'")
    scen_gen.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="trace output path (default traces/<name>.trace.jsonl)",
    )
    scen_gen.add_argument(
        "--check",
        action="store_true",
        help=(
            "verify the committed trace byte-matches a regeneration "
            "instead of writing (exit 1 on drift)"
        ),
    )
    scen_replay = scenarios_sub.add_parser(
        "replay", help="replay a committed scenario trace through the serve layer"
    )
    scen_replay.add_argument("name", help="catalog scenario name")
    scen_replay.add_argument(
        "--slices",
        type=int,
        default=1,
        help="slice-parallel replay over N processes (default 1)",
    )
    scen_replay.add_argument(
        "--audit",
        action="store_true",
        help="attach live invariant checkers to every slice kernel",
    )
    scen_replay.add_argument(
        "--shards", type=int, default=None, help="override the catalog cluster"
    )
    scen_replay.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None
    )
    scen_replay.add_argument(
        "--out",
        default="BENCH_scenario.json",
        metavar="FILE",
        help="artifact output path (default BENCH_scenario.json)",
    )
    scen_replay.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="gate the replay against a committed scenario baseline",
    )
    scen_replay.add_argument(
        "--snapshot",
        default=None,
        metavar="FILE",
        help="write a scenario-bench baseline snapshot for 'repro diff'",
    )
    scen_replay.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="relative drift the baseline gate tolerates (default 0.1)",
    )

    autoscale_parser = sub.add_parser(
        "autoscale", help="elastic control-plane acceptance sweep"
    )
    autoscale_sub = autoscale_parser.add_subparsers(
        dest="autoscale_cmd", required=True
    )
    autoscale_sweep = autoscale_sub.add_parser(
        "sweep",
        help="run autoscale vs the static grid on a committed trace and gate",
    )
    autoscale_sweep.add_argument(
        "--scenario",
        default="diurnal-kv",
        help="catalog scenario to sweep (default diurnal-kv)",
    )
    autoscale_sweep.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the full sweep artifact as JSON",
    )
    autoscale_sweep.add_argument(
        "--snapshot",
        default=None,
        metavar="FILE",
        help="write a sweep baseline snapshot for 'repro diff'",
    )
    autoscale_sweep.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="gate the sweep against a committed sweep baseline",
    )
    autoscale_sweep.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="relative drift the baseline gate tolerates (default 0.1)",
    )

    evidence_parser = sub.add_parser(
        "evidence", help="build or verify a hash-manifested evidence pack"
    )
    evidence_sub = evidence_parser.add_subparsers(dest="evidence_cmd", required=True)
    evidence_build = evidence_sub.add_parser(
        "build",
        help="run the serve bench and pack run config, artifacts, spans, "
        "audit + SLO verdicts with a SHA-256 manifest",
    )
    evidence_build.add_argument(
        "--out", default="evidence", metavar="DIR", help="pack directory"
    )
    evidence_build.add_argument(
        "--tar", default=None, metavar="FILE", help="also write a .tar.gz of the pack"
    )
    evidence_build.add_argument(
        "--span-samples",
        type=int,
        default=2_000,
        help="span records included in spans.jsonl (default 2000)",
    )
    evidence_build.add_argument("--shards", type=int, default=2)
    evidence_build.add_argument("--seconds", type=float, default=0.5)
    evidence_build.add_argument("--backend", choices=BACKEND_CHOICES, default="zc")
    evidence_build.add_argument("--rate", type=float, default=2_000.0)
    evidence_build.add_argument("--policy", choices=POLICY_CHOICES, default="hash")
    evidence_build.add_argument(
        "--admission", choices=ADMISSION_CHOICES, default="shed"
    )
    evidence_build.add_argument("--queue-capacity", type=int, default=64)
    evidence_build.add_argument("--servers-per-shard", type=int, default=2)
    evidence_build.add_argument("--budget", type=int, default=None)
    evidence_build.add_argument("--plan", default=None, metavar="PLAN")
    evidence_build.add_argument("--fault-shard", type=int, default=0)
    evidence_build.add_argument(
        "--keydist", choices=KEYDIST_CHOICES, default="uniform"
    )
    evidence_build.add_argument("--seed", type=int, default=0)
    evidence_build.add_argument("--tenants", default=None, metavar="MIX")
    evidence_build.add_argument("--contracts", default=None, metavar="FILE")
    evidence_build.add_argument("--baseline", default=None, metavar="FILE")
    evidence_build.add_argument("--threshold", type=float, default=0.1)
    evidence_build.add_argument(
        "--obs",
        action="store_true",
        help="include the windowed stream as windows.jsonl in the pack",
    )
    evidence_build.add_argument(
        "--obs-interval",
        type=float,
        default=None,
        metavar="CYCLES",
        help="window length in simulated cycles (implies --obs)",
    )
    evidence_verify = evidence_sub.add_parser(
        "verify", help="re-hash a pack (directory or tarball) against its manifest"
    )
    evidence_verify.add_argument("pack", help="pack directory or .tar.gz")

    profile_parser = sub.add_parser(
        "profile", help="profile the simulator's own host-side hot paths"
    )
    profile_sub = profile_parser.add_subparsers(dest="profile_cmd", required=True)
    profile_meta = profile_sub.add_parser(
        "meta",
        help="cProfile the meta-bench ocall storm: hot-function table "
        "+ optional Chrome trace of the simulated schedule",
    )
    profile_meta.add_argument(
        "--backend",
        choices=("zc", "regular"),
        default="zc",
        help="storm call path to profile (default zc = switchless)",
    )
    profile_meta.add_argument(
        "--timers",
        choices=("wheel", "heap"),
        default="wheel",
        help="kernel timer backend (default wheel; heap = legacy)",
    )
    profile_meta.add_argument(
        "--ocalls", type=int, default=3_000, help="storm size (default 3000)"
    )
    profile_meta.add_argument(
        "--top", type=int, default=20, help="hot-table rows (default 20)"
    )
    profile_meta.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the profile artifact (hot table + counters) as JSON",
    )
    profile_meta.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a chrome://tracing JSON of the simulated schedule",
    )
    args = parser.parse_args(argv)

    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "autoscale":
        return _cmd_autoscale(args)
    if args.command == "evidence":
        return _cmd_evidence(args)
    if args.command == "baseline":
        return _cmd_baseline(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "faults":
        return _cmd_faults(args)

    if args.command == "list":
        for exp_id, module in EXPERIMENTS.items():
            first_line = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:8s} {first_line}")
        return 0

    if args.command == "report":
        from repro.experiments.suite import render_markdown, run_suite

        overrides = QUICK_KWARGS if args.quick else {}
        cache = _make_cache(args)
        outcomes = run_suite(overrides=overrides, jobs=args.jobs, cache=cache)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_markdown(outcomes))
        if args.csv is not None:
            os.makedirs(args.csv, exist_ok=True)
            for outcome in outcomes:
                path = os.path.join(args.csv, f"{outcome.exp_id}.csv")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(to_csv(outcome.headers, outcome.rows))
        failed = [o.exp_id for o in outcomes if not o.ok]
        print(f"report written to {args.out}")
        hits = sum(o.cache_hits for o in outcomes)
        misses = sum(o.cache_misses for o in outcomes)
        cache_note = "cache disabled" if cache is None else f"{hits} cached, {misses} run"
        print(f"[jobs {outcomes[0].jobs if outcomes else 1} · cells: {cache_note}]")
        if failed:
            print(f"shape violations in: {', '.join(failed)}")
        return 1 if failed else 0

    if args.csv is not None:
        os.makedirs(args.csv, exist_ok=True)
    cache = _make_cache(args)
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    total_violations = 0
    for exp_id in targets:
        print(f"\n### {exp_id} " + "#" * 50)
        total_violations += run_experiment(
            exp_id,
            args.quick,
            args.csv,
            args.telemetry,
            args.trace,
            jobs=args.jobs,
            cache=cache,
        )
    return 1 if total_violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
