"""Deterministic fault injection and graceful degradation (``repro.faults``).

The paper's robustness claims — immediate fallback when no worker is idle
(§IV-C), scheduler re-convergence after workload shifts (§IV-A) — only
show their worth under adversity.  This package injects that adversity,
reproducibly:

- :mod:`repro.faults.spec` — :class:`FaultSpec`/:class:`FaultPlan`: a
  seeded, JSON-serialisable schedule of faults (worker crash / stall /
  slowdown, enclave loss, EPC-pressure spikes, dropped or delayed
  handoffs, clock-skewed scheduler windows).
- :mod:`repro.faults.injector` — :class:`FaultInjector` executes a plan
  against a live kernel + enclave and emits every action as a ``fault.*``
  telemetry event; :func:`activate_plan` / :func:`active_fault_plan`
  integrate with ``build_stack``.
- :mod:`repro.faults.recovery` — :class:`BackoffPolicy` and the
  single-flight :class:`EnclaveRecovery` (destroy + re-create + retry
  with capped exponential backoff, the ``SGX_ERROR_ENCLAVE_LOST``
  protocol).
- :mod:`repro.faults.plans` — named scenarios (``crash-heavy``,
  ``chaos``, …) for the ``repro faults`` CLI.

Degradation machinery on the runtime side (worker respawn supervision,
caller completion timeouts, scheduler quarantine) activates only while an
injector is attached — ``kernel.faults is None`` runs are byte-identical
to healthy runs without this package.  Fault overhead lands in the cycle
ledger's ``fault`` category, which the regression gate bounds.

See ``docs/faults.md`` for the full fault model and JSON schema.
"""

from repro.faults.injector import FaultInjector, activate_plan, active_fault_plan
from repro.faults.plans import NAMED_PLANS, get_plan
from repro.faults.recovery import BackoffPolicy, EnclaveRecovery
from repro.faults.spec import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "BackoffPolicy",
    "EnclaveRecovery",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NAMED_PLANS",
    "activate_plan",
    "active_fault_plan",
    "get_plan",
]
