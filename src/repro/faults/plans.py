"""Named fault plans: curated adversity scenarios for `repro faults`.

Each plan exercises one failure axis (plus ``chaos``, which combines
them).  Fault times are a few simulated milliseconds in so that even the
``--quick`` experiment variants — which simulate tens of milliseconds —
hit every scheduled fault.

``get_plan`` resolves a CLI argument: a name from :data:`NAMED_PLANS`,
or a path to a ``FaultPlan`` JSON file (see ``docs/faults.md`` for the
schema).
"""

from __future__ import annotations

import os

from repro.faults.spec import FaultPlan, FaultSpec

NAMED_PLANS: dict[str, FaultPlan] = {
    # The acceptance scenario: repeated crashes with supervision, plus one
    # crash that is never respawned so quarantine must hold to run end.
    "crash-heavy": FaultPlan(
        name="crash-heavy",
        seed=42,
        faults=(
            FaultSpec(kind="worker-crash", at_ms=1.0, respawn_after_ms=0.5),
            FaultSpec(kind="worker-crash", at_ms=2.5, respawn_after_ms=0.5),
            FaultSpec(kind="worker-crash", at_ms=4.0, index=0, respawn_after_ms=None),
            FaultSpec(kind="worker-crash", at_ms=6.0, respawn_after_ms=1.0),
        ),
    ),
    "stall": FaultPlan(
        name="stall",
        seed=7,
        faults=(
            FaultSpec(kind="worker-stall", at_ms=1.0, duration_ms=0.5),
            FaultSpec(kind="worker-slowdown", at_ms=3.0, duration_ms=2.0, factor=4.0),
        ),
    ),
    "enclave-lost": FaultPlan(
        name="enclave-lost",
        seed=3,
        faults=(
            FaultSpec(kind="enclave-lost", at_ms=2.0),
            FaultSpec(kind="enclave-lost", at_ms=6.0),
        ),
    ),
    "epc-pressure": FaultPlan(
        name="epc-pressure",
        seed=5,
        faults=(FaultSpec(kind="epc-pressure", at_ms=1.5, duration_ms=3.0, factor=3.0),),
    ),
    "handoff": FaultPlan(
        name="handoff",
        seed=11,
        faults=(
            FaultSpec(
                kind="handoff",
                at_ms=1.0,
                duration_ms=4.0,
                drop_probability=0.3,
                redelivery_ms=0.1,
            ),
        ),
    ),
    "clock-skew": FaultPlan(
        name="clock-skew",
        seed=13,
        faults=(FaultSpec(kind="clock-skew", at_ms=1.0, duration_ms=5.0, factor=1.5),),
    ),
    # Everything at once: the graceful-degradation stress test.
    "chaos": FaultPlan(
        name="chaos",
        seed=1337,
        faults=(
            FaultSpec(kind="worker-crash", at_ms=1.0, respawn_after_ms=0.5),
            FaultSpec(kind="worker-stall", at_ms=1.5, duration_ms=0.3),
            FaultSpec(kind="epc-pressure", at_ms=2.0, duration_ms=1.5, factor=2.5),
            FaultSpec(kind="enclave-lost", at_ms=3.0),
            FaultSpec(
                kind="handoff",
                at_ms=4.0,
                duration_ms=2.0,
                drop_probability=0.25,
                redelivery_ms=0.1,
            ),
            FaultSpec(kind="clock-skew", at_ms=5.0, duration_ms=2.0, factor=1.4),
            FaultSpec(kind="worker-crash", at_ms=6.0, respawn_after_ms=0.8),
        ),
    ),
}


def get_plan(name_or_path: str) -> FaultPlan:
    """Resolve a plan by registry name or JSON file path."""
    plan = NAMED_PLANS.get(name_or_path)
    if plan is not None:
        return plan
    if os.path.exists(name_or_path):
        return FaultPlan.load(name_or_path)
    known = ", ".join(sorted(NAMED_PLANS))
    raise KeyError(f"unknown fault plan {name_or_path!r} (known: {known})")
