"""Recovery policies: capped exponential backoff and enclave re-creation.

When the fault injector marks an enclave lost (the simulated
``SGX_ERROR_ENCLAVE_LOST``), every subsequent entry attempt must first
bring the enclave back.  :class:`EnclaveRecovery` implements the SDK's
prescribed application-side protocol — destroy, wait, re-create, retry —
as a simulated program:

- retries are paced by :class:`BackoffPolicy` (capped exponential with
  deterministic seeded jitter, so replays are bit-identical);
- re-creation is charged as real work (``recreate_cycles``, tagged
  ``fault-recovery`` so it lands in the ledger's ``fault`` category);
- concurrent callers coalesce: one thread performs the re-creation while
  the rest block until it completes (single-flight), mirroring a real
  runtime where one recovery serves every in-flight call.

A run past ``max_attempts`` raises
:class:`repro.sgx.enclave.EnclaveLostError` — recovery is graceful
degradation, not infinite optimism.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.sgx.enclave import EnclaveLostError
from repro.sgx.lifecycle import recreate_cycles
from repro.sim.instructions import Block, Compute, Sleep
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    The delay before attempt ``n`` (1-based) is
    ``min(base · factor^(n-1), cap)`` scaled by a jitter drawn uniformly
    from ``[1 - jitter_frac, 1 + jitter_frac]`` using a private seeded
    generator — repeated runs with the same seed see the same delays.
    """

    def __init__(
        self,
        base_cycles: float = 100_000.0,
        factor: float = 2.0,
        cap_cycles: float = 10_000_000.0,
        jitter_frac: float = 0.1,
        seed: int = 0,
    ) -> None:
        if base_cycles <= 0 or cap_cycles < base_cycles:
            raise ValueError("need 0 < base_cycles <= cap_cycles")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")
        self.base_cycles = base_cycles
        self.factor = factor
        self.cap_cycles = cap_cycles
        self.jitter_frac = jitter_frac
        self._rng = random.Random(seed)

    def delay_cycles(self, attempt: int) -> float:
        """Backoff delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_cycles * self.factor ** (attempt - 1), self.cap_cycles)
        if not self.jitter_frac:
            return raw
        return raw * self._rng.uniform(1.0 - self.jitter_frac, 1.0 + self.jitter_frac)


class EnclaveRecovery:
    """Single-flight re-create-and-retry manager for a lost enclave.

    Installed as ``enclave.recovery`` by the fault injector.  The enclave's
    entry points call :meth:`recover` whenever ``enclave.lost`` is set;
    the first caller becomes the recoverer (backoff sleep, then the full
    destroy+create cost), and everyone else blocks until the enclave is
    healthy again.
    """

    def __init__(
        self,
        enclave: "Enclave",
        policy: BackoffPolicy | None = None,
        max_attempts: int = 8,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.enclave = enclave
        self.policy = policy if policy is not None else BackoffPolicy()
        self.max_attempts = max_attempts
        #: Total recovery attempts made over the enclave's lifetime.
        self.attempts = 0
        #: Successful re-creations.
        self.recoveries = 0
        # True while one thread is re-creating the enclave (single-flight).
        self._recovering = enclave.kernel.gate(False, name="enclave-recovering")

    def recover(self) -> Program:
        """Simulated program that returns once the enclave is healthy.

        Loops because a recovery can itself be interrupted by a fresh
        ``enclave-lost`` fault; gives up with :class:`EnclaveLostError`
        after ``max_attempts`` total attempts.
        """
        enclave = self.enclave
        while enclave.lost:
            if self._recovering.value:
                # Another caller is already re-creating; wait it out and
                # re-check (the enclave may be lost again by then).
                yield Block(self._recovering.wait_value(False))
                continue
            self._recovering.set(True)
            try:
                self.attempts += 1
                if self.attempts > self.max_attempts:
                    raise EnclaveLostError(
                        f"enclave {enclave.name!r} lost; gave up after "
                        f"{self.max_attempts} recovery attempts"
                    )
                backoff = self.policy.delay_cycles(self.attempts)
                yield Sleep(backoff)
                yield Compute(
                    recreate_cycles(enclave.heap_bytes), tag="fault-recovery"
                )
                enclave.lost = False
                enclave.generation += 1
                self.recoveries += 1
                faults = enclave.kernel.faults
                if faults is not None:
                    faults.emit(
                        "fault.enclave.recovered",
                        enclave=enclave.name,
                        attempts=self.attempts,
                        generation=enclave.generation,
                        backoff_cycles=backoff,
                    )
            finally:
                self._recovering.set(False)
        return None
