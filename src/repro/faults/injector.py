"""The fault injector: executes a :class:`FaultPlan` against a live stack.

``FaultInjector.attach(kernel, enclave)`` installs itself as
``kernel.faults`` (the single attribute every runtime fault check gates
on — healthy runs with ``kernel.faults is None`` are byte-identical to
builds without this package) and schedules one kernel timer per
:class:`~repro.faults.spec.FaultSpec`.  When a timer fires the injector
perturbs the stack directly:

- **worker-crash** — :meth:`repro.sim.kernel.Kernel.kill` on the worker
  thread; ZC workers are additionally *quarantined* so the caller scan
  and the scheduler's activation sweep skip the dead slot; an optional
  respawn timer asks the backend to supervise the slot back to life.
- **worker-stall / worker-slowdown** — consumed by the worker loops at
  their next dispatch point via :meth:`take_stall` / :meth:`cost_factor`.
- **enclave-lost** — marks the enclave lost; the next entry attempt runs
  :class:`repro.faults.recovery.EnclaveRecovery` (re-create + capped
  exponential backoff).
- **epc-pressure** — swaps the enclave's cost model for a copy with
  inflated transition costs, restoring the original when the window ends.
- **handoff** — intercepts worker kicks and futex wakes via
  :meth:`perturb_handoff`, dropping (with deterministic re-delivery) or
  delaying them.
- **clock-skew** — stretches the scheduler's accounting windows via
  :meth:`scaled_window`.

Every injection and recovery action is appended to :attr:`fault_log`
(the deterministic-replay witness) and emitted as a ``fault.*`` event on
the telemetry bus when one is installed.

Plans are activated for experiment runs with :func:`activate_plan`::

    with activate_plan(plan):
        stack = build_stack(...)   # build_stack attaches the injector
"""

from __future__ import annotations

import contextlib
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.faults.recovery import BackoffPolicy, EnclaveRecovery
from repro.faults.spec import (
    CLOCK_SKEW,
    ENCLAVE_LOST,
    EPC_PRESSURE,
    HANDOFF,
    WORKER_CRASH,
    WORKER_SLOWDOWN,
    WORKER_STALL,
    FaultPlan,
    FaultSpec,
)
from repro.sim.kernel import Kernel, ThreadState

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

import random

# ----------------------------------------------------------------------
# Active-plan stack (mirrors telemetry.session.active_session)
# ----------------------------------------------------------------------
_ACTIVE_PLANS: list[FaultPlan] = []


def active_fault_plan() -> FaultPlan | None:
    """The innermost plan activated with :func:`activate_plan`, if any.

    ``repro.experiments.common.build_stack`` consults this to decide
    whether to attach a :class:`FaultInjector` to the stack it builds.
    """
    return _ACTIVE_PLANS[-1] if _ACTIVE_PLANS else None


@contextlib.contextmanager
def activate_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Make ``plan`` the active fault plan for stacks built inside."""
    _ACTIVE_PLANS.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLANS.pop()


class FaultInjector:
    """Schedules and applies one plan's faults on one kernel + enclave."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.kernel: Kernel | None = None
        self.enclave: "Enclave | None" = None
        #: Deterministic-replay witness: (now, event name, sorted fields).
        self.fault_log: list[tuple[float, str, tuple]] = []
        self._timers: list[Any] = []
        self._stalls: dict[tuple[str, int], float] = {}
        self._slowdowns: dict[tuple[str, int], tuple[float, float]] = {}
        self._skew: tuple[float, float] | None = None  # (factor, until)
        self._handoff: dict[str, float] | None = None
        self._base_cost: Any = None
        self._detached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, kernel: Kernel, enclave: "Enclave") -> "FaultInjector":
        """Install on ``kernel``/``enclave`` and schedule the plan."""
        if kernel.faults is not None:
            raise RuntimeError("a fault injector is already attached to this kernel")
        self.kernel = kernel
        self.enclave = enclave
        kernel.faults = self
        if enclave.recovery is None:
            policy = BackoffPolicy(
                base_cycles=self._cycles(self.plan.backoff_base_ms),
                cap_cycles=self._cycles(self.plan.backoff_cap_ms),
                seed=self.plan.seed,
            )
            enclave.recovery = EnclaveRecovery(enclave, policy)
        for spec in self.plan.sorted_faults():
            when = max(self._cycles(spec.at_ms), kernel.now)
            self._timers.append(kernel.call_at(when, partial(self._apply, spec)))
        self.emit(
            "fault.plan.attached",
            plan=self.plan.name,
            seed=self.plan.seed,
            n_faults=len(self.plan.faults),
        )
        return self

    def detach(self) -> None:
        """Cancel pending fault timers and restore unperturbed state.

        Called by ``Stack.finish()`` *before* the teardown drain so
        not-yet-fired faults (and respawn/redelivery timers) cannot drag
        the drain out to their firing instants.  Idempotent.
        """
        if self._detached or self.kernel is None:
            return
        self._detached = True
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        if self._base_cost is not None and self.enclave is not None:
            self.enclave.cost = self._base_cost
            self._base_cost = None
        self.emit("fault.plan.detached", plan=self.plan.name)
        if self.kernel.faults is self:
            self.kernel.faults = None

    def _cycles(self, ms: float) -> float:
        assert self.kernel is not None
        return self.kernel.spec.cycles(ms / 1_000.0)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> None:
        """Record a ``fault.*`` action in the log and on the bus.

        (The parameter is named ``event`` because several faults carry a
        ``name=<ocall name>`` field.)
        """
        assert self.kernel is not None
        self.fault_log.append((self.kernel.now, event, tuple(sorted(fields.items()))))
        bus = self.kernel.bus
        if bus is not None:
            bus.emit(event, **fields)

    # ------------------------------------------------------------------
    # Runtime query API (called from worker/backend/scheduler hot paths,
    # always behind a ``kernel.faults is not None`` gate)
    # ------------------------------------------------------------------
    def take_stall(self, target: str, index: int) -> float:
        """Pop any pending stall cycles for worker ``index`` of ``target``."""
        return self._stalls.pop((target, index), 0.0)

    def cost_factor(self, target: str, index: int) -> float:
        """Current cost multiplier for worker ``index`` of ``target``."""
        entry = self._slowdowns.get((target, index))
        if entry is None:
            return 1.0
        factor, until = entry
        assert self.kernel is not None
        if self.kernel.now >= until:
            del self._slowdowns[(target, index)]
            return 1.0
        return factor

    def scaled_window(self, cycles: float) -> float:
        """Apply any active clock skew to a scheduler accounting window."""
        if self._skew is None:
            return cycles
        factor, until = self._skew
        assert self.kernel is not None
        if self.kernel.now >= until:
            self._skew = None
            return cycles
        return cycles * factor

    def caller_timeout_cycles(self, default: float) -> float:
        """Completion-wait timeout: the plan's override or ``default``."""
        if self.plan.caller_timeout_ms is None:
            return default
        return self._cycles(self.plan.caller_timeout_ms)

    def perturb_handoff(self, fire: Callable[[], Any]) -> bool:
        """Maybe drop or delay one task-slot handoff.

        ``fire`` delivers the handoff (an ``Event.fire_if_unfired`` bound
        method).  Returns True when the injector took ownership of the
        delivery: dropped handoffs are re-delivered after the window's
        ``redelivery`` latency (modelling a futex timeout, preserving
        liveness), delayed ones fire late.  False means the caller should
        deliver normally.
        """
        window = self._handoff
        if window is None:
            return False
        assert self.kernel is not None
        if self.kernel.now >= window["until"]:
            self._handoff = None
            return False
        if window["drop_p"] and self.rng.random() < window["drop_p"]:
            self._timers.append(self.kernel._at(window["redeliver"], fire))
            self.emit("fault.handoff.drop", redelivery_cycles=window["redeliver"])
            return True
        if window["delay"]:
            self._timers.append(self.kernel._at(window["delay"], fire))
            self.emit("fault.handoff.delay", delay_cycles=window["delay"])
            return True
        return False

    # ------------------------------------------------------------------
    # Fault application (timer callbacks)
    # ------------------------------------------------------------------
    def _apply(self, spec: FaultSpec) -> None:
        handler = {
            WORKER_CRASH: self._apply_crash,
            WORKER_STALL: self._apply_stall,
            WORKER_SLOWDOWN: self._apply_slowdown,
            ENCLAVE_LOST: self._apply_enclave_lost,
            EPC_PRESSURE: self._apply_epc_pressure,
            HANDOFF: self._apply_handoff,
            CLOCK_SKEW: self._apply_clock_skew,
        }[spec.kind]
        handler(spec)

    def _resolve_target(self, requested: str | None):
        """Map a spec's target onto the installed backend's worker pool.

        Returns ``(target_name, threads, zc_workers_or_None)`` or
        ``(None, None, None)`` when the backend has no matching pool.
        """
        assert self.enclave is not None
        backend = self.enclave.backend
        if hasattr(backend, "workers") and hasattr(backend, "worker_threads"):
            if requested in (None, "zc-worker"):
                return "zc-worker", backend.worker_threads, backend.workers
            return None, None, None
        if hasattr(backend, "worker_threads"):
            if requested in (None, "intel-worker"):
                return "intel-worker", backend.worker_threads, None
            if requested == "intel-tworker" and backend.tworker_threads:
                return "intel-tworker", backend.tworker_threads, None
            return None, None, None
        return None, None, None

    def _target_indices(self, spec: FaultSpec) -> tuple[str | None, list[int]]:
        target, threads, _ = self._resolve_target(spec.target)
        if target is None or threads is None:
            return None, []
        if spec.index is not None:
            return target, [spec.index] if spec.index < len(threads) else []
        return target, list(range(len(threads)))

    def _apply_crash(self, spec: FaultSpec) -> None:
        assert self.kernel is not None and self.enclave is not None
        target, threads, workers = self._resolve_target(spec.target)
        if target is None or threads is None:
            self.emit("fault.skipped", kind=spec.kind, reason="no-matching-backend")
            return
        alive = [i for i, t in enumerate(threads) if t.state is not ThreadState.DONE]
        if spec.index is not None:
            if spec.index not in alive:
                self.emit("fault.skipped", kind=spec.kind, reason="worker-not-alive")
                return
            index = spec.index
        elif alive:
            index = self.rng.choice(alive)
        else:
            self.emit("fault.skipped", kind=spec.kind, reason="no-alive-worker")
            return
        self.kernel.kill(threads[index])
        if workers is not None:
            worker = workers[index]
            worker.crashed = True
            worker.quarantined = True
        backend = self.enclave.backend
        stats = getattr(backend, "stats", None)
        if stats is not None and hasattr(stats, "record_worker_crash"):
            stats.record_worker_crash()
        respawn_after = (
            self._cycles(spec.respawn_after_ms)
            if spec.respawn_after_ms is not None
            else None
        )
        self.emit(
            "fault.worker.crash",
            target=target,
            worker=index,
            respawn_after_cycles=respawn_after,
        )
        if respawn_after is not None:
            self._timers.append(
                self.kernel._at(respawn_after, partial(self._respawn, target, index))
            )

    def _respawn(self, target: str, index: int) -> None:
        assert self.enclave is not None
        backend = self.enclave.backend
        respawn = getattr(backend, "respawn_worker", None)
        ok = bool(respawn(index, target)) if respawn is not None else False
        if ok:
            self.emit("fault.worker.respawn", target=target, worker=index)
        else:
            self.emit("fault.worker.respawn.skipped", target=target, worker=index)

    def _apply_stall(self, spec: FaultSpec) -> None:
        target, indices = self._target_indices(spec)
        if target is None or not indices:
            self.emit("fault.skipped", kind=spec.kind, reason="no-matching-worker")
            return
        stall = self._cycles(spec.duration_ms)
        for index in indices:
            key = (target, index)
            self._stalls[key] = self._stalls.get(key, 0.0) + stall
            self.emit("fault.worker.stall", target=target, worker=index, cycles=stall)

    def _apply_slowdown(self, spec: FaultSpec) -> None:
        assert self.kernel is not None
        target, indices = self._target_indices(spec)
        if target is None or not indices:
            self.emit("fault.skipped", kind=spec.kind, reason="no-matching-worker")
            return
        until = self.kernel.now + self._cycles(spec.duration_ms)
        for index in indices:
            self._slowdowns[(target, index)] = (spec.factor, until)
            self.emit(
                "fault.worker.slowdown",
                target=target,
                worker=index,
                factor=spec.factor,
                until_cycles=until,
            )

    def _apply_enclave_lost(self, spec: FaultSpec) -> None:
        assert self.enclave is not None
        enclave = self.enclave
        enclave.lost = True
        self.emit(
            "fault.enclave.lost", enclave=enclave.name, generation=enclave.generation
        )

    def _apply_epc_pressure(self, spec: FaultSpec) -> None:
        assert self.kernel is not None and self.enclave is not None
        if self._base_cost is not None:
            # An earlier pressure window is still active; overlapping
            # windows would make the restore ambiguous.
            self.emit("fault.skipped", kind=spec.kind, reason="epc-window-active")
            return
        enclave = self.enclave
        self._base_cost = enclave.cost
        enclave.cost = enclave.cost.with_transition_factor(spec.factor)
        until = self.kernel.now + self._cycles(spec.duration_ms)
        self._timers.append(self.kernel.call_at(until, self._end_epc_pressure))
        self.emit(
            "fault.epc.start", factor=spec.factor, until_cycles=until
        )

    def _end_epc_pressure(self) -> None:
        assert self.enclave is not None
        if self._base_cost is None:
            return
        self.enclave.cost = self._base_cost
        self._base_cost = None
        self.emit("fault.epc.end")

    def _apply_handoff(self, spec: FaultSpec) -> None:
        assert self.kernel is not None
        self._handoff = {
            "until": self.kernel.now + self._cycles(spec.duration_ms),
            "drop_p": spec.drop_probability,
            "delay": self._cycles(spec.delay_ms),
            "redeliver": self._cycles(spec.redelivery_ms),
        }
        self.emit(
            "fault.handoff.start",
            drop_probability=spec.drop_probability,
            delay_cycles=self._handoff["delay"],
            until_cycles=self._handoff["until"],
        )

    def _apply_clock_skew(self, spec: FaultSpec) -> None:
        assert self.kernel is not None
        until = self.kernel.now + self._cycles(spec.duration_ms)
        self._skew = (spec.factor, until)
        self.emit("fault.clock.skew", factor=spec.factor, until_cycles=until)
