"""Fault specifications: what goes wrong, when, and to whom.

A :class:`FaultPlan` is a deterministic, seedable schedule of
:class:`FaultSpec` entries, expressed in *simulated milliseconds* so one
plan applies to any machine frequency.  Plans round-trip through plain
JSON (see ``docs/faults.md`` for the schema) and are frozen: the same
plan + seed against the same workload always produces the same fault
sequence, which is what the deterministic-replay tests assert.

Fault kinds (the ``kind`` field of each spec):

========================  ====================================================
``worker-crash``          Kill one switchless worker thread (optionally
                          respawned after ``respawn_after_ms``).
``worker-stall``          The worker burns ``duration_ms`` of CPU before
                          making progress (models preemption/page faults).
``worker-slowdown``       Worker plumbing costs scale by ``factor`` for
                          ``duration_ms``.
``enclave-lost``          ``SGX_ERROR_ENCLAVE_LOST``: the enclave aborts and
                          must be re-created before any further call.
``epc-pressure``          Transition costs inflate by ``factor`` for
                          ``duration_ms`` (EPC paging storm).
``handoff``               For ``duration_ms``, task-slot handoffs (worker
                          kicks, futex wakes) are dropped with probability
                          ``drop_probability`` (re-delivered after
                          ``redelivery_ms``) or delayed by ``delay_ms``.
``clock-skew``            The scheduler's accounting windows stretch by
                          ``factor`` for ``duration_ms``.
========================  ====================================================

Example::

    >>> plan = FaultPlan(
    ...     name="one-crash", seed=7,
    ...     faults=(FaultSpec(kind="worker-crash", at_ms=2.0, index=0,
    ...                       respawn_after_ms=1.0),),
    ... )
    >>> FaultPlan.from_dict(plan.to_dict()) == plan
    True
"""

from __future__ import annotations

import json
from dataclasses import MISSING, asdict, dataclass, field

# ----------------------------------------------------------------------
# Fault kinds
# ----------------------------------------------------------------------
WORKER_CRASH = "worker-crash"
WORKER_STALL = "worker-stall"
WORKER_SLOWDOWN = "worker-slowdown"
ENCLAVE_LOST = "enclave-lost"
EPC_PRESSURE = "epc-pressure"
HANDOFF = "handoff"
CLOCK_SKEW = "clock-skew"

#: Every recognised fault kind.
FAULT_KINDS: frozenset[str] = frozenset(
    {
        WORKER_CRASH,
        WORKER_STALL,
        WORKER_SLOWDOWN,
        ENCLAVE_LOST,
        EPC_PRESSURE,
        HANDOFF,
        CLOCK_SKEW,
    }
)

#: Worker targets a spec may name (None = autodetect the installed backend).
WORKER_TARGETS: frozenset[str] = frozenset(
    {"zc-worker", "intel-worker", "intel-tworker"}
)

#: Kinds that need a positive ``duration_ms``.
_DURATION_KINDS = frozenset({WORKER_STALL, WORKER_SLOWDOWN, EPC_PRESSURE, HANDOFF, CLOCK_SKEW})
#: Kinds whose ``factor`` must exceed 1 (they model *extra* cost).
_INFLATING_KINDS = frozenset({WORKER_SLOWDOWN, EPC_PRESSURE})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        at_ms: Simulated time the fault fires, in milliseconds.
        target: Worker pool targeted (``zc-worker`` / ``intel-worker`` /
            ``intel-tworker``); None autodetects from the installed
            backend.  Ignored by enclave/epc/clock faults.
        index: Worker slot targeted.  None means *random* for
            ``worker-crash`` (seeded by the plan) and *all workers* for
            stall/slowdown.
        duration_ms: How long windowed faults (stall, slowdown,
            epc-pressure, handoff, clock-skew) stay active.
        factor: Cost multiplier for slowdown / epc-pressure / clock-skew.
        respawn_after_ms: For ``worker-crash``: delay until the supervisor
            respawns the worker; None leaves the slot dead (and
            quarantined) for the rest of the run.
        drop_probability: For ``handoff``: chance each handoff in the
            window is dropped (then re-delivered after ``redelivery_ms``).
        delay_ms: For ``handoff``: delay applied to non-dropped handoffs.
        redelivery_ms: For ``handoff``: re-delivery latency of a dropped
            handoff (models a futex timeout), preserving liveness.
    """

    kind: str
    at_ms: float
    target: str | None = None
    index: int | None = None
    duration_ms: float = 0.0
    factor: float = 1.0
    respawn_after_ms: float | None = None
    drop_probability: float = 0.0
    delay_ms: float = 0.0
    redelivery_ms: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_ms < 0:
            raise ValueError("at_ms must be >= 0")
        if self.target is not None and self.target not in WORKER_TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}")
        if self.index is not None and self.index < 0:
            raise ValueError("index must be >= 0")
        if self.kind in _DURATION_KINDS and self.duration_ms <= 0:
            raise ValueError(f"{self.kind} needs a positive duration_ms")
        if self.kind in _INFLATING_KINDS and self.factor <= 1.0:
            raise ValueError(f"{self.kind} needs factor > 1")
        if self.kind == CLOCK_SKEW and self.factor <= 0:
            raise ValueError("clock-skew needs factor > 0")
        if self.respawn_after_ms is not None and self.respawn_after_ms < 0:
            raise ValueError("respawn_after_ms must be >= 0")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if self.delay_ms < 0 or self.redelivery_ms <= 0:
            raise ValueError("delay_ms must be >= 0 and redelivery_ms > 0")

    def to_dict(self) -> dict:
        """Plain-JSON form (defaults elided for readability)."""
        data = asdict(self)
        for key, spec_field in type(self).__dataclass_fields__.items():
            if key in ("kind", "at_ms"):
                continue
            if spec_field.default is not MISSING and data[key] == spec_field.default:
                del data[key]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(f"unknown FaultSpec field(s): {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of faults plus recovery-policy knobs.

    Attributes:
        name: Plan identifier (recorded in telemetry and baselines).
        seed: Seeds every random choice the injector makes (random crash
            targets, handoff drops, backoff jitter) — same seed, same
            fault sequence.
        faults: The schedule, any order; the injector sorts by ``at_ms``.
        caller_timeout_ms: Overrides the backends' completion-wait timeout
            (None keeps each backend's configured default).  Only enforced
            while a fault injector is attached.
        backoff_base_ms / backoff_cap_ms: Capped-exponential backoff used
            by the enclave-lost recovery manager.
    """

    name: str
    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)
    caller_timeout_ms: float | None = None
    backoff_base_ms: float = 0.05
    backoff_cap_ms: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a FaultPlan needs a name")
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        if self.caller_timeout_ms is not None and self.caller_timeout_ms <= 0:
            raise ValueError("caller_timeout_ms must be positive")
        if self.backoff_base_ms <= 0 or self.backoff_cap_ms < self.backoff_base_ms:
            raise ValueError("need 0 < backoff_base_ms <= backoff_cap_ms")

    def sorted_faults(self) -> tuple[FaultSpec, ...]:
        """The schedule in firing order (stable for equal times)."""
        return tuple(sorted(self.faults, key=lambda spec: spec.at_ms))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form (the ``docs/faults.md`` schema)."""
        data = {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }
        if self.caller_timeout_ms is not None:
            data["caller_timeout_ms"] = self.caller_timeout_ms
        blank = FaultPlan(name=self.name)
        if self.backoff_base_ms != blank.backoff_base_ms:
            data["backoff_base_ms"] = self.backoff_base_ms
        if self.backoff_cap_ms != blank.backoff_cap_ms:
            data["backoff_cap_ms"] = self.backoff_cap_ms
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from its JSON form."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan field(s): {sorted(unknown)}")
        fields = dict(data)
        fields["faults"] = tuple(
            FaultSpec.from_dict(spec) for spec in data.get("faults", ())
        )
        return cls(**fields)

    def to_json(self) -> str:
        """Pretty-printed JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> str:
        """Write the plan to ``path`` as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
