"""A served file-encryption pipeline wrapping :class:`CryptoFileApp`.

This turns the paper's §V-B OpenSSL-style file workload into a
*request-driven service*: each serve-layer request addresses one of a
small number of key-addressed file **slots** on the shard's private
filesystem, and the trusted handler runs the full
:class:`repro.apps.cryptofile.CryptoFileApp` pipeline over that slot —
fopen/fread/fwrite/fclose ocalls per chunk plus in-enclave cipher
cycles.  Compared to the KV server's 8-byte ops this produces the
paper's *long-call* ocall profile (whole chunks marshalled per call,
ciphertext misaligned by the IV header), so a traffic mix that includes
this app stresses the switchless memcpy path the way fig. 10 does.

Ops (canonical serve-layer vocabulary, see :mod:`repro.serve.apps`):

- ``set`` — ``crypto_encrypt``: encrypt the slot's plaintext file into
  its output file (IV header + padded chunks);
- ``get`` — ``crypto_decrypt``: read + decrypt the slot's pre-encrypted
  ciphertext file (the paper's decryptor does not write);
- ``size`` — ``crypto_stats``: total chunks processed (probe ecall).

Slot files must be seeded on the host side **before** the enclave runs:
call :meth:`CryptoServiceEnclave.seed_files` with the runtime's
filesystem (mirrors fig. 10's pre-encrypted ``/pre.cipher`` input).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.apps.cryptofile import CryptoFileApp, EngineFactory
from repro.crypto import FastXorEngine
from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.hostos.filesystem import HostFileSystem
    from repro.sgx.enclave import Enclave

#: Fixed service key material (the workload models cost, not secrecy).
SERVICE_KEY = bytes(range(32))
SERVICE_IV = bytes(range(16))

#: Service-scale defaults: small files so one request costs the same
#: order of magnitude as a KV op times the long-call factor, not a
#: whole fig. 10 run.
DEFAULT_SLOTS = 4
DEFAULT_CHUNK_BYTES = 512
DEFAULT_CHUNKS_PER_SLOT = 2

#: Enclave-side cost of the stats probe.
_STATS_CYCLES = 300.0


def default_engine_factory() -> object:
    """Per-thread cipher engine used when none is injected."""
    return FastXorEngine(SERVICE_KEY, SERVICE_IV)


class CryptoServiceEnclave:
    """Trusted request handlers of the file-encryption service.

    Args:
        enclave: Enclave running the pipeline; the constructor registers
            the ``crypto_encrypt``/``crypto_decrypt``/``crypto_stats``
            ecalls.
        engine_factory: Cipher engine per pipeline pass (defaults to the
            benchmark-grade :class:`FastXorEngine`).
        slots: Number of key-addressed file slots.
        chunk_bytes: Plaintext chunk size of the pipeline.
        chunks_per_slot: Plaintext chunks per slot file.
        root: Directory prefix of the slot files.
    """

    def __init__(
        self,
        enclave: "Enclave",
        engine_factory: EngineFactory | None = None,
        *,
        slots: int = DEFAULT_SLOTS,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        chunks_per_slot: int = DEFAULT_CHUNKS_PER_SLOT,
        root: str = "/crypto",
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if chunks_per_slot < 1:
            raise ValueError("chunks_per_slot must be >= 1")
        self.enclave = enclave
        self.engine_factory = (
            engine_factory if engine_factory is not None else default_engine_factory
        )
        self.slots = slots
        self.chunks_per_slot = chunks_per_slot
        self.root = root
        self.pipeline = CryptoFileApp(
            enclave, self.engine_factory, chunk_bytes=chunk_bytes
        )
        #: Completed encrypt / decrypt requests.
        self.encrypts = 0
        self.decrypts = 0
        enclave.trts.register_many(
            {
                "crypto_encrypt": self.ecall_encrypt,
                "crypto_decrypt": self.ecall_decrypt,
                "crypto_stats": self.ecall_stats,
            }
        )

    # ------------------------------------------------------------------
    # Host-side slot layout
    # ------------------------------------------------------------------
    def _slot(self, key: bytes) -> int:
        return int.from_bytes(key, "big") % self.slots if key else 0

    def plain_path(self, slot: int) -> str:
        """Plaintext input file of ``slot``."""
        return f"{self.root}/plain-{slot}.bin"

    def cipher_path(self, slot: int) -> str:
        """Pre-encrypted ciphertext input file of ``slot``."""
        return f"{self.root}/pre-{slot}.cipher"

    def out_path(self, slot: int) -> str:
        """Ciphertext output file of ``slot`` (overwritten per request)."""
        return f"{self.root}/out-{slot}.cipher"

    def slot_plaintext(self, slot: int) -> bytes:
        """Deterministic per-slot plaintext (distinct across slots)."""
        size = self.chunks_per_slot * self.pipeline.chunk_bytes
        return bytes((slot * 31 + i) % 256 for i in range(size))

    def make_ciphertext(self, plaintext: bytes) -> bytes:
        """Pre-encrypt a slot the way the encrypt path lays files out."""
        engine = self.engine_factory()
        chunk = self.pipeline.chunk_bytes
        out = bytearray(SERVICE_IV)
        for offset in range(0, len(plaintext), chunk):
            out.extend(engine.encrypt(plaintext[offset : offset + chunk]))
        return bytes(out)

    def seed_files(self, fs: "HostFileSystem") -> None:
        """Create every slot's plaintext and pre-encrypted input files."""
        for slot in range(self.slots):
            plaintext = self.slot_plaintext(slot)
            fs.create(self.plain_path(slot), plaintext)
            fs.create(self.cipher_path(slot), self.make_ciphertext(plaintext))

    # ------------------------------------------------------------------
    # Trusted handlers (run via ecalls)
    # ------------------------------------------------------------------
    def ecall_encrypt(self, key: bytes) -> Program:
        """Encrypt the slot addressed by ``key``; returns chunk count."""
        slot = self._slot(key)
        chunks = yield from self.pipeline.encrypt_file(
            self.plain_path(slot), self.out_path(slot), SERVICE_IV
        )
        self.encrypts += 1
        return chunks

    def ecall_decrypt(self, key: bytes) -> Program:
        """Decrypt the slot addressed by ``key``; returns chunk count."""
        slot = self._slot(key)
        chunks = yield from self.pipeline.decrypt_file(self.cipher_path(slot))
        self.decrypts += 1
        return chunks

    def ecall_stats(self) -> Program:
        """Total chunks processed (the serve layer's probe ecall)."""
        yield Compute(_STATS_CYCLES, tag="crypto-stats")
        return self.pipeline.chunks_encrypted + self.pipeline.chunks_decrypted


class CryptoServiceClient:
    """Untrusted client: thin ecall wrappers for server threads."""

    def __init__(self, enclave: "Enclave") -> None:
        self.enclave = enclave

    def encrypt(self, key: bytes) -> Program:
        """Run the encrypt pipeline over ``key``'s slot."""
        result = yield from self.enclave.ecall_named(
            "crypto_encrypt", key, in_bytes=len(key), out_bytes=8
        )
        return result

    def decrypt(self, key: bytes) -> Program:
        """Run the decrypt pipeline over ``key``'s slot."""
        result = yield from self.enclave.ecall_named(
            "crypto_decrypt", key, in_bytes=len(key), out_bytes=8
        )
        return result

    def stats(self) -> Program:
        """Total chunks processed so far."""
        result = yield from self.enclave.ecall_named("crypto_stats", out_bytes=8)
        return result
