"""lmbench-style read/write syscall microbenchmarks (§V-C).

The paper's dynamic benchmark drives lmbench's two simplest syscall
benchmarks from enclave threads: ``read`` of one word from ``/dev/zero``
and ``write`` of one word to ``/dev/null``.  Each operation is exactly one
ocall — the canonical *short* call where switchless execution shines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

WORD_BYTES = 8

#: Enclave-side loop overhead per operation (lmbench's BENCH macro body).
_LOOP_CYCLES = 150.0


class LmbenchSyscalls:
    """Bare read/write syscall benchmarks bound to one enclave."""

    def __init__(self, enclave: "Enclave") -> None:
        self.enclave = enclave
        self._zero_fd: int | None = None
        self._null_fd: int | None = None
        self.reads_done = 0
        self.writes_done = 0

    def setup(self) -> Program:
        """Open ``/dev/zero`` and ``/dev/null`` (one-time, via ocalls)."""
        self._zero_fd = yield from self.enclave.ocall("open", "/dev/zero", "r")
        self._null_fd = yield from self.enclave.ocall("open", "/dev/null", "w")
        return None

    def teardown(self) -> Program:
        """Close both device descriptors."""
        if self._zero_fd is not None:
            yield from self.enclave.ocall("close", self._zero_fd)
            self._zero_fd = None
        if self._null_fd is not None:
            yield from self.enclave.ocall("close", self._null_fd)
            self._null_fd = None
        return None

    def read_op(self) -> Program:
        """One lmbench read: one word from /dev/zero."""
        if self._zero_fd is None:
            raise RuntimeError("setup() not run")
        yield Compute(_LOOP_CYCLES, tag="lmbench-loop")
        word = yield from self.enclave.ocall(
            "read", self._zero_fd, WORD_BYTES, out_bytes=WORD_BYTES
        )
        if len(word) != WORD_BYTES:
            raise RuntimeError("/dev/zero returned a short read")
        self.reads_done += 1
        return word

    def write_op(self) -> Program:
        """One lmbench write: one word to /dev/null."""
        if self._null_fd is None:
            raise RuntimeError("setup() not run")
        yield Compute(_LOOP_CYCLES, tag="lmbench-loop")
        written = yield from self.enclave.ocall(
            "write", self._null_fd, bytes(WORD_BYTES), in_bytes=WORD_BYTES
        )
        if written != WORD_BYTES:
            raise RuntimeError("/dev/null short write")
        self.writes_done += 1
        return written

    def run_reads(self, count: int) -> Program:
        """Issue ``count`` read operations back to back."""
        for _ in range(count):
            yield from self.read_op()
        return count

    def run_writes(self, count: int) -> Program:
        """Issue ``count`` write operations back to back."""
        for _ in range(count):
            yield from self.write_op()
        return count

    # ------------------------------------------------------------------
    # The lat_syscall family (lmbench's latency microbenchmarks)
    # ------------------------------------------------------------------
    def null_op(self) -> Program:
        """lat_syscall null: the cheapest possible syscall (getppid)."""
        yield Compute(_LOOP_CYCLES, tag="lmbench-loop")
        result = yield from self.enclave.ocall("getppid")
        return result

    def stat_op(self, path: str = "/dev/zero") -> Program:
        """lat_syscall stat."""
        yield Compute(_LOOP_CYCLES, tag="lmbench-loop")
        result = yield from self.enclave.ocall("stat", path, out_bytes=64)
        return result

    def fstat_op(self) -> Program:
        """lat_syscall fstat (on the /dev/zero descriptor)."""
        if self._zero_fd is None:
            raise RuntimeError("setup() not run")
        yield Compute(_LOOP_CYCLES, tag="lmbench-loop")
        result = yield from self.enclave.ocall("fstat", self._zero_fd, out_bytes=64)
        return result

    def open_close_op(self, path: str = "/dev/zero") -> Program:
        """lat_syscall open+close."""
        yield Compute(_LOOP_CYCLES, tag="lmbench-loop")
        fd = yield from self.enclave.ocall("open", path, "r")
        yield from self.enclave.ocall("close", fd)
        return fd

    def measure_latency(self, op_factory, count: int = 200) -> Program:
        """Run ``count`` ops; returns mean latency in cycles."""
        start = self.enclave.kernel.now
        for _ in range(count):
            yield from op_factory()
        return (self.enclave.kernel.now - start) / count
