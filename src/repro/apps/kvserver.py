"""An in-enclave key/value server: ecalls in, ocalls out.

A request/response service in the deployment style the paper's
introduction motivates (sensitive state lives in the enclave; untrusted
request threads call in):

- untrusted handler threads **ecall** ``kv_get`` / ``kv_set`` /
  ``kv_delete``;
- the trusted side keeps the store in enclave memory and appends every
  mutation to a write-ahead log on the host filesystem via **ocalls**
  (records are MACed — modelled as cycles — since the host is untrusted);
- recovery replays the log through ocalls into a fresh enclave.

Both boundaries can run switchless: install a
:class:`repro.core.ZcSwitchlessBackend` for the ocall side and a
:class:`repro.core.ecalls.ZcEcallRuntime` for the ecall side.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

#: WAL record: op(1) key_len(2) value_len(4) + payloads.
_RECORD_HEADER = struct.Struct("<BHI")
_OP_SET = 1
_OP_DELETE = 2

#: Enclave-side cycle costs.
_LOOKUP_CYCLES = 400.0
_MAC_CYCLES_PER_BYTE = 1.5
_MAC_BASE_CYCLES = 600.0


class KvServerEnclave:
    """Trusted state machine of the KV service.

    Args:
        enclave: Enclave hosting the state; the constructor registers the
            ``kv_get``/``kv_set``/``kv_delete``/``kv_size`` ecalls.
        wal_path: Host path of the write-ahead log.
    """

    def __init__(self, enclave: "Enclave", wal_path: str = "/kv.wal") -> None:
        self.enclave = enclave
        self.wal_path = wal_path
        self._store: dict[bytes, bytes] = {}
        self._wal_fd: int | None = None
        self.mutations = 0
        enclave.trts.register_many(
            {
                "kv_get": self.ecall_get,
                "kv_set": self.ecall_set,
                "kv_delete": self.ecall_delete,
                "kv_size": self.ecall_size,
            }
        )

    # ------------------------------------------------------------------
    # Lifecycle (run from an enclave-side thread)
    # ------------------------------------------------------------------
    def start(self, recover: bool = True) -> Program:
        """Open (and optionally replay) the WAL; returns replayed count."""
        replayed = 0
        if recover and self.enclave.urts is not None:
            try:
                replayed = yield from self._replay()
            except FileNotFoundError:
                replayed = 0
        self._wal_fd = yield from self.enclave.ocall("fopen", self.wal_path, "a")
        return replayed

    def stop(self) -> Program:
        """Close the WAL."""
        if self._wal_fd is not None:
            yield from self.enclave.ocall("fclose", self._wal_fd)
            self._wal_fd = None
        return None

    def _replay(self) -> Program:
        fd = yield from self.enclave.ocall("fopen", self.wal_path, "r")
        replayed = 0
        while True:
            header = yield from self.enclave.ocall(
                "fread", fd, _RECORD_HEADER.size, out_bytes=_RECORD_HEADER.size
            )
            if len(header) < _RECORD_HEADER.size:
                break
            op, key_len, value_len = _RECORD_HEADER.unpack(header)
            body = yield from self.enclave.ocall(
                "fread", fd, key_len + value_len, out_bytes=key_len + value_len
            )
            yield Compute(
                _MAC_BASE_CYCLES + len(body) * _MAC_CYCLES_PER_BYTE, tag="wal-verify"
            )
            key = body[:key_len]
            if op == _OP_SET:
                self._store[key] = body[key_len:]
            elif op == _OP_DELETE:
                self._store.pop(key, None)
            else:
                raise ValueError(f"corrupt WAL record op={op}")
            replayed += 1
        yield from self.enclave.ocall("fclose", fd)
        return replayed

    def _append_wal(self, op: int, key: bytes, value: bytes) -> Program:
        if self._wal_fd is None:
            raise RuntimeError("server not started")
        record = _RECORD_HEADER.pack(op, len(key), len(value)) + key + value
        yield Compute(
            _MAC_BASE_CYCLES + len(record) * _MAC_CYCLES_PER_BYTE, tag="wal-mac"
        )
        yield from self.enclave.ocall(
            "fwrite", self._wal_fd, record, in_bytes=len(record)
        )
        return None

    # ------------------------------------------------------------------
    # Trusted handlers (run via ecalls)
    # ------------------------------------------------------------------
    def ecall_get(self, key: bytes) -> Program:
        """Trusted handler: read one key."""
        yield Compute(_LOOKUP_CYCLES, tag="kv-lookup")
        return self._store.get(key)

    def ecall_set(self, key: bytes, value: bytes) -> Program:
        """Trusted handler: set one key (WAL-appended)."""
        if not key:
            raise ValueError("empty key")
        yield Compute(_LOOKUP_CYCLES, tag="kv-lookup")
        yield from self._append_wal(_OP_SET, key, value)
        self._store[key] = value
        self.mutations += 1
        return True

    def ecall_delete(self, key: bytes) -> Program:
        """Trusted handler: delete one key (WAL-appended)."""
        yield Compute(_LOOKUP_CYCLES, tag="kv-lookup")
        existed = key in self._store
        if existed:
            yield from self._append_wal(_OP_DELETE, key, b"")
            self._store.pop(key)
            self.mutations += 1
        return existed

    def ecall_size(self) -> Program:
        """Trusted handler: number of live keys."""
        yield Compute(_LOOKUP_CYCLES, tag="kv-lookup")
        return len(self._store)


class KvClient:
    """Untrusted client: thin ecall wrappers for request threads."""

    def __init__(self, enclave: "Enclave") -> None:
        self.enclave = enclave

    def get(self, key: bytes) -> Program:
        """Look up one entry by label/key."""
        result = yield from self.enclave.ecall_named(
            "kv_get", key, in_bytes=len(key), out_bytes=64
        )
        return result

    def set(self, key: bytes, value: bytes) -> Program:
        """Set ``key`` to ``value``."""
        result = yield from self.enclave.ecall_named(
            "kv_set", key, value, in_bytes=len(key) + len(value), out_bytes=1
        )
        return result

    def delete(self, key: bytes) -> Program:
        """Delete ``key``; returns whether it existed."""
        result = yield from self.enclave.ecall_named(
            "kv_delete", key, in_bytes=len(key), out_bytes=1
        )
        return result

    def size(self) -> Program:
        """Number of live keys in the store."""
        result = yield from self.enclave.ecall_named("kv_size", out_bytes=8)
        return result
