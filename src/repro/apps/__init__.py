"""Evaluation applications (the paper's §V benchmarks).

Each application runs *inside* the simulated enclave and performs all its
I/O through ocalls, exactly as the paper's SGX ports do:

- :mod:`repro.apps.kissdb` — a faithful reimplementation of the KISSDB
  key/value store (hash-table pages + append log) whose SET path produces
  the paper's ocall mix: fseeko most frequent, fread/fwrite shorter
  tails (§V-A).
- :mod:`repro.apps.cryptofile` — the OpenSSL-style two-thread file
  encryption/decryption pipeline (AES-256-CBC, §V-B).
- :mod:`repro.apps.lmbench` — the lmbench read/write syscall benchmarks
  over ``/dev/zero`` and ``/dev/null`` (§V-C).

Served-app variants (request-driven, used by :mod:`repro.serve`):

- :mod:`repro.apps.kvserver` — the WAL-backed KV server;
- :mod:`repro.apps.sessionstore` — a capacity-bounded LRU session cache
  that seals and spills evictions to the host through ocalls;
- :mod:`repro.apps.cryptoservice` — a key-addressed file-encryption
  service wrapping :class:`CryptoFileApp` (the long-call ocall profile).
"""

from repro.apps.cryptofile import CryptoFileApp
from repro.apps.cryptoservice import CryptoServiceClient, CryptoServiceEnclave
from repro.apps.kissdb import KissDB, KissDBError
from repro.apps.kvserver import KvClient, KvServerEnclave
from repro.apps.lmbench import LmbenchSyscalls
from repro.apps.sessionstore import SessionClient, SessionStoreEnclave

__all__ = [
    "CryptoFileApp",
    "CryptoServiceClient",
    "CryptoServiceEnclave",
    "KissDB",
    "KissDBError",
    "KvClient",
    "KvServerEnclave",
    "LmbenchSyscalls",
    "SessionClient",
    "SessionStoreEnclave",
]
