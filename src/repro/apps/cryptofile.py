"""The OpenSSL-style file encryption/decryption pipeline (§V-B).

Two enclave threads: an *encryptor* reads plaintext chunks from a file,
encrypts them with AES-256-CBC inside the enclave and writes ciphertext to
another file; a *decryptor* reads ciphertext chunks from a third file and
decrypts them in the enclave (the paper's decryptor does not write).

Ocall profile this produces — matching the paper's observations:

- ``fread``/``fwrite`` dominate ``fopen``/``fclose`` by orders of
  magnitude (one open/close pair per file vs. one read per chunk), with
  reads ~2x writes (the decryptor only reads);
- each call marshals a whole chunk across the enclave boundary, so the
  calls are ~6x *longer* than kissdb's 8-byte ops — the regime where the
  memcpy implementation and fallback behaviour matter most.

Ciphertext files start with the 16-byte IV, so ciphertext reads/writes at
chunk granularity are misaligned (mod 8) relative to the enclave buffers —
plaintext I/O stays aligned.  This is where the vanilla byte-by-byte
memcpy hurts Intel's configurations and zc-memcpy shines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.crypto.engine import CryptoCostModel
from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

#: Engines are anything with encrypt/decrypt bytes->bytes.
EngineFactory = Callable[[], object]

IV_BYTES = 16


class CryptoFileApp:
    """File encryption/decryption workload bound to one enclave.

    Args:
        enclave: Enclave whose ocall path performs the stdio I/O.
        engine_factory: Zero-arg callable producing a cipher engine
            (``RealAesCbcEngine`` for fidelity, ``FastXorEngine`` for
            large benchmark runs); one engine per thread.
        cost: Enclave cycle cost of the cipher work.
        chunk_bytes: Plaintext chunk size (the stdio unit).
    """

    def __init__(
        self,
        enclave: "Enclave",
        engine_factory: EngineFactory,
        cost: CryptoCostModel | None = None,
        chunk_bytes: int = 4096,
    ) -> None:
        if chunk_bytes < 16:
            raise ValueError("chunk_bytes must be >= 16")
        self.enclave = enclave
        self.engine_factory = engine_factory
        self.cost = cost if cost is not None else CryptoCostModel()
        self.chunk_bytes = chunk_bytes
        self.chunks_encrypted = 0
        self.chunks_decrypted = 0

    @property
    def ciphertext_chunk_bytes(self) -> int:
        """On-disk ciphertext chunk size (PKCS#7 always pads)."""
        return (self.chunk_bytes // 16 + 1) * 16

    # ------------------------------------------------------------------
    # Thread programs
    # ------------------------------------------------------------------
    def encrypt_file(self, in_path: str, out_path: str, iv: bytes = bytes(IV_BYTES)) -> Program:
        """Encrypt ``in_path`` into ``out_path`` (IV header + chunks)."""
        if len(iv) != IV_BYTES:
            raise ValueError("iv must be 16 bytes")
        enclave = self.enclave
        engine = self.engine_factory()
        fd_in = yield from enclave.ocall("fopen", in_path, "r")
        fd_out = yield from enclave.ocall("fopen", out_path, "w")
        yield from enclave.ocall("fwrite", fd_out, iv, in_bytes=IV_BYTES)
        chunks = 0
        while True:
            plaintext = yield from enclave.ocall(
                "fread", fd_in, self.chunk_bytes, out_bytes=self.chunk_bytes, aligned=True
            )
            if not plaintext:
                break
            yield Compute(self.cost.encrypt_cycles(len(plaintext)), tag="aes-encrypt")
            ciphertext = engine.encrypt(plaintext)
            # The 16-byte IV header leaves every chunk write misaligned
            # mod 8 relative to the enclave-side buffer base.
            yield from enclave.ocall(
                "fwrite", fd_out, ciphertext, in_bytes=len(ciphertext), aligned=False
            )
            chunks += 1
        yield from enclave.ocall("fclose", fd_in)
        yield from enclave.ocall("fclose", fd_out)
        self.chunks_encrypted += chunks
        return chunks

    def decrypt_file(self, in_path: str, out_path: str | None = None) -> Program:
        """Decrypt ``in_path``; write plaintext to ``out_path`` if given.

        The paper's decryptor thread only reads and decrypts, so the
        benchmark drives this with ``out_path=None``.
        """
        enclave = self.enclave
        engine = self.engine_factory()
        fd_in = yield from enclave.ocall("fopen", in_path, "r")
        fd_out = None
        if out_path is not None:
            fd_out = yield from enclave.ocall("fopen", out_path, "w")
        iv = yield from enclave.ocall("fread", fd_in, IV_BYTES, out_bytes=IV_BYTES)
        if len(iv) != IV_BYTES:
            raise ValueError(f"ciphertext {in_path!r} lacks an IV header")
        ct_chunk = self.ciphertext_chunk_bytes
        chunks = 0
        while True:
            ciphertext = yield from enclave.ocall(
                "fread", fd_in, ct_chunk, out_bytes=ct_chunk, aligned=False
            )
            if not ciphertext:
                break
            if len(ciphertext) % 16:
                raise ValueError("truncated ciphertext chunk")
            yield Compute(self.cost.decrypt_cycles(len(ciphertext)), tag="aes-decrypt")
            plaintext = engine.decrypt(ciphertext)
            if fd_out is not None:
                yield from enclave.ocall(
                    "fwrite", fd_out, plaintext, in_bytes=len(plaintext), aligned=True
                )
            chunks += 1
        yield from enclave.ocall("fclose", fd_in)
        if fd_out is not None:
            yield from enclave.ocall("fclose", fd_out)
        self.chunks_decrypted += chunks
        return chunks
