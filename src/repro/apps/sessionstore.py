"""An in-enclave session store: a capacity-bounded LRU cache with spill.

The deployment story mirrors a web tier's session cache hardened with
SGX: session state (auth tokens, per-user scratch) is sensitive, so it
lives in enclave memory; the host only ever sees *sealed* records.  The
enclave's memory is scarce (EPC!), so the store is capacity-bounded —
when it fills, the least-recently-used session is sealed (modelled as
MAC/encrypt cycles) and spilled to an untrusted host file through an
**ocall**.  That spill path is exactly the short-write-heavy ocall
profile where switchless calls pay off, which is why the serving layer
offers this app next to the WAL-backed KV server.

Ops (canonical serve-layer vocabulary, see :mod:`repro.serve.apps`):

- ``set``  — ``sess_set``: insert/refresh a session (may evict + spill);
- ``get``  — ``sess_get``: look up and LRU-touch a session;
- ``delete`` — ``sess_delete``: end a session explicitly;
- ``size`` — ``sess_size``: live-session count (also the probe ecall).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

#: Enclave-side cycle costs (distinct from the KV server's constants:
#: the session table is a flat LRU, cheaper to probe than the KV path,
#: but sealing an evicted record costs real crypto per byte).
_TOUCH_CYCLES = 350.0
_SEAL_BASE_CYCLES = 500.0
_SEAL_CYCLES_PER_BYTE = 1.2


class SessionStoreEnclave:
    """Trusted state machine of the session cache.

    Args:
        enclave: Enclave hosting the table; the constructor registers the
            ``sess_get``/``sess_set``/``sess_delete``/``sess_size``
            ecalls.
        capacity: Maximum live sessions held in enclave memory; inserting
            past it spills the LRU victim to the host.
        spill_path: Host path of the sealed-eviction log.
    """

    def __init__(
        self,
        enclave: "Enclave",
        capacity: int = 512,
        spill_path: str = "/sessions.spill",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enclave = enclave
        self.capacity = capacity
        self.spill_path = spill_path
        self._table: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._spill_fd: int | None = None
        #: Sessions evicted (sealed + spilled) since start.
        self.evictions = 0
        #: Bytes written to the spill log.
        self.spilled_bytes = 0
        #: ``get`` calls that found no live session.
        self.misses = 0
        enclave.trts.register_many(
            {
                "sess_get": self.ecall_get,
                "sess_set": self.ecall_set,
                "sess_delete": self.ecall_delete,
                "sess_size": self.ecall_size,
            }
        )

    @property
    def live(self) -> int:
        """Sessions currently held in enclave memory."""
        return len(self._table)

    # ------------------------------------------------------------------
    # Lifecycle (run from an enclave-side thread)
    # ------------------------------------------------------------------
    def start(self) -> Program:
        """Open the spill log; returns the (always 0) recovered count."""
        self._spill_fd = yield from self.enclave.ocall(
            "fopen", self.spill_path, "a"
        )
        return 0

    def stop(self) -> Program:
        """Close the spill log."""
        if self._spill_fd is not None:
            yield from self.enclave.ocall("fclose", self._spill_fd)
            self._spill_fd = None
        return None

    def _spill(self, key: bytes, value: bytes) -> Program:
        """Seal the evicted session and append it to the host log."""
        if self._spill_fd is None:
            raise RuntimeError("session store not started")
        record = key + value
        yield Compute(
            _SEAL_BASE_CYCLES + len(record) * _SEAL_CYCLES_PER_BYTE,
            tag="session-seal",
        )
        yield from self.enclave.ocall(
            "fwrite", self._spill_fd, record, in_bytes=len(record)
        )
        self.spilled_bytes += len(record)
        return None

    # ------------------------------------------------------------------
    # Trusted handlers (run via ecalls)
    # ------------------------------------------------------------------
    def ecall_set(self, key: bytes, value: bytes) -> Program:
        """Insert or refresh ``key``; spills the LRU victim when full."""
        if not key:
            raise ValueError("empty session key")
        yield Compute(_TOUCH_CYCLES, tag="session-touch")
        if key in self._table:
            self._table.move_to_end(key)
            self._table[key] = value
            return True
        if len(self._table) >= self.capacity:
            victim_key, victim_value = self._table.popitem(last=False)
            yield from self._spill(victim_key, victim_value)
            self.evictions += 1
        self._table[key] = value
        return True

    def ecall_get(self, key: bytes) -> Program:
        """Look up ``key`` (LRU-touches on hit); None on a miss."""
        yield Compute(_TOUCH_CYCLES, tag="session-touch")
        value = self._table.get(key)
        if value is None:
            self.misses += 1
            return None
        self._table.move_to_end(key)
        return value

    def ecall_delete(self, key: bytes) -> Program:
        """End a session; returns whether it was live."""
        yield Compute(_TOUCH_CYCLES, tag="session-touch")
        return self._table.pop(key, None) is not None

    def ecall_size(self) -> Program:
        """Live-session count (the serve layer's probe ecall)."""
        yield Compute(_TOUCH_CYCLES, tag="session-touch")
        return len(self._table)


class SessionClient:
    """Untrusted client: thin ecall wrappers for server threads."""

    def __init__(self, enclave: "Enclave") -> None:
        self.enclave = enclave

    def get(self, key: bytes) -> Program:
        """Fetch one session's state."""
        result = yield from self.enclave.ecall_named(
            "sess_get", key, in_bytes=len(key), out_bytes=64
        )
        return result

    def set(self, key: bytes, value: bytes) -> Program:
        """Create or refresh one session."""
        result = yield from self.enclave.ecall_named(
            "sess_set", key, value, in_bytes=len(key) + len(value), out_bytes=1
        )
        return result

    def delete(self, key: bytes) -> Program:
        """End one session."""
        result = yield from self.enclave.ecall_named(
            "sess_delete", key, in_bytes=len(key), out_bytes=1
        )
        return result

    def size(self) -> Program:
        """Live-session count."""
        result = yield from self.enclave.ecall_named("sess_size", out_bytes=8)
        return result
