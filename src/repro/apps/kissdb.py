"""KISSDB — "keep it simple, stupid" database — reimplemented on ocalls.

This follows the on-disk design of the original C library the paper
benchmarks (a header, then a chain of fixed-size hash tables interleaved
with appended key/value entries):

- the file starts with a 32-byte header (magic, version, geometry);
- a *hash table page* is ``(hash_table_size + 1)`` 8-byte little-endian
  file offsets; slot ``h`` points at the entry for a key hashing to ``h``
  (0 = empty) and the final slot points at the next hash-table page
  (0 = none);
- an *entry* is ``key_size`` key bytes followed by ``value_size`` value
  bytes, appended at end-of-file.

Like the original, hash-table pages are cached in (enclave) memory, so a
PUT of a fresh key costs: ``fseeko``(EOF) + ``ftell`` + ``fwrite``(entry)
+ ``fseeko``(slot) + ``fwrite``(offset) — and each collision adds an
``fseeko`` + ``fread`` to compare keys.  This is exactly the short-call,
seek-heavy ocall mix of the paper's Fig. 8 benchmark.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.hostos.filesystem import SEEK_END, SEEK_SET
from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

_MAGIC = b"KdB2"
_HEADER = struct.Struct("<4sIQQQ")  # magic, version, table size, key, value
_VERSION = 2

#: Enclave-side cycle costs of the tiny in-enclave compute steps.
_HASH_CYCLES = 120.0
_COMPARE_CYCLES = 50.0


class KissDBError(Exception):
    """Raised on malformed databases or geometry mismatches."""


def djb2(data: bytes) -> int:
    """The original KISSDB hash (djb2, 64-bit)."""
    value = 5381
    for byte in data:
        value = ((value * 33) + byte) & 0xFFFFFFFFFFFFFFFF
    return value


class KissDB:
    """A KISSDB database accessed from inside the enclave via ocalls.

    All public operations are simulated programs (``yield from`` them in a
    thread).  The store moves real bytes: what you put is what you get.

    Args:
        enclave: The enclave whose ocall path performs the stdio calls.
        path: Host filesystem path of the database file.
        hash_table_size: Slots per hash-table page.
        key_size / value_size: Fixed entry geometry (the paper uses 8/8).
    """

    def __init__(
        self,
        enclave: "Enclave",
        path: str,
        hash_table_size: int = 512,
        key_size: int = 8,
        value_size: int = 8,
    ) -> None:
        if hash_table_size < 1:
            raise ValueError("hash_table_size must be >= 1")
        if key_size < 1 or value_size < 1:
            raise ValueError("key and value sizes must be >= 1")
        self.enclave = enclave
        self.path = path
        self.hash_table_size = hash_table_size
        self.key_size = key_size
        self.value_size = value_size
        self._fd: int | None = None
        #: In-memory copy of all hash-table pages (enclave heap), as in
        #: the original implementation.
        self._tables: list[list[int]] = []
        self._table_offsets: list[int] = []
        self._end_offset = 0

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    @property
    def _table_bytes(self) -> int:
        return 8 * (self.hash_table_size + 1)

    @property
    def _entry_bytes(self) -> int:
        return self.key_size + self.value_size

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise KissDBError(f"key must be {self.key_size} bytes, got {len(key)}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> Program:
        """Open (or create) the database file and load hash-table pages."""
        enclave = self.enclave
        exists_mode = "r+"
        try_create = False
        try:
            self._fd = yield from enclave.ocall("fopen", self.path, exists_mode)
        except FileNotFoundError:
            try_create = True
        if try_create:
            self._fd = yield from enclave.ocall("fopen", self.path, "w+")
            header = _HEADER.pack(
                _MAGIC, _VERSION, self.hash_table_size, self.key_size, self.value_size
            )
            yield from enclave.ocall("fwrite", self._fd, header, in_bytes=len(header))
            first_table = bytes(self._table_bytes)
            yield from enclave.ocall(
                "fwrite", self._fd, first_table, in_bytes=len(first_table)
            )
            self._tables = [[0] * (self.hash_table_size + 1)]
            self._table_offsets = [_HEADER.size]
            self._end_offset = _HEADER.size + self._table_bytes
            return None

        raw = yield from enclave.ocall(
            "fread", self._fd, _HEADER.size, out_bytes=_HEADER.size
        )
        if len(raw) != _HEADER.size:
            raise KissDBError("truncated header")
        magic, version, hts, ks, vs = _HEADER.unpack(raw)
        if magic != _MAGIC or version != _VERSION:
            raise KissDBError("not a KISSDB v2 file")
        if (hts, ks, vs) != (self.hash_table_size, self.key_size, self.value_size):
            raise KissDBError(
                f"geometry mismatch: file has ({hts},{ks},{vs}), "
                f"expected ({self.hash_table_size},{self.key_size},{self.value_size})"
            )
        # Walk and cache the hash-table chain.
        self._tables = []
        self._table_offsets = []
        offset = _HEADER.size
        while offset:
            yield from enclave.ocall("fseeko", self._fd, offset, SEEK_SET)
            raw = yield from enclave.ocall(
                "fread", self._fd, self._table_bytes, out_bytes=self._table_bytes
            )
            if len(raw) != self._table_bytes:
                raise KissDBError("truncated hash table page")
            table = list(struct.unpack(f"<{self.hash_table_size + 1}Q", raw))
            self._tables.append(table)
            self._table_offsets.append(offset)
            offset = table[self.hash_table_size]
        yield from enclave.ocall("fseeko", self._fd, 0, SEEK_END)
        self._end_offset = yield from enclave.ocall("ftell", self._fd)
        return None

    def close(self) -> Program:
        """Close the database file."""
        if self._fd is not None:
            yield from self.enclave.ocall("fclose", self._fd)
            self._fd = None
        return None

    @property
    def is_open(self) -> bool:
        """Whether the handle/database is currently open."""
        return self._fd is not None

    @property
    def table_count(self) -> int:
        """Number of hash-table pages (grows with collisions)."""
        return len(self._tables)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> Program:
        """Insert or overwrite ``key`` with ``value`` (both fixed-size)."""
        self._check_key(key)
        if len(value) != self.value_size:
            raise KissDBError(f"value must be {self.value_size} bytes")
        if self._fd is None:
            raise KissDBError("database not open")
        enclave = self.enclave
        yield Compute(_HASH_CYCLES, tag="kissdb-hash")
        slot = djb2(key) % self.hash_table_size

        for index, table in enumerate(self._tables):
            entry_offset = table[slot]
            if entry_offset == 0:
                # Free slot in this page: append the entry, link the slot.
                yield from enclave.ocall("fseeko", self._fd, 0, SEEK_END)
                eof = yield from enclave.ocall("ftell", self._fd)
                entry = key + value
                yield from enclave.ocall("fwrite", self._fd, entry, in_bytes=len(entry))
                slot_offset = self._table_offsets[index] + 8 * slot
                yield from enclave.ocall("fseeko", self._fd, slot_offset, SEEK_SET)
                yield from enclave.ocall(
                    "fwrite", self._fd, struct.pack("<Q", eof), in_bytes=8
                )
                table[slot] = eof
                self._end_offset = eof + len(entry)
                return None
            # Occupied: read the entry's key and compare.
            yield from enclave.ocall("fseeko", self._fd, entry_offset, SEEK_SET)
            existing = yield from enclave.ocall(
                "fread", self._fd, self.key_size, out_bytes=self.key_size
            )
            yield Compute(_COMPARE_CYCLES, tag="kissdb-cmp")
            if existing == key:
                # Same key: overwrite the value in place.
                yield from enclave.ocall(
                    "fseeko", self._fd, entry_offset + self.key_size, SEEK_SET
                )
                yield from enclave.ocall(
                    "fwrite", self._fd, value, in_bytes=len(value)
                )
                return None
            # Collision: continue into the next page (create if missing).
            if index == len(self._tables) - 1:
                yield from self._append_table(index)

        raise KissDBError("unreachable: table chain ended without a free slot")

    def get(self, key: bytes) -> Program:
        """Look up ``key``; returns the value bytes or ``None``."""
        self._check_key(key)
        if self._fd is None:
            raise KissDBError("database not open")
        enclave = self.enclave
        yield Compute(_HASH_CYCLES, tag="kissdb-hash")
        slot = djb2(key) % self.hash_table_size

        for table in self._tables:
            entry_offset = table[slot]
            if entry_offset == 0:
                return None
            yield from enclave.ocall("fseeko", self._fd, entry_offset, SEEK_SET)
            entry = yield from enclave.ocall(
                "fread", self._fd, self._entry_bytes, out_bytes=self._entry_bytes
            )
            yield Compute(_COMPARE_CYCLES, tag="kissdb-cmp")
            if entry[: self.key_size] == key:
                return entry[self.key_size :]
        return None

    def _append_table(self, last_index: int) -> Program:
        """Append a fresh hash-table page and link it into the chain."""
        enclave = self.enclave
        yield from enclave.ocall("fseeko", self._fd, 0, SEEK_END)
        eof = yield from enclave.ocall("ftell", self._fd)
        page = bytes(self._table_bytes)
        yield from enclave.ocall("fwrite", self._fd, page, in_bytes=len(page))
        # Link from the previous page's chain slot.
        chain_offset = self._table_offsets[last_index] + 8 * self.hash_table_size
        yield from enclave.ocall("fseeko", self._fd, chain_offset, SEEK_SET)
        yield from enclave.ocall("fwrite", self._fd, struct.pack("<Q", eof), in_bytes=8)
        self._tables[last_index][self.hash_table_size] = eof
        self._tables.append([0] * (self.hash_table_size + 1))
        self._table_offsets.append(eof)
        self._end_offset = eof + self._table_bytes
        return None
