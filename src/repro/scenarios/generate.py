"""Deterministic scenario-trace generation.

Arrivals come from an *inhomogeneous* Poisson process sampled by seeded
thinning: candidate arrivals are drawn at the scenario's peak rate and
each is accepted with probability ``rate(t) / peak`` — the textbook
construction, and deterministic per seed because every draw comes from
one :class:`random.Random` stream in a fixed order.  Three rate shapes:

- ``steady`` — constant ``rate_rps``;
- ``diurnal`` — a sinusoidal day curve,
  ``rate * (1 + amplitude * sin(2π t / period))``, compressing a
  production day into simulated milliseconds;
- ``flash`` — a flash crowd: ``rate * flash_factor`` inside the window
  ``[flash_at_s, flash_at_s + flash_width_s)``, baseline elsewhere.

Key choice is uniform or Zipf (inverse-CDF over ``1/(rank+1)^s``, rank
0 hottest).  A **hot-key skew shift** rotates the rank→key mapping by
``hot_shift_offset`` at ``hot_shift_at_s``: the popularity *shape* is
unchanged but its mass lands on different keys — the mid-run shift the
anomaly detector and cache-style apps should notice.

Per accepted arrival the draw order is fixed — op selector, key,
tenant (only when a mix is set), app (only when more than one) — so
adding an optional dimension to a scenario never perturbs the streams
of scenarios that don't use it (the loadgen's guarded-draw rule).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import asdict, dataclass
from typing import Any

from repro.scenarios.trace import ScenarioTrace, TraceEvent

#: Arrival-curve shapes accepted by :class:`ScenarioSpec`.
ARRIVAL_CHOICES = ("steady", "diurnal", "flash")
#: Key-distribution names accepted by :class:`ScenarioSpec`.
KEYDIST_CHOICES = ("uniform", "zipf")

#: Offset mixed into the spec seed for the generator stream (distinct
#: from the loadgen's per-client offsets).
_GENERATOR_SALT = 424_243


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to generate one trace deterministically.

    Attributes:
        name: Scenario identity (also the trace filename stem).
        seed: Base RNG seed; same spec + seed → byte-identical trace.
        duration_s: Simulated span of the arrival timeline.
        rate_rps: Baseline arrival rate.
        arrival: ``steady`` | ``diurnal`` | ``flash``.
        diurnal_period_s: Day length for ``diurnal`` (default: the whole
            duration is one day).
        diurnal_amplitude: Fractional swing of the day curve (0..1).
        flash_at_s: Flash-crowd onset for ``flash``.
        flash_width_s: Flash-crowd width (default: duration / 8).
        flash_factor: Rate multiplier inside the flash window.
        keyspace: Distinct keys.
        keydist: ``uniform`` | ``zipf``.
        zipf_s: Zipf exponent for ``zipf``.
        hot_shift_at_s: Instant the hot-key mapping rotates (zipf only).
        hot_shift_offset: Rank→key rotation applied after the shift
            (default: half the keyspace).
        apps: Weighted served-app mix as ``(name, weight)`` pairs.
        tenants: Weighted tenant mix as ``(name, weight)`` pairs, or
            None for anonymous traffic.
        set_fraction: Fraction of ops that are ``set``.
        delete_fraction: Fraction of ops that are ``delete`` (avoid for
            mixes that include ``crypto``, which has no delete; the
            generator coerces those to ``set``).
        value_bytes: Payload size of ``set`` values.
        description: One-line catalog blurb.
    """

    name: str
    seed: int = 0
    duration_s: float = 0.2
    rate_rps: float = 3_000.0
    arrival: str = "steady"
    diurnal_period_s: float | None = None
    diurnal_amplitude: float = 0.5
    flash_at_s: float | None = None
    flash_width_s: float | None = None
    flash_factor: float = 5.0
    keyspace: int = 256
    keydist: str = "uniform"
    zipf_s: float = 0.99
    hot_shift_at_s: float | None = None
    hot_shift_offset: int | None = None
    apps: tuple[tuple[str, float], ...] = (("kv", 1.0),)
    tenants: tuple[tuple[str, float], ...] | None = None
    set_fraction: float = 1.0 / 3.0
    delete_fraction: float = 0.0
    value_bytes: int = 8
    description: str = ""

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_CHOICES:
            raise ValueError(f"arrival must be one of {ARRIVAL_CHOICES}")
        if self.keydist not in KEYDIST_CHOICES:
            raise ValueError(f"keydist must be one of {KEYDIST_CHOICES}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.keyspace < 1:
            raise ValueError("keyspace must be >= 1")
        if not self.apps:
            raise ValueError("apps must name at least one served app")
        if not 0 <= self.set_fraction + self.delete_fraction <= 1:
            raise ValueError("set_fraction + delete_fraction must be in [0, 1]")
        if self.arrival == "flash":
            if self.flash_at_s is None:
                raise ValueError("flash arrivals need flash_at_s")
            if self.flash_factor <= 1:
                raise ValueError("flash_factor must be > 1")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.hot_shift_at_s is not None and self.keydist != "zipf":
            raise ValueError("hot-key shifts need keydist='zipf'")

    # -- resolved knobs -------------------------------------------------
    @property
    def period_s(self) -> float:
        """The diurnal day length, defaulted to the whole duration."""
        return (
            self.diurnal_period_s
            if self.diurnal_period_s is not None
            else self.duration_s
        )

    @property
    def flash_window_s(self) -> float:
        """The flash-crowd width, defaulted to duration / 8."""
        return (
            self.flash_width_s
            if self.flash_width_s is not None
            else self.duration_s / 8.0
        )

    @property
    def shift_offset(self) -> int:
        """The hot-key rotation, defaulted to half the keyspace."""
        return (
            self.hot_shift_offset
            if self.hot_shift_offset is not None
            else self.keyspace // 2
        )

    def app_names(self) -> tuple[str, ...]:
        """The served apps this scenario addresses, in mix order."""
        return tuple(name for name, _ in self.apps)

    # -- rate curve -----------------------------------------------------
    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at ``t`` seconds."""
        if self.arrival == "diurnal":
            phase = math.sin(2 * math.pi * t / self.period_s)
            return self.rate_rps * (1 + self.diurnal_amplitude * phase)
        if self.arrival == "flash":
            assert self.flash_at_s is not None
            in_flash = self.flash_at_s <= t < self.flash_at_s + self.flash_window_s
            return self.rate_rps * (self.flash_factor if in_flash else 1.0)
        return self.rate_rps

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` (the thinning envelope)."""
        if self.arrival == "diurnal":
            return self.rate_rps * (1 + self.diurnal_amplitude)
        if self.arrival == "flash":
            return self.rate_rps * self.flash_factor
        return self.rate_rps

    def to_params(self) -> dict[str, Any]:
        """The spec as plain JSON-safe data (the trace header records it)."""
        params = asdict(self)
        params["apps"] = [list(pair) for pair in self.apps]
        params["tenants"] = (
            [list(pair) for pair in self.tenants] if self.tenants else None
        )
        return params


class _ZipfRanks:
    """Inverse-CDF Zipf rank sampler over a shared RNG (rank 0 hottest)."""

    def __init__(self, n: int, s: float) -> None:
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def draw(self, rng: random.Random) -> int:
        return bisect_left(self._cdf, rng.random())


def generate_trace(spec: ScenarioSpec) -> ScenarioTrace:
    """Generate ``spec``'s trace; same spec → the same events, always."""
    rng = random.Random(spec.seed * 1_000_003 + _GENERATOR_SALT)
    zipf = (
        _ZipfRanks(spec.keyspace, spec.zipf_s)
        if spec.keydist == "zipf"
        else None
    )
    peak = spec.peak_rate()
    app_names = [name for name, _ in spec.apps]
    app_weights = [weight for _, weight in spec.apps]
    tenant_names = (
        [name for name, _ in spec.tenants] if spec.tenants else None
    )
    tenant_weights = (
        [weight for _, weight in spec.tenants] if spec.tenants else None
    )
    events: list[TraceEvent] = []
    t = 0.0
    counter = 0
    while True:
        t += rng.expovariate(peak)
        if t >= spec.duration_s:
            break
        # Thinning: accept this candidate with probability rate(t)/peak.
        if rng.random() >= spec.rate_at(t) / peak:
            continue
        selector = rng.random()
        if selector < spec.set_fraction:
            op = "set"
        elif selector < spec.set_fraction + spec.delete_fraction:
            op = "delete"
        else:
            op = "get"
        if zipf is not None:
            rank = zipf.draw(rng)
            offset = (
                spec.shift_offset
                if spec.hot_shift_at_s is not None and t >= spec.hot_shift_at_s
                else 0
            )
            key_index = (rank + offset) % spec.keyspace
        else:
            key_index = rng.randrange(spec.keyspace)
        tenant = ""
        if tenant_names is not None:
            tenant = rng.choices(tenant_names, weights=tenant_weights, k=1)[0]
        if len(app_names) > 1:
            app = rng.choices(app_names, weights=app_weights, k=1)[0]
        else:
            app = app_names[0]
        if app == "crypto" and op == "delete":
            # The crypto pipeline's vocabulary has no delete; re-encrypting
            # the slot is the closest mutation.
            op = "set"
        value = (
            (counter % 2**63).to_bytes(spec.value_bytes, "big")
            if op == "set"
            else None
        )
        events.append(
            TraceEvent(
                t=t,
                app=app,
                op=op,
                key=key_index.to_bytes(8, "big"),
                tenant=tenant,
                value=value,
            )
        )
        counter += 1
    return ScenarioTrace(
        name=spec.name,
        seed=spec.seed,
        duration_s=spec.duration_s,
        keyspace=spec.keyspace,
        apps=spec.app_names(),
        tenants=dict(spec.tenants) if spec.tenants else None,
        generator=spec.to_params(),
        events=tuple(events),
    )
