"""The scenario trace format: schema-stamped JSONL request timelines.

A trace file is one header line plus one line per request arrival:

- **Header** — the usual :func:`repro.telemetry.schema.stamp` fields for
  the ``scenario-trace`` artifact, the scenario's identity (name, seed,
  duration, keyspace, app set, tenant mix), the generator parameters it
  was produced from, the event count, and a SHA-256 digest over the
  exact event lines.  :func:`load_trace` refuses files whose stamp,
  count or digest disagree — a committed eval trace either replays the
  bytes it was reviewed with, or not at all.
- **Events** — ``{"t": <seconds since trace start>, "app": ..., "op":
  ..., "key": <hex>, "tenant": ...}`` plus ``"value": <hex>`` on
  payload-carrying ops.  Events are sorted by ``t`` and serialized with
  sorted keys and no whitespace, so a trace's bytes are a pure function
  of its events — which is what makes "same seed → byte-identical file"
  testable.

Keys are the serve layer's fixed-width 8-byte big-endian integers (see
:mod:`repro.workloads.keydist`), hex-encoded for JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.schema import check_stamp, stamp

#: Artifact kind of a trace file's header stamp.
TRACE_ARTIFACT = "scenario-trace"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped request arrival."""

    t: float
    app: str
    op: str
    key: bytes
    tenant: str = ""
    value: bytes | None = None

    def to_json(self) -> str:
        """The event's canonical serialized form (digest input)."""
        record: dict[str, Any] = {
            "t": self.t,
            "app": self.app,
            "op": self.op,
            "key": self.key.hex(),
            "tenant": self.tenant,
        }
        if self.value is not None:
            record["value"] = self.value.hex()
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Parse one serialized event line."""
        record = json.loads(line)
        value = record.get("value")
        return cls(
            t=float(record["t"]),
            app=record["app"],
            op=record["op"],
            key=bytes.fromhex(record["key"]),
            tenant=record.get("tenant", ""),
            value=bytes.fromhex(value) if value is not None else None,
        )


@dataclass(frozen=True)
class ScenarioTrace:
    """A named, replayable request timeline."""

    name: str
    seed: int
    duration_s: float
    keyspace: int
    apps: tuple[str, ...]
    tenants: dict[str, float] | None = None
    generator: dict[str, Any] = field(default_factory=dict)
    events: tuple[TraceEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.apps:
            raise ValueError("a trace must declare at least one app")
        out_of_range = [e for e in self.events if not 0 <= e.t < self.duration_s]
        if out_of_range:
            raise ValueError(
                f"{len(out_of_range)} events fall outside [0, {self.duration_s}s)"
            )
        unknown = sorted({e.app for e in self.events} - set(self.apps))
        if unknown:
            raise ValueError(f"events address undeclared apps {unknown}")

    @property
    def digest(self) -> str:
        """SHA-256 over the serialized event lines (the header's hash)."""
        return trace_digest(self.events)

    def header(self) -> dict[str, Any]:
        """The trace file's first line, as a dict."""
        return {
            **stamp(TRACE_ARTIFACT),
            "name": self.name,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "keyspace": self.keyspace,
            "apps": list(self.apps),
            "tenants": dict(self.tenants) if self.tenants else None,
            "generator": dict(self.generator),
            "events": len(self.events),
            "sha256": self.digest,
        }


def trace_digest(events: tuple[TraceEvent, ...]) -> str:
    """SHA-256 over the newline-joined canonical event lines."""
    payload = "\n".join(event.to_json() for event in events)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def write_trace(trace: ScenarioTrace, path: str) -> str:
    """Write ``trace`` as schema-stamped JSONL; returns the path.

    The byte layout is canonical (sorted keys, compact separators, one
    trailing newline), so writing the same trace twice produces the same
    file — the determinism tests hash the bytes.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    header = json.dumps(trace.header(), sort_keys=True, separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(header)
        fh.write("\n")
        for event in trace.events:
            fh.write(event.to_json())
            fh.write("\n")
    return path


def load_trace(path: str) -> ScenarioTrace:
    """Load and verify one trace file.

    Raises :class:`repro.telemetry.schema.SchemaMismatch` on a bad or
    missing stamp, and :class:`ValueError` when the event count or
    digest disagree with the header (a corrupted or hand-edited trace).
    """
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: unparsable trace header: {exc}") from exc
    if not isinstance(header, dict):
        raise ValueError(f"{path}: trace header is not an object")
    check_stamp(header, TRACE_ARTIFACT, source=path)
    try:
        events = tuple(TraceEvent.from_json(line) for line in lines[1:])
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        raise ValueError(f"{path}: unparsable trace event: {exc}") from exc
    declared = header.get("events")
    if declared != len(events):
        raise ValueError(
            f"{path}: header declares {declared} events, file has {len(events)}"
        )
    digest = trace_digest(events)
    if header.get("sha256") != digest:
        raise ValueError(
            f"{path}: event digest {digest[:12]}… does not match the header "
            f"({str(header.get('sha256'))[:12]}…) — the trace was modified"
        )
    tenants = header.get("tenants")
    return ScenarioTrace(
        name=header["name"],
        seed=int(header["seed"]),
        duration_s=float(header["duration_s"]),
        keyspace=int(header["keyspace"]),
        apps=tuple(header["apps"]),
        tenants=dict(tenants) if tenants else None,
        generator=dict(header.get("generator") or {}),
        events=events,
    )
