"""The named scenario catalog.

Each entry is a :class:`repro.scenarios.generate.ScenarioSpec` whose
generated trace is committed under ``traces/`` and whose replay result
is pinned by a baseline under ``baselines/`` — ``repro diff`` gates the
whole library.  The specs are small on purpose: a committed eval trace
is reviewed like code, and CI replays one per run.

The five shapes cover the serve layer's interesting regimes:

========================  =====================================================
``steady-mixed``          Constant-rate multi-app mix (kv/session/crypto) with
                          a gold/bronze tenant split — the everyday workload.
``diurnal-kv``            A compressed day curve over a Zipf-skewed KV stream —
                          capacity breathing without overload.
``flash-crowd``           A 6× burst mid-run over kv+session — shed/admission
                          behaviour under a step overload.
``hotkey-shift``          Zipf mass rotates to new keys mid-run — cache- and
                          rendezvous-placement stress with constant total rate.
``multiapp-soak``         The longest mix: three apps, three tenants, Zipf keys
                          — the catch-all soak the CI job replays sliced.
========================  =====================================================
"""

from __future__ import annotations

import os

from repro.scenarios.generate import ScenarioSpec

#: Where committed eval traces live, relative to the repo root.
TRACE_DIR = "traces"

#: Replay parameters shared by every catalog scenario: the cluster the
#: committed baselines were recorded on.  ``repro scenarios replay``
#: uses these unless overridden, so a baseline comparison is apples to
#: apples by default.
REPLAY_DEFAULTS = {
    "shards": 4,
    "backend": "zc",
    "budget": 16,
    "queue_capacity": 64,
    "servers_per_shard": 2,
}

#: The scenario library, in catalog order.
CATALOG: tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="steady-mixed",
        seed=101,
        duration_s=0.25,
        rate_rps=4_000.0,
        arrival="steady",
        keyspace=256,
        keydist="uniform",
        apps=(("kv", 6.0), ("session", 3.0), ("crypto", 1.0)),
        tenants=(("bronze", 1.0), ("gold", 3.0)),
        description="Constant-rate kv/session/crypto mix, gold/bronze tenants.",
    ),
    ScenarioSpec(
        name="diurnal-kv",
        seed=202,
        duration_s=0.3,
        rate_rps=3_000.0,
        arrival="diurnal",
        diurnal_amplitude=0.6,
        keyspace=256,
        keydist="zipf",
        apps=(("kv", 1.0),),
        description="A compressed day curve over a Zipf-skewed KV stream.",
    ),
    ScenarioSpec(
        name="flash-crowd",
        seed=303,
        duration_s=0.24,
        rate_rps=2_000.0,
        arrival="flash",
        flash_at_s=0.12,
        flash_width_s=0.04,
        flash_factor=6.0,
        keyspace=256,
        keydist="uniform",
        apps=(("kv", 3.0), ("session", 1.0)),
        description="A 6x flash crowd mid-run over kv+session traffic.",
    ),
    ScenarioSpec(
        name="hotkey-shift",
        seed=404,
        duration_s=0.2,
        rate_rps=4_000.0,
        arrival="steady",
        keyspace=256,
        keydist="zipf",
        hot_shift_at_s=0.1,
        apps=(("kv", 1.0),),
        description="Zipf hot-key mass rotates by half the keyspace mid-run.",
    ),
    ScenarioSpec(
        name="multiapp-soak",
        seed=505,
        duration_s=0.3,
        rate_rps=3_000.0,
        arrival="steady",
        keyspace=256,
        keydist="zipf",
        apps=(("kv", 5.0), ("session", 4.0), ("crypto", 1.0)),
        tenants=(("bronze", 1.0), ("gold", 2.0), ("silver", 1.0)),
        description="Three apps, three tenants, Zipf keys — the CI soak.",
    ),
)

_BY_NAME = {spec.name: spec for spec in CATALOG}

#: Every catalog scenario name, in catalog order.
SCENARIO_NAMES = tuple(spec.name for spec in CATALOG)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a catalog scenario; unknown names list the choices."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choices: {', '.join(SCENARIO_NAMES)}"
        ) from None


def trace_path(name: str, root: str = ".") -> str:
    """The committed trace file for scenario ``name`` under ``root``."""
    return os.path.join(root, TRACE_DIR, f"{name}.trace.jsonl")


def baseline_path(name: str, root: str = ".") -> str:
    """The committed baseline snapshot for scenario ``name``."""
    return os.path.join(root, "baselines", f"scenario-{name}.json")
