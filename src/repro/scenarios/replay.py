"""Trace replay: feed a committed timeline through the serve router.

:class:`TraceReplayer` is a drop-in for the open-loop
:class:`repro.serve.loadgen.LoadGenerator` — same ``run()`` entry point,
same ``issued``/``skipped`` counters, same absolute arrival schedule,
same per-arrival request threads — except the arrivals come from a
:class:`repro.scenarios.trace.ScenarioTrace` instead of seeded draws.
Because a trace is pure data, every slice of a slice-parallel replay
walks the *identical* global timeline and only gates the spawn through
its ``admit`` predicate, which is exactly the invariant the loadgen's
guarantee rests on — so sliced replays merge bit-identical to unsliced
ones (the acceptance test of the scenario library).

:func:`replay_scenario` is the high-level entry: load a catalog trace,
replay it on the catalog's default cluster (optionally sliced), and
return the stamped artifact.  :func:`scenario_snapshot` distils that
artifact into a small committed baseline, and
:func:`compare_scenario_baseline` is the ``repro diff`` gate.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

from repro.scenarios.catalog import (
    REPLAY_DEFAULTS,
    get_scenario,
    trace_path,
)
from repro.scenarios.trace import ScenarioTrace, load_trace
from repro.serve.router import Router
from repro.sim.instructions import Compute, Sleep
from repro.sim.kernel import Kernel, Program, SimThread
from repro.telemetry.schema import check_stamp, stamp

#: Artifact kind of a committed scenario baseline snapshot.
SCENARIO_ARTIFACT = "scenario-bench"


class TraceReplayer:
    """Replays a :class:`ScenarioTrace` against a router.

    Mirrors the open-loop :class:`repro.serve.loadgen.LoadGenerator`
    contract: ``run()`` drives the kernel until every replayed request
    completes, ``issued`` counts every trace event (including ones a
    slice's ``admit`` predicate skipped), ``skipped`` counts the skips.
    """

    def __init__(
        self,
        kernel: Kernel,
        router: Router,
        trace: ScenarioTrace,
        *,
        admit: "Callable[[bytes], bool] | None" = None,
        parse_cycles: float = 1_200.0,
    ) -> None:
        self.kernel = kernel
        self.router = router
        self.trace = trace
        self._admit = admit
        self.parse_cycles = parse_cycles
        #: Trace events walked — every arrival, admitted or not.
        self.issued = 0
        #: Arrivals skipped by the ``admit`` predicate.
        self.skipped = 0

    def run(self) -> None:
        """Replay the whole trace and run the kernel until it drains."""
        request_threads: list[SimThread] = []
        arrivals = self.kernel.spawn(
            self._arrival_process(request_threads),
            name="trace-arrivals",
            kind="serve-client",
        )
        self.kernel.join(arrivals)
        if request_threads:
            self.kernel.join(*request_threads)

    def _arrival_process(self, request_threads: list[SimThread]) -> Program:
        # Absolute schedule anchored at replay start: each event is due
        # at t0 + its trace timestamp, independent of how long this
        # thread waited in the ready queue — the same rule as the
        # loadgen's open loop, and for the same reason (queue delay must
        # not stretch the offered timeline).
        t0 = self.kernel.now
        for event in self.trace.events:
            due = t0 + self.kernel.cycles(event.t)
            delay = due - self.kernel.now
            if delay > 0:
                yield Sleep(delay)
            index = self.issued
            self.issued += 1
            if self._admit is not None and not self._admit(event.key):
                self.skipped += 1
                continue
            request_threads.append(
                self.kernel.spawn(
                    self._one_request(event),
                    name=f"req-{index}",
                    kind="serve-client",
                )
            )

    def _one_request(self, event: Any) -> Program:
        yield Compute(self.parse_cycles, tag="request-parse")
        yield from self.router.request(
            event.op,
            event.key,
            event.value,
            tenant=event.tenant,
            app=event.app,
        )


# ----------------------------------------------------------------------
# High-level replay + the baseline gate
# ----------------------------------------------------------------------
def replay_spec(
    name: str,
    *,
    root: str = ".",
    trace_file: str | None = None,
    slices: int = 1,
    obs: bool = False,
    **overrides: Any,
) -> "Any":
    """The :class:`repro.api.BenchSpec` describing a catalog replay.

    Starts from the catalog's default cluster (:data:`REPLAY_DEFAULTS`),
    applies keyword ``overrides`` (any :class:`~repro.api.ServeSpec` or
    :class:`~repro.api.BenchSpec` field), and points the spec at the
    committed trace (``scenario=name``) or an explicit ``trace_file``.
    Unknown override names raise :class:`repro.api.SpecError` — one
    validation path for every replay entry point.
    """
    import dataclasses as _dc

    from repro.api import AutoscaleSpec, BenchSpec, ServeSpec, SpecError

    get_scenario(name)  # validate the name early, with the clean error
    serve_fields = {field.name for field in _dc.fields(ServeSpec)}
    bench_fields = {
        field.name for field in _dc.fields(BenchSpec)
    } - {"serve", "scenario", "trace", "slices", "obs"}
    kwargs: dict[str, Any] = {**REPLAY_DEFAULTS, **overrides}
    serve_kwargs = {k: v for k, v in kwargs.items() if k in serve_fields}
    bench_kwargs = {k: v for k, v in kwargs.items() if k in bench_fields}
    unknown = sorted(set(kwargs) - serve_fields - bench_fields)
    if unknown:
        raise SpecError(
            f"unknown replay override(s) {unknown}; valid names are "
            "ServeSpec/BenchSpec fields"
        )
    autoscale = serve_kwargs.get("autoscale")
    if isinstance(autoscale, dict):
        serve_kwargs["autoscale"] = AutoscaleSpec(**autoscale)
    if isinstance(serve_kwargs.get("tenants"), dict):
        serve_kwargs["tenants"] = tuple(sorted(serve_kwargs["tenants"].items()))
    return BenchSpec(
        serve=ServeSpec(**serve_kwargs),
        scenario=None if trace_file is not None else name,
        trace=trace_file,
        slices=slices,
        obs=obs,
        **bench_kwargs,
    )


def replay_scenario(
    name: str,
    *,
    root: str = ".",
    trace_file: str | None = None,
    slices: int = 1,
    audit: bool = False,
    obs: bool = False,
    raw_sink: dict[str, Any] | None = None,
    **overrides: Any,
) -> dict[str, Any]:
    """Replay catalog scenario ``name`` and return the stamped artifact.

    Builds the declarative :func:`replay_spec` (committed trace or
    ``trace_file``, catalog defaults plus keyword ``overrides``) and
    hands it to :func:`repro.serve.bench.run_bench` — single-process by
    default or slice-parallel with ``slices > 1``.
    """
    from repro.serve.bench import run_bench

    spec = replay_spec(
        name,
        root=root,
        trace_file=trace_file,
        slices=slices,
        obs=obs,
        **overrides,
    )
    return run_bench(
        spec,
        root=root,
        audit=audit,
        raw_sink=raw_sink if slices == 1 else None,
    )


def scenario_snapshot(result: dict[str, Any]) -> dict[str, Any]:
    """Distil a replay artifact into a committed baseline snapshot.

    Keeps the parameters that define the run (so a drifted cluster shape
    is caught as an exact mismatch), the trace identity (digest — so a
    regenerated trace invalidates its baseline), and the outcome numbers
    the gate compares.
    """
    params = result["params"]
    totals = result["totals"]
    return {
        "meta": stamp(SCENARIO_ARTIFACT),
        # The full declarative serve config (schema-stamped), so the
        # baseline records exactly what to re-run — not just the few
        # shape parameters the gate compares.
        "spec": result.get("spec"),
        "params": {
            key: params.get(key)
            for key in (
                "scenario",
                "trace_digest",
                "trace_events",
                "shards",
                "backend",
                "budget",
                "queue_capacity",
                "servers_per_shard",
                "policy",
                "admission",
                "apps",
            )
        },
        "totals": {
            "issued": totals.get("issued"),
            "submitted": totals.get("submitted"),
            "completed": totals.get("completed"),
            "shed": totals.get("shed"),
            "failed": totals.get("failed"),
            "throughput_rps": totals.get("throughput_rps"),
            "latency_us": {
                "p50": totals.get("latency_us", {}).get("p50"),
                "p99": totals.get("latency_us", {}).get("p99"),
            },
        },
        "per_app": {
            app: record["completed"]
            for app, record in sorted(result.get("per_app", {}).items())
        },
        "per_shard": [
            {"shard": row["shard"], "completed": row["completed"]}
            for row in result.get("per_shard", [])
        ],
    }


def write_scenario_baseline(snapshot: dict[str, Any], path: str) -> str:
    """Write a scenario baseline snapshot as JSON; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_scenario_baseline(path: str) -> dict[str, Any]:
    """Load and stamp-check a committed scenario baseline."""
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    check_stamp(baseline.get("meta", {}), SCENARIO_ARTIFACT, source=path)
    return baseline


def compare_scenario_baseline(
    result: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.1,
) -> list[str]:
    """Gate a replay against its baseline; returns violation messages.

    Identity fields (scenario name, trace digest, issued arrivals) must
    match exactly — a replay of different bytes is not comparable.
    Outcome numbers get the usual relative ``threshold`` (plus a small
    absolute slack on shed counts), absorbing intentional model nudges
    without letting regressions through.
    """
    violations: list[str] = []
    new_params, old_params = result["params"], baseline["params"]
    for field in ("scenario", "trace_digest"):
        if new_params.get(field) != old_params.get(field):
            violations.append(
                f"{field} mismatch: run has {new_params.get(field)!r}, "
                f"baseline has {old_params.get(field)!r}"
            )
    new_totals, old_totals = result["totals"], baseline["totals"]
    if new_totals.get("issued") != old_totals.get("issued"):
        violations.append(
            f"issued arrivals changed: {new_totals.get('issued')} vs "
            f"baseline {old_totals.get('issued')} (the trace is not the "
            "one the baseline was recorded from)"
        )
    old_completed = old_totals.get("completed") or 0
    new_completed = new_totals.get("completed") or 0
    if old_completed and new_completed < old_completed * (1 - threshold):
        violations.append(
            f"completed requests regressed: {new_completed} vs baseline "
            f"{old_completed} (> {threshold:.0%} drop)"
        )
    old_tput = old_totals.get("throughput_rps") or 0.0
    new_tput = new_totals.get("throughput_rps") or 0.0
    if old_tput > 0 and new_tput < old_tput * (1 - threshold):
        violations.append(
            f"throughput regressed: {new_tput:.0f} rps vs baseline "
            f"{old_tput:.0f} rps (> {threshold:.0%} drop)"
        )
    for pct in ("p50", "p99"):
        old_lat = (old_totals.get("latency_us") or {}).get(pct) or 0.0
        new_lat = (new_totals.get("latency_us") or {}).get(pct) or 0.0
        if old_lat > 0 and new_lat > old_lat * (1 + threshold):
            violations.append(
                f"{pct} latency inflated: {new_lat:.1f} us vs baseline "
                f"{old_lat:.1f} us (> {threshold:.0%} rise)"
            )
    old_shed = old_totals.get("shed") or 0
    new_shed = new_totals.get("shed") or 0
    if new_shed > max(old_shed * (1 + threshold), old_shed + 5):
        violations.append(f"shed count grew: {new_shed} vs baseline {old_shed}")
    return violations


def run_scenario_from_baseline(
    baseline: dict[str, Any], *, root: str = "."
) -> dict[str, Any]:
    """Re-run the replay a committed baseline describes.

    Loads the committed trace for the baseline's scenario, checks its
    digest against the one recorded in the baseline (so a silently
    regenerated trace fails loudly instead of gating apples against
    oranges), and replays on the baseline's recorded cluster shape.
    """
    params = baseline["params"]
    name = params["scenario"]
    path = trace_path(name, root)
    trace = load_trace(path)
    if trace.digest != params.get("trace_digest"):
        raise ValueError(
            f"{path}: trace digest {trace.digest[:12]}… does not match the "
            f"baseline's ({str(params.get('trace_digest'))[:12]}…) — "
            "regenerate the baseline or restore the committed trace"
        )
    spec_json = baseline.get("spec")
    if spec_json is not None:
        # Post-spec baselines carry the full declarative config: re-run
        # exactly that, no field-by-field reconstruction.
        from repro.api import BenchSpec
        from repro.serve.bench import run_bench

        return run_bench(BenchSpec.from_json(spec_json), root=root)
    overrides = {
        key: params[key]
        for key in (
            "shards",
            "backend",
            "budget",
            "queue_capacity",
            "servers_per_shard",
        )
        if params.get(key) is not None
    }
    return replay_scenario(name, root=root, **overrides)
