"""Trace-driven scenario library for the serving layer.

The synthetic loadgen answers "what does this cluster do at rate R?";
the scenario library answers "what does it do on *this* workload?" —
where the workload is a reviewable artifact, not a seed.  Three pieces:

- :mod:`repro.scenarios.trace` — the schema-stamped JSONL trace format:
  timestamped, tenant- and app-tagged request arrivals with a digest
  that makes every committed trace tamper-evident.
- :mod:`repro.scenarios.generate` — the deterministic generator:
  diurnal curves, flash crowds, hot-key skew shifts, weighted app and
  tenant mixes, all from one seeded stream (same spec → byte-identical
  file).
- :mod:`repro.scenarios.replay` — the replay engine (a drop-in for the
  open-loop loadgen, so slice-parallel replays merge bit-identical to
  unsliced ones) plus the ``scenario-bench`` baseline gate.
- :mod:`repro.scenarios.catalog` — the named library whose traces live
  under ``traces/`` and whose baselines ``repro diff`` gates in CI.

See ``docs/scenarios.md`` for the trace schema and the gen → replay →
diff workflow.
"""

from repro.scenarios.catalog import (
    CATALOG,
    REPLAY_DEFAULTS,
    SCENARIO_NAMES,
    baseline_path,
    get_scenario,
    trace_path,
)
from repro.scenarios.generate import (
    ARRIVAL_CHOICES,
    KEYDIST_CHOICES,
    ScenarioSpec,
    generate_trace,
)
from repro.scenarios.replay import (
    SCENARIO_ARTIFACT,
    TraceReplayer,
    compare_scenario_baseline,
    load_scenario_baseline,
    replay_scenario,
    run_scenario_from_baseline,
    scenario_snapshot,
    write_scenario_baseline,
)
from repro.scenarios.trace import (
    TRACE_ARTIFACT,
    ScenarioTrace,
    TraceEvent,
    load_trace,
    trace_digest,
    write_trace,
)

__all__ = [
    "ARRIVAL_CHOICES",
    "CATALOG",
    "KEYDIST_CHOICES",
    "REPLAY_DEFAULTS",
    "SCENARIO_ARTIFACT",
    "SCENARIO_NAMES",
    "TRACE_ARTIFACT",
    "ScenarioSpec",
    "ScenarioTrace",
    "TraceEvent",
    "TraceReplayer",
    "baseline_path",
    "compare_scenario_baseline",
    "generate_trace",
    "get_scenario",
    "load_scenario_baseline",
    "load_trace",
    "replay_scenario",
    "run_scenario_from_baseline",
    "scenario_snapshot",
    "trace_digest",
    "trace_path",
    "write_scenario_baseline",
    "write_trace",
]
