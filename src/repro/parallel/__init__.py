"""Parallel cell execution: process-pool runner + content-addressed cache.

See ``docs/performance.md`` for the execution model, cache keying and
invalidation rules, and the determinism guarantees (``jobs=N`` output is
bit-identical to ``jobs=1``).
"""

from repro.parallel.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.parallel.cells import CellSpec, canonical, cell
from repro.parallel.runner import (
    CellOutcome,
    CellRunner,
    fork_available,
    resolve_jobs,
    run_cells,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "CellSpec",
    "cell",
    "canonical",
    "CellOutcome",
    "CellRunner",
    "fork_available",
    "resolve_jobs",
    "run_cells",
]
