"""Cell specifications: an experiment's grid, as data.

Every experiment is a grid of independent *cells* — one (backend,
parameter) point, each of which builds its own simulated machine.  A
:class:`CellSpec` names one such point declaratively, which is what lets
one interface feed three consumers:

- the serial runner (``module.run()`` with ``jobs=1``),
- the process-pool runner (:mod:`repro.parallel.runner`),
- the content-addressed result cache (:mod:`repro.parallel.cache`).

Experiment modules expose ``cells(**kwargs) -> list[CellSpec]``,
``run_cell(spec) -> row`` and ``assemble(rows, **kwargs) -> Result``; see
``docs/extending.md``.  Parameters may be plain values or (frozen)
dataclasses such as ``BackendSpec`` / ``SyntheticSpec`` — anything
picklable with a stable field set, so a spec can cross a process boundary
and be canonicalised into a cache key.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class CellSpec:
    """One cell of an experiment grid.

    Attributes:
        exp_id: Registry id of the module whose ``run_cell`` executes this
            spec (``repro.experiments.EXPERIMENTS``).  Derived figures
            reuse another experiment's cells — e.g. ``fig9`` returns
            ``fig8`` specs — so identical work shares one cache entry.
        index: Position in the grid, for labelling/diagnostics only; the
            runner preserves list order and the cache key excludes it.
        params: The cell's keyword parameters, sorted by name.
    """

    exp_id: str
    index: int
    params: tuple[tuple[str, Any], ...]

    @property
    def kwargs(self) -> dict[str, Any]:
        """The parameters as a keyword dict."""
        return dict(self.params)

    def label(self) -> str:
        """Short display label, e.g. ``fig8[3]``."""
        return f"{self.exp_id}[{self.index}]"


def cell(exp_id: str, index: int, **params: Any) -> CellSpec:
    """Build a :class:`CellSpec` with deterministically ordered params."""
    return CellSpec(exp_id, index, tuple(sorted(params.items())))


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serialisable canonical form.

    Used for cache keys: two parameter values hash equal iff their
    canonical forms are equal.  Dataclasses flatten to a type-tagged field
    mapping, sets sort, tuples become lists; anything else falls back to
    ``repr`` (stable for the simple value objects experiments use).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__type__": type(value).__qualname__, **fields}
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(canonical(v) for v in value)}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__repr__": repr(value)}
