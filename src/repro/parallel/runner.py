"""The cell runner: fan independent simulation cells over processes.

Every experiment cell builds its own :class:`~repro.sim.kernel.Kernel`
and simulated machine, so cells share no state and the grid is
embarrassingly parallel.  :class:`CellRunner` executes a list of
:class:`~repro.parallel.cells.CellSpec` either in-process (``jobs=1``,
platforms without ``fork``, or when at most one cell misses the cache) or
over a ``concurrent.futures.ProcessPoolExecutor``, and always returns
outcomes **in spec order** regardless of completion order — which is what
keeps ``jobs=N`` output bit-identical to ``jobs=1``.

Telemetry crosses the process boundary explicitly: when the parent has an
active :class:`~repro.telemetry.session.TelemetrySession`, each worker
opens its own session (same configuration), runs the cell, and ships a
:class:`~repro.telemetry.session.SessionPayload` back; the parent absorbs
payloads in cell order, so capture labels and metrics match a serial run.

A :class:`~repro.parallel.cache.ResultCache` (optional) is consulted
before any execution and fed after; hits skip the cell entirely.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.parallel.cache import ResultCache
from repro.parallel.cells import CellSpec
from repro.telemetry.session import SessionPayload, TelemetrySession, active_session


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalise a ``--jobs`` value: ``"auto"``/None means the CPU count."""
    if jobs is None or jobs == "auto":
        return os.cpu_count() or 1
    count = int(jobs)
    if count < 1:
        raise ValueError("jobs must be >= 1")
    return count


def fork_available() -> bool:
    """Whether this platform can fork pool workers (Linux/macOS: yes)."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-served) cell."""

    spec: CellSpec
    row: Any
    wall_seconds: float
    cached: bool


def _run_cell_inline(spec: CellSpec) -> Any:
    """Execute one cell in this process (under any active session)."""
    # Imported lazily: repro.experiments imports the experiment modules,
    # which import repro.parallel for run_cells — resolving the registry
    # at call time breaks the cycle.
    from repro.experiments import CELL_PROVIDERS, EXPERIMENTS

    module = EXPERIMENTS.get(spec.exp_id) or CELL_PROVIDERS[spec.exp_id]
    return module.run_cell(spec)


def _pool_run_cell(
    spec: CellSpec, telemetry_config: dict[str, Any] | None
) -> tuple[Any, float, SessionPayload | None]:
    """Pool-worker entry point: run one cell, return (row, wall, payload).

    Module-level (not a closure) so the fork context can pickle it.  With
    telemetry requested, the worker opens its own session — innermost
    wins over any session inherited through fork — and ships the captures
    back as plain data.
    """
    started = time.perf_counter()
    if telemetry_config is not None:
        with TelemetrySession(**telemetry_config) as session:
            row = _run_cell_inline(spec)
        payload = session.to_payload()
    else:
        row = _run_cell_inline(spec)
        payload = None
    return row, time.perf_counter() - started, payload


class CellRunner:
    """Executes cell specs with optional parallelism and caching.

    Args:
        jobs: Worker count; ``"auto"`` resolves to the host CPU count.
        cache: A :class:`ResultCache`, or None to always execute.
    """

    def __init__(self, jobs: int | str = 1, cache: ResultCache | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache

    def run(self, specs: Sequence[CellSpec]) -> list[CellOutcome]:
        """Execute the specs; outcomes come back in spec order."""
        outcomes: list[CellOutcome | None] = [None] * len(specs)
        pending: list[int] = []
        for i, spec in enumerate(specs):
            if self.cache is not None:
                hit, row = self.cache.load(spec)
                if hit:
                    outcomes[i] = CellOutcome(spec, row, 0.0, cached=True)
                    continue
            pending.append(i)

        session = active_session()
        # The pool only pays off with >= 2 cells to overlap; a platform
        # without fork falls back to the identical in-process path.
        use_pool = self.jobs > 1 and len(pending) > 1 and fork_available()
        if not use_pool:
            for i in pending:
                started = time.perf_counter()
                row = _run_cell_inline(specs[i])
                outcomes[i] = CellOutcome(
                    specs[i], row, time.perf_counter() - started, cached=False
                )
                if self.cache is not None:
                    self.cache.store(specs[i], row)
        else:
            telemetry_config = session.config_kwargs() if session is not None else None
            context = multiprocessing.get_context("fork")
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                futures = {
                    i: pool.submit(_pool_run_cell, specs[i], telemetry_config)
                    for i in pending
                }
                # Collect — and absorb telemetry — in spec order, so rows,
                # capture labels and metrics match the serial run exactly.
                for i in pending:
                    row, wall, payload = futures[i].result()
                    outcomes[i] = CellOutcome(specs[i], row, wall, cached=False)
                    if self.cache is not None:
                        self.cache.store(specs[i], row)
                    if session is not None and payload is not None:
                        session.absorb(payload)
        return [outcome for outcome in outcomes if outcome is not None]

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Cache hits observed so far (0 without a cache)."""
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        """Cache misses observed so far (0 without a cache)."""
        return self.cache.misses if self.cache is not None else 0


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> list[Any]:
    """Convenience: execute specs and return just the rows, in spec order.

    This is what every experiment module's ``run(...)`` delegates to;
    with the defaults it degenerates to a plain serial loop.
    """
    return [outcome.row for outcome in CellRunner(jobs, cache).run(specs)]
