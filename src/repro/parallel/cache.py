"""Content-addressed result cache for experiment cells.

A cell's row is a pure function of (source tree, repro version,
experiment id, cell parameters, machine/cost-model defaults) — the
simulator is deterministic — so re-running ``report``/``suite`` can skip
any cell whose key was computed before.  The key is a SHA-256 over the
canonical form (:func:`repro.parallel.cells.canonical`) of exactly those
inputs:

- ``repro.__version__`` plus a **source fingerprint** (size + mtime of
  every module under ``repro``), so editing any simulator/experiment
  source invalidates the whole cache rather than serving stale rows;
- the default :class:`~repro.sim.machine.MachineSpec` (via
  ``paper_machine()``), :class:`~repro.sgx.costmodel.SgxCostModel` and
  :class:`~repro.hostos.syscalls.SyscallCostModel` — cells that override
  them carry the override in their params already;
- the cell's ``exp_id`` and canonicalised params (its grid ``index`` is
  deliberately excluded: equal work hits one entry regardless of
  position, which is how fig9/fig12/fig13 share fig8/fig11/fig7 rows).

Rows are stored with :mod:`pickle` and written atomically (tmp +
``os.replace``) so concurrent pool workers and parallel suites never
observe torn entries; a warm hit returns byte-identical rows.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from functools import lru_cache
from typing import Any

from repro.parallel.cells import CellSpec, canonical

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Digest of the installed ``repro`` source tree (path, size, mtime).

    Computed once per process; cheap (one ``stat`` per module).  A rebuilt
    or edited tree yields a different fingerprint, so cached rows can
    never outlive the code that produced them.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    entries = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            stat = os.stat(path)
            entries.append(
                (os.path.relpath(path, root), stat.st_size, stat.st_mtime_ns)
            )
    digest = hashlib.sha256(repr(entries).encode("utf-8"))
    return digest.hexdigest()


@lru_cache(maxsize=1)
def environment_fingerprint() -> str:
    """Digest of the default machine and cost-model parameters."""
    import repro
    from repro.hostos import SyscallCostModel
    from repro.sgx import SgxCostModel
    from repro.sim import paper_machine

    payload = {
        "version": repro.__version__,
        "source": source_fingerprint(),
        "machine": canonical(paper_machine()),
        "sgx_cost": canonical(SgxCostModel()),
        "syscall_cost": canonical(SyscallCostModel()),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


class ResultCache:
    """Pickle-backed store of cell rows, keyed by content address.

    Args:
        directory: Where entries live (created on first store).

    Attributes:
        hits / misses: Cumulative lookup counters over this instance.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(self, spec: CellSpec) -> str:
        """The content address of one cell spec (hex SHA-256)."""
        payload = {
            "env": environment_fingerprint(),
            "exp_id": spec.exp_id,
            "params": canonical(spec.params),
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def load(self, spec: CellSpec) -> tuple[bool, Any]:
        """``(hit, row)`` for the spec; counts the lookup."""
        try:
            with open(self._path(self.key(spec)), "rb") as handle:
                row = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, row

    def store(self, spec: CellSpec, row: Any) -> None:
        """Persist one row atomically (concurrent writers are safe)."""
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(self.key(spec))
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(row, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for name in os.listdir(self.directory):
            if name.endswith(".pkl"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed
