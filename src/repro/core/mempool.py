"""Preallocated untrusted memory pools for switchless requests (§IV-B).

Callers bump-allocate request frames from the reserved worker's pool.
Nothing is freed individually: when the pool cannot satisfy an allocation,
the caller performs a *regular* ocall that frees and reallocates the whole
pool.  Preallocation is what keeps the hot path ocall-free; the occasional
reallocation ocall is the cause of the latency spikes the paper points out
in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MemoryPool:
    """One worker's untrusted request pool (bump allocator)."""

    capacity_bytes: int
    used_bytes: int = 0
    reallocs: int = 0
    allocations: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")

    def try_alloc(self, nbytes: int) -> bool:
        """Reserve ``nbytes``; False means the pool must be reallocated.

        A request larger than the whole pool is admitted only into an
        empty pool (it then occupies a dedicated pool generation).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.used_bytes + nbytes <= self.capacity_bytes:
            self.used_bytes += nbytes
            self.allocations += 1
            return True
        if self.used_bytes == 0:
            # Oversized request: let it through, pool is "full" after it.
            self.used_bytes = self.capacity_bytes
            self.allocations += 1
            return True
        return False

    def reset(self) -> None:
        """Free + reallocate (the effect of the reallocation ocall)."""
        self.used_bytes = 0
        self.reallocs += 1

    @property
    def fill_fraction(self) -> float:
        """Occupied fraction of the pool's capacity."""
        return self.used_bytes / self.capacity_bytes
