"""ZC-SWITCHLESS for ecalls: configless switchless enclave entry.

§IV-D argues the design is direction- and TEE-agnostic; this module makes
it concrete for ecalls.  Untrusted application threads invoke named
trusted functions; *trusted* worker threads inside the enclave serve them
through the same worker state machine (:class:`repro.core.worker.ZcWorker`
with the trusted runtime as executor), driven by the same wasted-cycle
scheduler.

Two asymmetries versus the ocall backend:

- request frames live in *enclave* memory, so pool exhaustion is repaired
  by an in-enclave reallocation (cheap), not a reallocation ocall;
- the fallback path is a regular ecall (EENTER + handler + EEXIT).

Install with ``ZcEcallRuntime(config).attach(enclave)``; the enclave's
``ecall_named`` then routes through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import ZcConfig
from repro.core.scheduler import ZcScheduler
from repro.core.stats import ZcStats
from repro.core.worker import WorkerStatus, ZcWorker
from repro.sim.instructions import Compute, Spin
from repro.sim.kernel import Kernel, Program, SimThread

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest

#: In-enclave cost of recycling a trusted request pool (malloc/free only;
#: no boundary crossing, unlike the ocall side's reallocation ocall).
_TRUSTED_POOL_RECYCLE_CYCLES = 2_000.0


class ZcEcallRuntime:
    """Configless switchless ecalls with adaptive trusted workers.

    Exposes the same surface the :class:`repro.core.scheduler.ZcScheduler`
    drives (``workers``, ``stats``, ``set_active_workers``,
    ``worker_idle_spin_cycles``), so the scheduler is reused unchanged.
    """

    name = "zc-ecalls"

    def __init__(self, config: ZcConfig | None = None) -> None:
        self.config = config if config is not None else ZcConfig()
        self.stats = ZcStats()
        self.workers: list[ZcWorker] = []
        self.worker_threads: list[SimThread] = []
        self.scheduler: ZcScheduler | None = None
        self.scheduler_thread: SimThread | None = None
        self._enclave: "Enclave | None" = None
        self._active_count = 0
        self.initial_workers = 0

    # ------------------------------------------------------------------
    # Scheduler-facing surface (mirrors ZcSwitchlessBackend)
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        """The simulation kernel this component is attached to."""
        if self._enclave is None:
            raise RuntimeError("runtime not attached to an enclave")
        return self._enclave.kernel

    @property
    def enclave(self) -> "Enclave":
        """The enclave this component is attached to."""
        if self._enclave is None:
            raise RuntimeError("runtime not attached to an enclave")
        return self._enclave

    def attach(self, enclave: "Enclave") -> "ZcEcallRuntime":
        """Install this backend on ``enclave`` (spawns its threads)."""
        self._enclave = enclave
        kernel = enclave.kernel
        cap = self.config.worker_cap(kernel.spec)
        self.initial_workers = self.config.initial_worker_count(kernel.spec)
        for i in range(cap):
            worker = ZcWorker(kernel, i, self.config)
            if i >= self.initial_workers:
                worker.pause_requested = True
            self.workers.append(worker)
            thread = kernel.spawn(
                worker.run(enclave, executor=enclave.trts.execute),
                name=f"zc-tworker-{i}",
                kind="zc-tworker",
                daemon=True,
            )
            self.worker_threads.append(thread)
        self._active_count = self.initial_workers
        self.stats.record_worker_count(kernel.now, self.initial_workers)
        if self.config.enable_scheduler:
            self.scheduler = ZcScheduler(self, self.config)
            self.scheduler_thread = kernel.spawn(
                self.scheduler.run(),
                name="zc-ecall-scheduler",
                kind="zc-scheduler",
                daemon=True,
            )
        enclave.ecall_dispatcher = self
        return self

    def stop(self) -> None:
        """Request shutdown of this component's threads."""
        if self.scheduler is not None:
            self.scheduler.stop()
        for worker in self.workers:
            worker.request_exit()

    def set_active_workers(self, count: int) -> None:
        """Keep the first ``count`` workers active; pause the rest."""
        count = max(0, min(count, len(self.workers)))
        for worker in self.workers[:count]:
            if worker.pause_requested or worker.is_paused:
                worker.request_unpause()
        for worker in self.workers[count:]:
            if not worker.pause_requested:
                worker.request_pause()
        if count != self._active_count:
            self._active_count = count
            self.stats.record_worker_count(self.kernel.now, count)

    @property
    def active_worker_target(self) -> int:
        """Worker count most recently requested by the scheduler."""
        return self._active_count

    def worker_idle_spin_cycles(self) -> float:
        """Cumulative busy-wait cycles across this runtime's workers."""
        self.kernel.flush_accounting()
        return sum(t.cycles_by.get("spin", 0.0) for t in self.worker_threads)

    # ------------------------------------------------------------------
    # Call path
    # ------------------------------------------------------------------
    def invoke_ecall(self, request: "OcallRequest") -> Program:
        """Execute one ecall request (simulated program on the caller thread)."""
        enclave = self.enclave
        cost = enclave.cost
        bus = enclave.kernel.bus
        worker = self._find_unused()
        if worker is None:
            self.stats.record_fallback()
            if bus is not None:
                bus.emit(
                    "zc.fallback",
                    name=request.name,
                    path="ecall",
                    waited_cycles=enclave.kernel.now - request.dispatched_at,
                )
            result = yield from self._regular_ecall(request)
            request.mode = "fallback"
            return result

        reserved = worker.try_reserve()
        assert reserved, "scan returned a worker that was not UNUSED"
        yield Compute(cost.switchless_dispatch_cycles, tag="zc-ecall-dispatch")
        frame_bytes = (
            self.config.request_header_bytes + request.in_bytes + request.out_bytes
        )
        if not worker.pool.try_alloc(frame_bytes):
            # Trusted pool: recycled in-enclave, no boundary crossing.
            yield Compute(_TRUSTED_POOL_RECYCLE_CYCLES, tag="zc-ecall-pool")
            worker.pool.reset()
            self.stats.record_pool_realloc()
            allocated = worker.pool.try_alloc(frame_bytes)
            assert allocated, "fresh pool rejected an allocation"

        worker.request = request
        worker.set_status(WorkerStatus.PROCESSING)
        while worker.status is not WorkerStatus.WAITING:
            yield Spin(
                worker.status_gate.wait_value(WorkerStatus.WAITING),
                self.config.completion_spin_chunk_cycles,
                tag="zc-ecall-wait",
            )
        result = worker.result
        worker.request = None
        worker.set_status(WorkerStatus.UNUSED)
        self.stats.record_switchless()
        request.mode = "switchless"
        return result

    def _find_unused(self) -> ZcWorker | None:
        for worker in self.workers:
            if worker.status is WorkerStatus.UNUSED and not worker.pause_requested:
                return worker
        return None

    def _regular_ecall(self, request: "OcallRequest") -> Program:
        enclave = self.enclave
        cost = enclave.cost
        yield Compute(cost.ecall_entry_cycles, tag="eenter")
        result = yield from enclave.trts.execute(request)
        yield Compute(cost.ecall_exit_cycles, tag="eexit")
        return result
