"""ZC-SWITCHLESS: configless, CPU-waste-minimising switchless calls.

This package is the paper's primary contribution (§IV):

- :mod:`repro.core.config` — runtime parameters (``Q = 10 ms``,
  ``µ = 1/100``, worker cap ``N/2``); note there is *no* list of
  switchless routines and *no* fixed worker count — that is the point.
- :mod:`repro.core.worker` — the worker state machine of Fig. 6
  (``UNUSED → RESERVED → PROCESSING → WAITING → UNUSED``, plus ``PAUSED``
  and ``EXIT``) with per-worker buffers.
- :mod:`repro.core.mempool` — preallocated untrusted memory pools,
  freed/reallocated via a regular ocall when full (§IV-B) — the source of
  the latency spikes visible in Fig. 8.
- :mod:`repro.core.scheduler` — the feedback-loop scheduler (§IV-A): each
  cycle runs a *configuration phase* of ``N/2 + 1`` micro-quanta trying
  every worker count ``i`` and measuring ``U_i = F_i · T_es + i · µ · Q``
  wasted cycles, then a *scheduling phase* of one quantum with the argmin.
- :mod:`repro.core.backend` — the call path: any ocall runs switchlessly
  if the caller finds an idle worker, otherwise it falls back to a regular
  ocall *immediately* (§IV-C) — no pause-loop, unlike the Intel SDK.

Installing :class:`ZcSwitchlessBackend` on an enclave also swaps the
enclave's marshalling ``memcpy`` for the paper's optimised ``rep movsb``
implementation (§IV-F), as the released system does.
"""

from typing import Any

from repro.core.config import SchedulerPolicy, ZcConfig
from repro.core.ecalls import ZcEcallRuntime
from repro.core.mempool import MemoryPool
from repro.core.scheduler import ZcScheduler, wasted_cycles
from repro.core.stats import ZcStats
from repro.core.trustzone import trustzone_cost_model
from repro.core.worker import WorkerStatus, ZcWorker


def __getattr__(name: str) -> Any:
    # Deprecated construction path: backends are built by repro.api.
    if name == "ZcSwitchlessBackend":
        import warnings

        warnings.warn(
            "importing ZcSwitchlessBackend from repro.core is deprecated; "
            "construct backends via repro.api (Runtime.create or "
            "make_backend('zc'))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.backend import ZcSwitchlessBackend

        return ZcSwitchlessBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MemoryPool",
    "SchedulerPolicy",
    "WorkerStatus",
    "ZcConfig",
    "ZcEcallRuntime",
    "ZcScheduler",
    "ZcStats",
    "ZcSwitchlessBackend",
    "ZcWorker",
    "trustzone_cost_model",
    "wasted_cycles",
]
