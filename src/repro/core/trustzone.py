"""ZC-SWITCHLESS on other TEEs: an ARM TrustZone profile (§IV-D).

The paper argues its design carries over to TEEs with the same two-world
architecture: in ARM TrustZone (Armv8-M), CPU transitions between the
secure and normal worlds go through the Secure Monitor and carry security
checks, just like SGX's EENTER/EEXIT — only cheaper.

Nothing in :mod:`repro.core` is SGX-specific: the backend only consumes a
cost model.  This module provides a TrustZone-flavoured
:class:`repro.sgx.costmodel.SgxCostModel` so the same worker state machine
and scheduler drive "world-switchless" calls.  The interesting emergent
property (exercised in the tests and the ablation bench) is that with a
~10x cheaper transition, the scheduler's break-even point shifts: fewer
workloads justify dedicating a spinning worker, and the scheduler
correctly keeps smaller pools.
"""

from __future__ import annotations

from repro.sgx.costmodel import SgxCostModel

#: A world switch through the Secure Monitor costs on the order of a few
#: hundred to ~1.5k cycles on Armv8 cores — roughly an order of magnitude
#: cheaper than an SGX enclave transition.
TRUSTZONE_WORLD_SWITCH_CYCLES = 1_400.0


def trustzone_cost_model(**overrides: float) -> SgxCostModel:
    """A cost model for a TrustZone-style two-world TEE.

    The transition (world switch) is ~10x cheaper than SGX's, the pause
    and syscall costs are unchanged (same class of CPU), and the
    switchless-plumbing costs are identical — the shared-memory protocol
    does not depend on the TEE.
    """
    defaults: dict[str, float] = {
        "eexit_cycles": TRUSTZONE_WORLD_SWITCH_CYCLES / 2,
        "eenter_cycles": TRUSTZONE_WORLD_SWITCH_CYCLES / 2,
        "ecall_entry_cycles": TRUSTZONE_WORLD_SWITCH_CYCLES / 2,
        "ecall_exit_cycles": TRUSTZONE_WORLD_SWITCH_CYCLES / 2,
    }
    defaults.update(overrides)
    return SgxCostModel(**defaults)  # type: ignore[arg-type]
