"""Runtime configuration of ZC-SWITCHLESS.

Deliberately small: the system is *configless* from the developer's point
of view.  Everything here is a runtime constant of the mechanism itself
(the paper fixes ``Q`` and ``µ`` empirically), not a per-application knob.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.machine import MachineSpec


class SchedulerPolicy(enum.Enum):
    """How the scheduler prices the cost of keeping ``i`` workers active.

    ``PAPER_FORMULA`` is §IV-A verbatim: ``U_i = F_i·T_es + i·µ·Q·freq`` —
    every cycle of an active worker counts as waste.  Analysis (and our
    ablation bench) shows this formula almost never justifies a worker for
    two-caller workloads, because a worker costs a full micro-quantum
    while the fallbacks two callers can produce waste at most about one.

    ``IDLE_WASTE`` prices only the workers' measured *busy-wait* cycles:
    ``U_i = F_i·T_es + idle_spin_cycles_i``.  A worker executing an ocall
    is making the application move forward, so by the paper's own
    definition of a wasted cycle (§IV-A, [16]) it is not wasting.  This
    variant reproduces the paper's *measured* behaviour — e.g. the
    scheduler holding 2 workers for 84.4% of the OpenSSL benchmark — and
    is therefore the default.
    """

    PAPER_FORMULA = "paper-formula"
    IDLE_WASTE = "idle-waste"


@dataclass(frozen=True)
class ZcConfig:
    """ZC-SWITCHLESS runtime parameters.

    Attributes:
        quantum_seconds: The scheduler quantum ``Q`` (paper: 10 ms).
        mu: Micro-quantum fraction; each configuration-phase probe lasts
            ``µ · Q`` (paper: 1/100).
        max_workers: Worker-pool cap; defaults to ``N/2`` logical CPUs as
            in the paper's evaluation.
        initial_workers: Workers active before the first scheduling
            decision; the paper initialises to ``N/2``.
        pool_capacity_bytes: Size of each worker's preallocated untrusted
            memory pool; when full, the next caller performs a regular
            ocall to free and reallocate it (§IV-B).
        request_header_bytes: Fixed pool bytes per switchless request
            (function id, argument frame, return slot).
        idle_spin_chunk_cycles: Granularity of an idle worker's busy-wait
            loop re-arm (bounds wake-up latency if a notification is ever
            missed; does not change the CPU cost of waiting).
        completion_spin_chunk_cycles: Granularity of the caller's
            busy-wait for results.
        decision_cycles: Scheduler work to compute the argmin each cycle.
        enable_scheduler: Disable to freeze the worker count (used by
            unit tests and ablation benches).
        use_zc_memcpy: Install the optimised ``rep movsb`` memcpy on the
            enclave (§IV-F); on by default, as released.
        request_timeout_cycles: Bound on the caller's completion
            busy-wait, enforced **only while a fault injector is
            attached** (``kernel.faults`` set): on expiry the caller
            quarantines the worker slot and recovers via a regular
            fallback ocall.  Healthy runs never consult it.  The default
            (~26 ms at the paper's 3.8 GHz) is far above any healthy
            completion time.
        policy: Worker-cost accounting used by the scheduler; see
            :class:`SchedulerPolicy`.
        worker_affinity: Logical CPUs the worker threads are pinned to
            (sched_setaffinity-style); None lets the OS place them.
            Pinning workers away from the SMT siblings of application
            cores avoids hyperthread interference — see
            ``bench_ablation_pinning``.
    """

    quantum_seconds: float = 0.01
    mu: float = 0.01
    max_workers: int | None = None
    initial_workers: int | None = None
    pool_capacity_bytes: int = 256 * 1024
    request_header_bytes: int = 64
    idle_spin_chunk_cycles: float = 50_000.0
    completion_spin_chunk_cycles: float = 100_000.0
    decision_cycles: float = 2_000.0
    request_timeout_cycles: float = 100_000_000.0
    enable_scheduler: bool = True
    use_zc_memcpy: bool = True
    policy: SchedulerPolicy = SchedulerPolicy.IDLE_WASTE
    worker_affinity: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.quantum_seconds <= 0:
            raise ValueError("quantum_seconds must be positive")
        if not 0 < self.mu <= 1:
            raise ValueError("mu must be in (0, 1]")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.initial_workers is not None and self.initial_workers < 0:
            raise ValueError("initial_workers must be >= 0")
        if self.pool_capacity_bytes < 1:
            raise ValueError("pool_capacity_bytes must be >= 1")
        if self.request_header_bytes < 0:
            raise ValueError("request_header_bytes must be >= 0")
        if self.request_timeout_cycles <= 0:
            raise ValueError("request_timeout_cycles must be positive")

    def quantum_cycles(self, spec: MachineSpec) -> float:
        """``Q`` converted to cycles on ``spec``."""
        return spec.cycles(self.quantum_seconds)

    def micro_quantum_cycles(self, spec: MachineSpec) -> float:
        """``µ · Q`` converted to cycles on ``spec``."""
        return self.mu * self.quantum_cycles(spec)

    def worker_cap(self, spec: MachineSpec) -> int:
        """Maximum worker count: explicit cap or ``N/2`` logical CPUs."""
        if self.max_workers is not None:
            return self.max_workers
        return max(spec.n_logical // 2, 1)

    def initial_worker_count(self, spec: MachineSpec) -> int:
        """Workers active at startup (paper: ``N/2``)."""
        cap = self.worker_cap(spec)
        if self.initial_workers is not None:
            return min(self.initial_workers, cap)
        return cap
