"""The ZC-SWITCHLESS worker state machine (paper Fig. 6).

Each worker owns a buffer structure with the four fields of §IV-B: the
preallocated untrusted memory pool, the most recent switchless request, a
status field, and a scheduler-communication field (the pause/exit flags).

State transitions:

- caller: ``UNUSED → RESERVED`` (atomic claim), ``RESERVED → PROCESSING``
  (request published), ``WAITING → UNUSED`` (results consumed);
- worker: ``PROCESSING → WAITING`` (results published), ``UNUSED →
  PAUSED`` (scheduler asked, worker idle), ``PAUSED → UNUSED`` (scheduler
  woke it), ``UNUSED → EXIT`` (termination).

An *active* (non-paused) worker always occupies a CPU: it is either
executing a request or busy-waiting for one — the ``M`` cost term in the
scheduler's wasted-cycle model.  A paused worker blocks and costs nothing.

Fault tolerance (see :mod:`repro.faults`): a worker may additionally be
*quarantined* — its slot abandoned after a crash or a caller completion
timeout.  Quarantined workers are skipped by the caller's idle scan and
by the scheduler's activation sweep; a live (or respawned) worker thread
observing its own quarantine flag performs a *rejoin*: it resets the
slot's request/result fields and returns to ``UNUSED``.  All fault checks
are gated on ``kernel.faults``, so healthy runs are unchanged.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.core.config import ZcConfig
from repro.core.mempool import MemoryPool
from repro.sim.instructions import Block, Compute, Spin
from repro.sim.kernel import Kernel, Program
from repro.sim.primitives import Event, Gate

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest


class WorkerStatus(enum.Enum):
    """Worker buffer status field (Fig. 6)."""

    UNUSED = "unused"
    RESERVED = "reserved"
    PROCESSING = "processing"
    WAITING = "waiting"
    PAUSED = "paused"
    EXIT = "exit"


class ZcWorker:
    """One switchless worker thread's shared buffer and state machine."""

    def __init__(self, kernel: Kernel, index: int, config: ZcConfig) -> None:
        self.kernel = kernel
        self.index = index
        self.config = config
        self.status_gate: Gate = kernel.gate(WorkerStatus.UNUSED, name=f"zcw{index}")
        self.pool = MemoryPool(config.pool_capacity_bytes)
        self.request: "OcallRequest | None" = None
        self.result: object = None
        # Scheduler-communication field.
        self.pause_requested = False
        self.exit_requested = False
        self._kick_event: Event | None = None
        self._unpause_event: Event | None = None
        self.tasks_executed = 0
        self.pauses = 0
        # Fault-tolerance state (only ever set while a fault injector is
        # attached; see the module docstring).
        self.quarantined = False
        self.crashed = False
        self.generation = 0
        self.rejoins = 0

    # ------------------------------------------------------------------
    # Status helpers (atomic within one simulated step)
    # ------------------------------------------------------------------
    @property
    def status(self) -> WorkerStatus:
        """The worker's current status field."""
        return self.status_gate.value  # type: ignore[return-value]

    def set_status(self, status: WorkerStatus) -> None:
        """Atomic status store; also wakes the worker's busy-wait loop."""
        self.status_gate.set(status)
        self.kick()

    def try_reserve(self) -> bool:
        """Caller-side CAS ``UNUSED -> RESERVED``; the claim step of §IV-B."""
        if self.status is not WorkerStatus.UNUSED:
            return False
        self.set_status(WorkerStatus.RESERVED)
        return True

    @property
    def is_paused(self) -> bool:
        """Whether the worker is currently in the PAUSED state."""
        return self.status is WorkerStatus.PAUSED

    @property
    def active(self) -> bool:
        """Whether the worker currently consumes a CPU when idle."""
        return self.status not in (WorkerStatus.PAUSED, WorkerStatus.EXIT)

    # ------------------------------------------------------------------
    # Scheduler-communication field
    # ------------------------------------------------------------------
    def request_pause(self) -> None:
        """Scheduler: deactivate this worker once it is unreserved."""
        self.pause_requested = True
        self.kick()

    def request_unpause(self) -> None:
        """Scheduler: reactivate a paused worker (the §IV-A signal)."""
        self.pause_requested = False
        if self._unpause_event is not None:
            event, self._unpause_event = self._unpause_event, None
            event.fire_if_unfired()

    def request_exit(self) -> None:
        """Runtime teardown: ask the worker to clean up and terminate."""
        self.exit_requested = True
        self.kick()
        self.request_unpause()

    def kick(self) -> None:
        """Wake the worker's poll loop if it is busy-waiting.

        Under an active ``handoff`` fault window the wake-up may be
        dropped (re-delivered later) or delayed by the injector.
        """
        if self._kick_event is not None:
            event, self._kick_event = self._kick_event, None
            faults = self.kernel.faults
            if faults is not None and faults.perturb_handoff(event.fire_if_unfired):
                return
            event.fire_if_unfired()

    # ------------------------------------------------------------------
    # Worker thread program
    # ------------------------------------------------------------------
    def run(self, enclave: "Enclave", executor=None) -> Program:
        """Simulated program of this worker thread.

        ``executor`` selects the handler table: the untrusted runtime for
        ocall workers (default) or the trusted runtime when the same
        machinery serves switchless ecalls (§IV-D symmetry).
        """
        cost = enclave.cost
        if executor is None:
            executor = enclave.urts.execute
        while True:
            if self.quarantined:
                # Rejoin after a crash/abandonment: reset the slot and
                # return it to service.  Gated on our *own* flag (only
                # ever set under fault injection) rather than on
                # ``kernel.faults`` so a quarantined slot still heals
                # after the injector detaches at teardown.
                yield Compute(cost.worker_complete_cycles, tag="fault-rejoin")
                self.request = None
                self.result = None
                self.crashed = False
                self.quarantined = False
                self.rejoins += 1
                faults = self.kernel.faults
                if faults is not None:
                    faults.emit(
                        "fault.worker.rejoin", target="zc-worker", worker=self.index
                    )
                self.status_gate.set(WorkerStatus.UNUSED)
                continue
            faults = self.kernel.faults
            if faults is not None:
                stall = faults.take_stall("zc-worker", self.index)
                if stall:
                    yield Compute(stall, tag="fault-stall")
                    continue
            status = self.status
            if status is WorkerStatus.PROCESSING:
                factor = (
                    1.0 if faults is None else faults.cost_factor("zc-worker", self.index)
                )
                yield Compute(cost.worker_pickup_cycles * factor, tag="zc-pickup")
                request = self.request
                assert request is not None, "PROCESSING with no request"
                result = yield from executor(request)
                yield Compute(cost.worker_complete_cycles * factor, tag="zc-complete")
                self.result = result
                self.tasks_executed += 1
                self.status_gate.set(WorkerStatus.WAITING)  # caller observes
                continue
            if self.exit_requested and status in (WorkerStatus.UNUSED, WorkerStatus.PAUSED):
                # Final cleanup (free pool memory), then terminate.
                yield Compute(cost.worker_complete_cycles, tag="zc-exit-cleanup")
                self.status_gate.set(WorkerStatus.EXIT)
                return
            if self.pause_requested and status is WorkerStatus.UNUSED:
                # Nobody reserved us: release the CPU until the scheduler
                # sends the wake signal.
                self.pauses += 1
                self.status_gate.set(WorkerStatus.PAUSED)
                unpause = self.kernel.event(f"zcw{self.index}-unpause")
                self._unpause_event = unpause
                yield Block(unpause)
                yield Compute(cost.worker_wake_cycles, tag="zc-unpause")
                if not self.exit_requested:
                    self.status_gate.set(WorkerStatus.UNUSED)
                continue
            # UNUSED / RESERVED / WAITING: busy-wait for a state change.
            # This spin is the worker-side CPU cost of keeping a worker
            # active (the M*T term of the wasted-cycle model).
            kick = self.kernel.event(f"zcw{self.index}-kick")
            self._kick_event = kick
            yield Spin(kick, self.config.idle_spin_chunk_cycles, tag="zc-idle")
