"""Runtime statistics of ZC-SWITCHLESS.

The fallback counter doubles as the scheduler's measurement input: the
configuration phase reads it before and after each micro-quantum to obtain
``F_i``, the number of calls not handled switchlessly (§IV-A).
The worker-count timeline reproduces the paper's "the scheduler set the
number of workers to 0,1,2,3,4 for x% of the program's lifetime" analysis
(§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ZcStats:
    """Counters and timelines for one ZC-SWITCHLESS runtime."""

    fallback_count: int = 0
    switchless_count: int = 0
    pool_reallocs: int = 0
    scheduler_decisions: int = 0
    worker_crashes: int = 0
    worker_respawns: int = 0
    timeout_recoveries: int = 0
    worker_count_timeline: list[tuple[float, int]] = field(default_factory=list)

    def record_fallback(self) -> None:
        """Count one call that fell back to a regular transition."""
        self.fallback_count += 1

    def record_worker_crash(self) -> None:
        """Count one injected worker crash (fault layer)."""
        self.worker_crashes += 1

    def record_worker_respawn(self) -> None:
        """Count one supervised worker respawn (fault layer)."""
        self.worker_respawns += 1

    def record_timeout_recovery(self) -> None:
        """Count one caller completion-wait timeout recovered by fallback."""
        self.timeout_recoveries += 1

    def record_switchless(self) -> None:
        """Count one call executed switchlessly."""
        self.switchless_count += 1

    def record_pool_realloc(self) -> None:
        """Count one memory-pool reallocation."""
        self.pool_reallocs += 1

    def record_worker_count(self, t_cycles: float, count: int) -> None:
        """Log that ``count`` workers are active from ``t_cycles`` on.

        Consecutive entries with the same count coalesce (the earliest
        timestamp wins): the scheduler re-logs unchanged decisions every
        quantum, which would otherwise bloat the timeline for nothing.
        """
        timeline = self.worker_count_timeline
        if timeline and timeline[-1][1] == count:
            return
        timeline.append((t_cycles, count))

    @property
    def total_calls(self) -> int:
        """Total calls recorded."""
        return self.fallback_count + self.switchless_count

    def switchless_fraction(self) -> float:
        """Fraction of calls executed switchlessly."""
        total = self.total_calls
        return self.switchless_count / total if total else 0.0

    def worker_count_histogram(self, t_end_cycles: float) -> dict[int, float]:
        """Fraction of lifetime spent at each worker count (paper §V-B)."""
        if not self.worker_count_timeline:
            return {}
        histogram: dict[int, float] = {}
        timeline = self.worker_count_timeline
        for (t0, count), (t1, _) in zip(timeline, timeline[1:]):
            histogram[count] = histogram.get(count, 0.0) + (t1 - t0)
        last_t, last_count = timeline[-1]
        if t_end_cycles > last_t:
            histogram[last_count] = histogram.get(last_count, 0.0) + (t_end_cycles - last_t)
        total = sum(histogram.values())
        if total <= 0:
            return {}
        return {count: duration / total for count, duration in sorted(histogram.items())}

    def mean_worker_count(self, t_end_cycles: float) -> float:
        """Time-weighted average active worker count."""
        histogram = self.worker_count_histogram(t_end_cycles)
        return sum(count * frac for count, frac in histogram.items())
