"""The ZC-SWITCHLESS call backend (§IV).

The caller-side protocol for *every* ocall (there is no static selection):

1. Scan the worker pool for an ``UNUSED`` worker and claim it with an
   atomic ``UNUSED → RESERVED`` transition.
2. No idle worker?  Fall back to a regular ocall **immediately** — zero
   busy-waiting, the key difference from the Intel SDK's
   ``retries_before_fallback`` pause loop (§IV-C).
3. Allocate the request frame from the worker's preallocated untrusted
   memory pool; if the pool is full, free + reallocate it via a regular
   ocall first (§IV-B).
4. Publish the request (``RESERVED → PROCESSING``), busy-wait for
   ``WAITING``, copy results, release the worker (``→ UNUSED``).

Installing the backend also swaps the enclave's tlibc ``memcpy`` for the
optimised ``rep movsb`` version (§IV-F) and spawns the scheduler thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import ZcConfig
from repro.core.scheduler import ZcScheduler
from repro.core.stats import ZcStats
from repro.core.worker import WorkerStatus, ZcWorker
from repro.sgx.backend import CallBackend
from repro.sgx.memcpy import ZcMemcpy
from repro.sim.instructions import Compute, Spin
from repro.sim.kernel import Kernel, Program, SimThread, ThreadState

if TYPE_CHECKING:
    from repro.serve.budget import WorkerBudgetArbiter
    from repro.sgx.enclave import Enclave, OcallRequest

#: Ocall name registered for memory-pool reallocation.
POOL_REALLOC_OCALL = "zc_pool_realloc"


class ZcSwitchlessBackend(CallBackend):
    """Configless switchless calls driven by the wasted-cycle scheduler."""

    name = "zc-switchless"

    def __init__(self, config: ZcConfig | None = None) -> None:
        self.config = config if config is not None else ZcConfig()
        self.stats = ZcStats()
        self.workers: list[ZcWorker] = []
        self.worker_threads: list[SimThread] = []
        #: Threads of crashed-and-respawned workers; kept so cumulative
        #: spin accounting (worker_idle_spin_cycles) stays monotonic.
        self.retired_threads: list[SimThread] = []
        self.scheduler: ZcScheduler | None = None
        self.scheduler_thread: SimThread | None = None
        self._enclave: "Enclave | None" = None
        self._active_count = 0
        self.initial_workers = 0
        #: Optional cross-enclave worker-budget arbiter (duck-typed:
        #: ``grant(backend, count) -> int`` / ``release(backend)``).  Set
        #: by :class:`repro.serve.budget.WorkerBudgetArbiter` so the
        #: per-shard schedulers' ``argmin U_i`` sweeps respect a global
        #: core cap; None (the default) leaves this backend uncapped.
        self.arbiter: "WorkerBudgetArbiter | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        """The simulation kernel this component is attached to."""
        enclave = self._enclave
        if enclave is None:
            raise RuntimeError("backend not attached to an enclave")
        return enclave.kernel

    @property
    def enclave(self) -> "Enclave":
        """The enclave this component is attached to."""
        if self._enclave is None:
            raise RuntimeError("backend not attached to an enclave")
        return self._enclave

    def attach(self, enclave: "Enclave") -> None:
        """Install this backend on ``enclave`` (spawns its threads)."""
        self._enclave = enclave
        kernel = enclave.kernel
        if self.config.use_zc_memcpy:
            enclave.memcpy_model = ZcMemcpy()
        enclave.urts.register(POOL_REALLOC_OCALL, self._pool_realloc_handler)

        cap = self.config.worker_cap(kernel.spec)
        self.initial_workers = self.config.initial_worker_count(kernel.spec)
        active = self.initial_workers
        if self.arbiter is not None:
            # The global worker budget applies from the first worker on,
            # not only once the scheduler starts sweeping.
            active = self.arbiter.grant(self, active)
        for i in range(cap):
            worker = ZcWorker(kernel, i, self.config)
            if i >= active:
                worker.pause_requested = True
            self.workers.append(worker)
            affinity = (
                frozenset(self.config.worker_affinity)
                if self.config.worker_affinity is not None
                else None
            )
            thread = kernel.spawn(
                worker.run(enclave),
                name=f"zc-worker-{i}",
                kind="zc-worker",
                daemon=True,
                affinity=affinity,
            )
            self.worker_threads.append(thread)
        self._active_count = active
        self.stats.record_worker_count(kernel.now, active)
        if kernel.bus is not None:
            kernel.bus.emit("zc.workers", count=active)

        if self.config.enable_scheduler:
            self.scheduler = ZcScheduler(self, self.config)
            self.scheduler_thread = kernel.spawn(
                self.scheduler.run(),
                name="zc-scheduler",
                kind="zc-scheduler",
                daemon=True,
            )

    def stop(self) -> None:
        """Program termination (§IV-B): flag workers to EXIT, stop the
        scheduler."""
        if self.scheduler is not None:
            self.scheduler.stop()
        for worker in self.workers:
            worker.request_exit()
        if self.arbiter is not None:
            self.arbiter.release(self)

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def set_active_workers(self, count: int) -> None:
        """(Scheduler) keep the first ``count`` healthy workers active,
        pause the rest.  Reserved/processing workers pause once released.

        Quarantined slots (crashed or abandoned under fault injection —
        never on healthy runs) are excluded from the sweep entirely: the
        scheduler's ``argmin U_i`` decision must never activate a dead
        worker.

        With a cross-enclave arbiter installed, the requested count is
        first clipped to this backend's share of the global worker
        budget, so co-located shards can never spin up more workers in
        aggregate than the cap allows.
        """
        if self.arbiter is not None:
            count = self.arbiter.grant(self, count)
        workers = self.workers
        if any(worker.quarantined for worker in workers):
            workers = [worker for worker in workers if not worker.quarantined]
        count = max(0, min(count, len(workers)))
        for worker in workers[:count]:
            if worker.pause_requested or worker.is_paused:
                worker.request_unpause()
        for worker in workers[count:]:
            if not worker.pause_requested:
                worker.request_pause()
        if count != self._active_count:
            self._active_count = count
            self.stats.record_worker_count(self.kernel.now, count)
            bus = self.kernel.bus
            if bus is not None:
                bus.emit("zc.workers", count=count)

    @property
    def active_worker_target(self) -> int:
        """Worker count most recently requested by the scheduler."""
        return self._active_count

    def worker_idle_spin_cycles(self) -> float:
        """Cumulative busy-wait cycles across all worker threads.

        Workers only ever spin while *idle* (request execution is compute),
        so this is exactly the wasted-worker-cycle measure the IDLE_WASTE
        scheduler policy prices.
        """
        self.kernel.flush_accounting()
        total = sum(t.cycles_by.get("spin", 0.0) for t in self.worker_threads)
        if self.retired_threads:
            total += sum(t.cycles_by.get("spin", 0.0) for t in self.retired_threads)
        return total

    # ------------------------------------------------------------------
    # Fault supervision (active only while a fault injector is attached)
    # ------------------------------------------------------------------
    def respawn_worker(self, index: int, target: str | None = None) -> bool:
        """Supervise a crashed worker slot back to life.

        Spawns a fresh thread running the same :class:`ZcWorker` state
        machine; the new thread's rejoin branch resets the slot.  Returns
        False (and leaves the slot quarantined) when the respawn is moot:
        the runtime is shutting down or the old thread is still alive.
        """
        if target is None:
            target = "zc-worker"
        if target != "zc-worker" or not 0 <= index < len(self.workers):
            return False
        worker = self.workers[index]
        if worker.exit_requested:
            return False
        old = self.worker_threads[index]
        if old.state is not ThreadState.DONE:
            return False
        self.retired_threads.append(old)
        worker.generation += 1
        affinity = (
            frozenset(self.config.worker_affinity)
            if self.config.worker_affinity is not None
            else None
        )
        thread = self.kernel.spawn(
            worker.run(self.enclave),
            name=f"zc-worker-{index}-g{worker.generation}",
            kind="zc-worker",
            daemon=True,
            affinity=affinity,
        )
        self.worker_threads[index] = thread
        self.stats.record_worker_respawn()
        return True

    # ------------------------------------------------------------------
    # Call path
    # ------------------------------------------------------------------
    def invoke(self, request: "OcallRequest") -> Program:
        """Execute one call request (simulated program on the caller thread)."""
        enclave = self.enclave
        cost = enclave.cost
        bus = enclave.kernel.bus
        worker = self._find_unused()
        if worker is None:
            # §IV-C: immediate fallback, no busy-waiting at all.  The
            # event carries the cycles elapsed since backend dispatch so
            # the invariant auditor can prove "no busy-waiting": this
            # path runs without a single yield, so the difference is 0.
            self.stats.record_fallback()
            if bus is not None:
                bus.emit(
                    "zc.fallback",
                    name=request.name,
                    waited_cycles=enclave.kernel.now - request.dispatched_at,
                )
            result = yield from self._regular(request)
            request.mode = "fallback"
            return result

        reserved = worker.try_reserve()
        assert reserved, "scan returned a worker that was not UNUSED"
        yield Compute(cost.switchless_dispatch_cycles, tag="zc-dispatch")

        # Allocate the request frame from the worker's untrusted pool.
        frame_bytes = self.config.request_header_bytes + request.in_bytes + request.out_bytes
        if not worker.pool.try_alloc(frame_bytes):
            # Pool exhausted: free + reallocate it via a regular ocall.
            yield from enclave.regular_ocall(POOL_REALLOC_OCALL, worker.index)
            worker.pool.reset()
            self.stats.record_pool_realloc()
            if bus is not None:
                bus.emit("zc.pool_realloc", worker=worker.index, frame_bytes=frame_bytes)
            allocated = worker.pool.try_alloc(frame_bytes)
            assert allocated, "fresh pool rejected an allocation"

        worker.request = request
        worker.set_status(WorkerStatus.PROCESSING)

        # Busy-wait for the worker to publish results (WAITING).  While a
        # fault injector is attached the wait is bounded: a worker that
        # crashed or stalled past the timeout gets its slot quarantined
        # and the call completes via a regular-transition fallback (the
        # graceful-degradation path; at-least-once execution for the
        # abandoned request).  Healthy runs never time out, so the loop
        # is byte-identical to the fault-free build.
        generation = worker.generation
        waited = 0.0
        give_up = False
        while True:
            if worker.generation != generation:
                # The worker crashed and its slot was respawned while we
                # waited: the rejoin reset our request, and any WAITING we
                # observe now belongs to a later caller.  Abandon the slot
                # (it is healthy again — no quarantine) and recover.
                give_up = True
            elif worker.status is WorkerStatus.WAITING:
                break
            if give_up:
                faults = enclave.kernel.faults
                self.stats.record_timeout_recovery()
                # Counts as a fallback for the scheduler's F_i measurement
                # — the call did pay a full transition in the end.  No
                # ``zc.fallback`` event though: that event asserts the
                # §IV-C *immediate* (zero-wait) fallback invariant, which
                # this recovery path intentionally does not satisfy; it
                # emits ``fault.caller.timeout`` instead.
                self.stats.record_fallback()
                if faults is not None:
                    faults.emit(
                        "fault.caller.timeout",
                        name=request.name,
                        worker=worker.index,
                        waited_cycles=waited,
                    )
                result = yield from self._regular(request)
                request.mode = "fallback"
                return result
            yield Spin(
                worker.status_gate.wait_value(WorkerStatus.WAITING),
                self.config.completion_spin_chunk_cycles,
                tag="zc-wait-done",
            )
            faults = enclave.kernel.faults
            if faults is None:
                continue
            waited += self.config.completion_spin_chunk_cycles
            if waited < faults.caller_timeout_cycles(self.config.request_timeout_cycles):
                continue
            # Timed out: the worker crashed (without supervision) or is
            # stalled past the deadline.  Quarantine the slot — the caller
            # scan and scheduler sweep skip it, and the worker thread (if
            # alive, or once respawned) rejoins by resetting it.
            if worker.request is request:
                worker.quarantined = True
            give_up = True
        result = worker.result
        worker.request = None
        worker.set_status(WorkerStatus.UNUSED)
        # No per-success emit: ``ocall.complete`` (published by the enclave)
        # already carries mode="switchless"; only exceptional paths
        # (fallback, pool realloc) are bus events.
        self.stats.record_switchless()
        request.mode = "switchless"
        return result

    def _find_unused(self) -> ZcWorker | None:
        """Scan for an idle worker (lowest index first, deterministic).

        Quarantined slots are skipped: a worker crashed while UNUSED
        still *looks* idle, but reserving it would strand the caller.
        """
        for worker in self.workers:
            if (
                worker.status is WorkerStatus.UNUSED
                and not worker.pause_requested
                and not worker.quarantined
            ):
                return worker
        return None

    def _regular(self, request: "OcallRequest") -> Program:
        enclave = self.enclave
        cost = enclave.cost
        yield Compute(cost.eexit_cycles, tag="eexit")
        result = yield from enclave.urts.execute(request)
        yield Compute(cost.eenter_cycles, tag="eenter")
        return result

    def _pool_realloc_handler(self, worker_index: int) -> Program:
        """Host side of the pool reallocation ocall (free + malloc)."""
        enclave = self.enclave
        yield Compute(enclave.cost.pool_realloc_host_cycles, tag="zc-pool-realloc")
        return None
