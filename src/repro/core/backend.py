"""The ZC-SWITCHLESS call backend (§IV).

The caller-side protocol for *every* ocall (there is no static selection):

1. Scan the worker pool for an ``UNUSED`` worker and claim it with an
   atomic ``UNUSED → RESERVED`` transition.
2. No idle worker?  Fall back to a regular ocall **immediately** — zero
   busy-waiting, the key difference from the Intel SDK's
   ``retries_before_fallback`` pause loop (§IV-C).
3. Allocate the request frame from the worker's preallocated untrusted
   memory pool; if the pool is full, free + reallocate it via a regular
   ocall first (§IV-B).
4. Publish the request (``RESERVED → PROCESSING``), busy-wait for
   ``WAITING``, copy results, release the worker (``→ UNUSED``).

Installing the backend also swaps the enclave's tlibc ``memcpy`` for the
optimised ``rep movsb`` version (§IV-F) and spawns the scheduler thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import ZcConfig
from repro.core.scheduler import ZcScheduler
from repro.core.stats import ZcStats
from repro.core.worker import WorkerStatus, ZcWorker
from repro.sgx.backend import CallBackend
from repro.sgx.memcpy import ZcMemcpy
from repro.sim.instructions import Compute, Spin
from repro.sim.kernel import Kernel, Program, SimThread

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest

#: Ocall name registered for memory-pool reallocation.
POOL_REALLOC_OCALL = "zc_pool_realloc"


class ZcSwitchlessBackend(CallBackend):
    """Configless switchless calls driven by the wasted-cycle scheduler."""

    name = "zc-switchless"

    def __init__(self, config: ZcConfig | None = None) -> None:
        self.config = config if config is not None else ZcConfig()
        self.stats = ZcStats()
        self.workers: list[ZcWorker] = []
        self.worker_threads: list[SimThread] = []
        self.scheduler: ZcScheduler | None = None
        self.scheduler_thread: SimThread | None = None
        self._enclave: "Enclave | None" = None
        self._active_count = 0
        self.initial_workers = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        """The simulation kernel this component is attached to."""
        enclave = self._enclave
        if enclave is None:
            raise RuntimeError("backend not attached to an enclave")
        return enclave.kernel

    @property
    def enclave(self) -> "Enclave":
        """The enclave this component is attached to."""
        if self._enclave is None:
            raise RuntimeError("backend not attached to an enclave")
        return self._enclave

    def attach(self, enclave: "Enclave") -> None:
        """Install this backend on ``enclave`` (spawns its threads)."""
        self._enclave = enclave
        kernel = enclave.kernel
        if self.config.use_zc_memcpy:
            enclave.memcpy_model = ZcMemcpy()
        enclave.urts.register(POOL_REALLOC_OCALL, self._pool_realloc_handler)

        cap = self.config.worker_cap(kernel.spec)
        self.initial_workers = self.config.initial_worker_count(kernel.spec)
        for i in range(cap):
            worker = ZcWorker(kernel, i, self.config)
            if i >= self.initial_workers:
                worker.pause_requested = True
            self.workers.append(worker)
            affinity = (
                frozenset(self.config.worker_affinity)
                if self.config.worker_affinity is not None
                else None
            )
            thread = kernel.spawn(
                worker.run(enclave),
                name=f"zc-worker-{i}",
                kind="zc-worker",
                daemon=True,
                affinity=affinity,
            )
            self.worker_threads.append(thread)
        self._active_count = self.initial_workers
        self.stats.record_worker_count(kernel.now, self.initial_workers)
        if kernel.bus is not None:
            kernel.bus.emit("zc.workers", count=self.initial_workers)

        if self.config.enable_scheduler:
            self.scheduler = ZcScheduler(self, self.config)
            self.scheduler_thread = kernel.spawn(
                self.scheduler.run(),
                name="zc-scheduler",
                kind="zc-scheduler",
                daemon=True,
            )

    def stop(self) -> None:
        """Program termination (§IV-B): flag workers to EXIT, stop the
        scheduler."""
        if self.scheduler is not None:
            self.scheduler.stop()
        for worker in self.workers:
            worker.request_exit()

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def set_active_workers(self, count: int) -> None:
        """(Scheduler) keep the first ``count`` workers active, pause the
        rest.  Reserved/processing workers pause once released."""
        count = max(0, min(count, len(self.workers)))
        for worker in self.workers[:count]:
            if worker.pause_requested or worker.is_paused:
                worker.request_unpause()
        for worker in self.workers[count:]:
            if not worker.pause_requested:
                worker.request_pause()
        if count != self._active_count:
            self._active_count = count
            self.stats.record_worker_count(self.kernel.now, count)
            bus = self.kernel.bus
            if bus is not None:
                bus.emit("zc.workers", count=count)

    @property
    def active_worker_target(self) -> int:
        """Worker count most recently requested by the scheduler."""
        return self._active_count

    def worker_idle_spin_cycles(self) -> float:
        """Cumulative busy-wait cycles across all worker threads.

        Workers only ever spin while *idle* (request execution is compute),
        so this is exactly the wasted-worker-cycle measure the IDLE_WASTE
        scheduler policy prices.
        """
        self.kernel.flush_accounting()
        return sum(t.cycles_by.get("spin", 0.0) for t in self.worker_threads)

    # ------------------------------------------------------------------
    # Call path
    # ------------------------------------------------------------------
    def invoke(self, request: "OcallRequest") -> Program:
        """Execute one call request (simulated program on the caller thread)."""
        enclave = self.enclave
        cost = enclave.cost
        bus = enclave.kernel.bus
        worker = self._find_unused()
        if worker is None:
            # §IV-C: immediate fallback, no busy-waiting at all.  The
            # event carries the cycles elapsed since backend dispatch so
            # the invariant auditor can prove "no busy-waiting": this
            # path runs without a single yield, so the difference is 0.
            self.stats.record_fallback()
            if bus is not None:
                bus.emit(
                    "zc.fallback",
                    name=request.name,
                    waited_cycles=enclave.kernel.now - request.dispatched_at,
                )
            result = yield from self._regular(request)
            request.mode = "fallback"
            return result

        reserved = worker.try_reserve()
        assert reserved, "scan returned a worker that was not UNUSED"
        yield Compute(cost.switchless_dispatch_cycles, tag="zc-dispatch")

        # Allocate the request frame from the worker's untrusted pool.
        frame_bytes = self.config.request_header_bytes + request.in_bytes + request.out_bytes
        if not worker.pool.try_alloc(frame_bytes):
            # Pool exhausted: free + reallocate it via a regular ocall.
            yield from enclave.regular_ocall(POOL_REALLOC_OCALL, worker.index)
            worker.pool.reset()
            self.stats.record_pool_realloc()
            if bus is not None:
                bus.emit("zc.pool_realloc", worker=worker.index, frame_bytes=frame_bytes)
            allocated = worker.pool.try_alloc(frame_bytes)
            assert allocated, "fresh pool rejected an allocation"

        worker.request = request
        worker.set_status(WorkerStatus.PROCESSING)

        # Busy-wait for the worker to publish results (WAITING).
        while worker.status is not WorkerStatus.WAITING:
            yield Spin(
                worker.status_gate.wait_value(WorkerStatus.WAITING),
                self.config.completion_spin_chunk_cycles,
                tag="zc-wait-done",
            )
        result = worker.result
        worker.request = None
        worker.set_status(WorkerStatus.UNUSED)
        # No per-success emit: ``ocall.complete`` (published by the enclave)
        # already carries mode="switchless"; only exceptional paths
        # (fallback, pool realloc) are bus events.
        self.stats.record_switchless()
        request.mode = "switchless"
        return result

    def _find_unused(self) -> ZcWorker | None:
        """Scan for an idle worker (lowest index first, deterministic)."""
        for worker in self.workers:
            if worker.status is WorkerStatus.UNUSED and not worker.pause_requested:
                return worker
        return None

    def _regular(self, request: "OcallRequest") -> Program:
        enclave = self.enclave
        cost = enclave.cost
        yield Compute(cost.eexit_cycles, tag="eexit")
        result = yield from enclave.urts.execute(request)
        yield Compute(cost.eenter_cycles, tag="eenter")
        return result

    def _pool_realloc_handler(self, worker_index: int) -> Program:
        """Host side of the pool reallocation ocall (free + malloc)."""
        enclave = self.enclave
        yield Compute(enclave.cost.pool_realloc_host_cycles, tag="zc-pool-realloc")
        return None
