"""The ZC-SWITCHLESS scheduler (§IV-A).

The scheduler's objective is to minimise wasted CPU cycles, where the
waste over a window of ``T`` cycles with ``M`` active workers and ``F``
fallback calls is::

    U = F * T_es + M * T

It alternates two phases forever (Fig. 5):

- **configuration phase** — ``N/2 + 1`` micro-quanta of ``µ·Q`` each,
  running with ``i = 0 .. N/2`` active workers, recording the fallback
  count ``F_i`` of each probe and computing ``U_i = F_i·T_es + i·µ·Q``;
- **scheduling phase** — one quantum ``Q`` with the argmin worker count
  ``M'``.

The scheduler thread itself sleeps through the phases (it costs almost
nothing); workers are deactivated by setting the pause flag in their
buffer and reactivated with a wake signal, exactly as §IV-A describes.

Two worker-cost accountings are supported (see
:class:`repro.core.config.SchedulerPolicy`): the paper's verbatim
``i · µ · Q`` term, and the default ``IDLE_WASTE`` variant that prices a
probe's workers by their *measured* busy-wait cycles — which is what
reproduces the worker-count histograms the paper reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import SchedulerPolicy, ZcConfig
from repro.sim.instructions import Compute, Sleep
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.core.backend import ZcSwitchlessBackend


def wasted_cycles(fallbacks: int, t_es: float, workers: int, window_cycles: float) -> float:
    """The paper's wasted-cycle estimate ``U = F·T_es + M·T`` (§IV-A)."""
    if fallbacks < 0 or workers < 0 or window_cycles < 0:
        raise ValueError("arguments must be non-negative")
    return fallbacks * t_es + workers * window_cycles


class ZcScheduler:
    """Feedback-loop controller of the active worker count."""

    def __init__(self, backend: "ZcSwitchlessBackend", config: ZcConfig) -> None:
        self.backend = backend
        self.config = config
        self._stop = False
        #: (decision time, [U_0..U_k], chosen M') — exposed for analysis.
        self.decisions: list[tuple[float, list[float], int]] = []

    def stop(self) -> None:
        """Request shutdown of this component's threads."""
        self._stop = True

    def probe_counts(self) -> list[int]:
        """Worker counts probed each configuration phase: 0..N/2, capped
        by the pool size actually created."""
        spec = self.backend.kernel.spec
        top = min(spec.n_logical // 2, len(self.backend.workers))
        return list(range(top + 1))

    def run(self) -> Program:
        """Simulated program of the scheduler thread."""
        backend = self.backend
        kernel = backend.kernel
        config = self.config
        t_es = backend.enclave.cost.t_es
        quantum = config.quantum_cycles(kernel.spec)
        micro = config.micro_quantum_cycles(kernel.spec)

        def window(cycles: float) -> float:
            # Accounting windows stretch under an injected clock skew
            # (kernel.faults is None on healthy runs — no change).
            faults = kernel.faults
            return cycles if faults is None else faults.scaled_window(cycles)

        # Initial scheduling phase with the configured worker count (N/2).
        backend.set_active_workers(backend.initial_workers)
        yield Sleep(window(quantum))

        use_idle_waste = self.config.policy is SchedulerPolicy.IDLE_WASTE
        while not self._stop:
            # ---- configuration phase: probe every candidate count ----
            best_u = float("inf")
            best_m = 0
            utilities: list[float] = []
            for i in self.probe_counts():
                if self._stop:
                    return
                backend.set_active_workers(i)
                fallbacks_before = backend.stats.fallback_count
                spin_before = backend.worker_idle_spin_cycles() if use_idle_waste else 0.0
                yield Sleep(window(micro))
                f_i = backend.stats.fallback_count - fallbacks_before
                if use_idle_waste:
                    idle = backend.worker_idle_spin_cycles() - spin_before
                    u_i = f_i * t_es + idle
                else:
                    u_i = wasted_cycles(f_i, t_es, i, micro)
                utilities.append(u_i)
                bus = kernel.bus
                if bus is not None:
                    # source disambiguates schedulers when several enclaves
                    # share one kernel (repro.serve shards).
                    # tenant/request_id are always present on traced
                    # events (empty here: the scheduler acts per enclave,
                    # not per request) so JSONL span replay can treat the
                    # fields as total across every zc.*/serve.* stream.
                    bus.emit(
                        "zc.sched.probe",
                        workers=i,
                        fallbacks=f_i,
                        u_cycles=u_i,
                        source=backend.enclave.name,
                        tenant="",
                        request_id="",
                    )
                if u_i < best_u:
                    best_u = u_i
                    best_m = i
            # ---- decision + scheduling phase ----
            yield Compute(config.decision_cycles, tag="zc-sched-decide")
            backend.set_active_workers(best_m)
            backend.stats.scheduler_decisions += 1
            self.decisions.append((kernel.now, utilities, best_m))
            bus = kernel.bus
            if bus is not None:
                bus.emit(
                    "zc.sched.decision",
                    utilities=list(utilities),
                    chosen=best_m,
                    source=backend.enclave.name,
                    tenant="",
                    request_id="",
                )
            yield Sleep(window(quantum))
