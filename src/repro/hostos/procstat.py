"""``/proc/stat``-style CPU usage sampling of the simulated machine.

The paper computes CPU utilisation as
``(user + nice + system) / (user + nice + system + idle)`` sampled from
``/proc/stat`` (§V-A2).  On the simulated machine every busy cycle is
"user + system" and everything else is idle, so the same formula reduces
to busy / capacity over a sampling window.

Two interfaces are provided:

- :class:`ProcStat` — pull-style cumulative counters plus windowed deltas
  (what a monitoring script reading ``/proc/stat`` twice would compute);
- :class:`CpuUsageMonitor` — a daemon thread sampling at a fixed interval
  and retaining the full time series, used for the CPU-usage-over-time
  figures (Fig. 9, 10, 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.instructions import Sleep
from repro.sim.kernel import Kernel, Program, SimThread


@dataclass(frozen=True)
class CpuSample:
    """Cumulative CPU accounting at one instant."""

    t_cycles: float
    busy_cycles: float
    by_kind: dict[str, float]


@dataclass(frozen=True)
class UsageWindow:
    """CPU usage between two samples."""

    t_start_cycles: float
    t_end_cycles: float
    usage_pct: float
    by_kind_pct: dict[str, float]


class ProcStat:
    """Cumulative and windowed CPU usage of a simulated machine."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def sample(self) -> CpuSample:
        """Take a cumulative sample (equivalent to reading /proc/stat)."""
        snap = self.kernel.cpu_snapshot()
        return CpuSample(
            t_cycles=snap["now"],
            busy_cycles=snap["busy_total"],
            by_kind=dict(snap["by_kind"]),
        )

    def usage_between(self, first: CpuSample, second: CpuSample) -> UsageWindow:
        """Percentage CPU usage over the window between two samples."""
        dt = second.t_cycles - first.t_cycles
        if dt <= 0:
            raise ValueError("samples must be strictly ordered in time")
        capacity = dt * len(self.kernel.cpus)
        busy = second.busy_cycles - first.busy_cycles
        kinds = set(first.by_kind) | set(second.by_kind)
        by_kind = {
            kind: 100.0
            * (second.by_kind.get(kind, 0.0) - first.by_kind.get(kind, 0.0))
            / capacity
            for kind in kinds
        }
        return UsageWindow(
            t_start_cycles=first.t_cycles,
            t_end_cycles=second.t_cycles,
            usage_pct=100.0 * busy / capacity,
            by_kind_pct=by_kind,
        )


@dataclass
class CpuUsageMonitor:
    """Daemon thread sampling CPU usage at a fixed interval.

    Attributes:
        windows: One :class:`UsageWindow` per elapsed interval.
    """

    kernel: Kernel
    interval_cycles: float
    windows: list[UsageWindow] = field(default_factory=list)
    _stopped: bool = False
    thread: SimThread | None = None

    def start(self) -> "CpuUsageMonitor":
        """Spawn the sampling thread (idle: it only sleeps and samples)."""
        self.thread = self.kernel.spawn(
            self._run(), name="cpu-monitor", kind="monitor", daemon=True
        )
        return self

    def stop(self) -> None:
        """Stop sampling after the current interval."""
        self._stopped = True

    def _run(self) -> Program:
        stat = ProcStat(self.kernel)
        previous = stat.sample()
        while not self._stopped:
            yield Sleep(self.interval_cycles)
            current = stat.sample()
            self.windows.append(stat.usage_between(previous, current))
            previous = current

    def mean_usage_pct(self) -> float:
        """Average CPU usage over all recorded windows."""
        if not self.windows:
            return 0.0
        return sum(w.usage_pct for w in self.windows) / len(self.windows)

    def series(self) -> list[tuple[float, float]]:
        """(window end time in seconds, usage %) pairs."""
        return [
            (self.kernel.seconds(w.t_end_cycles), w.usage_pct) for w in self.windows
        ]
