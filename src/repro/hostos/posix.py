"""Ocall handlers: the untrusted POSIX surface the enclave apps call.

``PosixHost`` binds the in-memory file system to the syscall cost model and
exposes each operation as a generator coroutine suitable for registration
in :class:`repro.sgx.urts.UntrustedRuntime`.  These handlers execute either
on the caller thread (regular ocalls) or on switchless worker threads —
identically, as in the SDK.
"""

from __future__ import annotations

from repro.hostos.filesystem import SEEK_SET, HostFileSystem
from repro.hostos.syscalls import SyscallCostModel
from repro.sgx.urts import UntrustedRuntime
from repro.sim.instructions import Compute
from repro.sim.kernel import Program


class PosixHost:
    """Host-side implementation of the POSIX ocalls used by the apps.

    The ocall names mirror the paper's benchmarks: ``fopen``, ``fclose``,
    ``fseeko``, ``fread``, ``fwrite`` (stdio, used by kissdb and the crypto
    pipeline) and ``read``, ``write`` (bare syscalls, used by lmbench).
    """

    def __init__(
        self,
        fs: HostFileSystem,
        costs: SyscallCostModel | None = None,
        kernel: object | None = None,
    ) -> None:
        self.fs = fs
        self.costs = costs if costs is not None else SyscallCostModel()
        #: Optional simulation kernel; when it carries a telemetry bus at
        #: install time, handlers are wrapped to publish ``syscall`` events.
        self.kernel = kernel

    # ------------------------------------------------------------------
    # stdio surface
    # ------------------------------------------------------------------
    def fopen(self, path: str, mode: str) -> Program:
        """Open a stdio stream; returns the file descriptor."""
        yield Compute(self.costs.fopen_cycles, tag="host-fopen")
        return self.fs.open(path, mode)

    def fclose(self, fd: int) -> Program:
        """Flush and close a stdio stream; returns 0."""
        yield Compute(self.costs.fclose_cycles, tag="host-fclose")
        self.fs.close(fd)
        return 0

    def fseeko(self, fd: int, offset: int, whence: int = SEEK_SET) -> Program:
        """Reposition a stream; returns 0 on success (like fseeko)."""
        yield Compute(self.costs.fseek_cycles, tag="host-fseeko")
        self.fs.seek(fd, offset, whence)
        return 0

    def fread(self, fd: int, nbytes: int) -> Program:
        """Read up to ``nbytes``; returns the bytes actually read."""
        yield Compute(self.costs.fread_cycles(nbytes), tag="host-fread")
        return self.fs.read(fd, nbytes)

    def fwrite(self, fd: int, payload: bytes) -> Program:
        """Write ``payload``; returns the number of bytes written."""
        yield Compute(self.costs.fwrite_cycles(len(payload)), tag="host-fwrite")
        return self.fs.write(fd, payload)

    def ftell(self, fd: int) -> Program:
        """Return the stream position."""
        yield Compute(self.costs.fseek_cycles, tag="host-ftell")
        return self.fs.tell(fd)

    # ------------------------------------------------------------------
    # Bare syscall surface (lmbench, write-throughput benchmarks)
    # ------------------------------------------------------------------
    def sys_open(self, path: str, mode: str = "r") -> Program:
        """``open`` syscall; returns a file descriptor."""
        yield Compute(self.costs.syscall_cycles + self.costs.fopen_cycles / 2, tag="host-open")
        return self.fs.open(path, mode)

    def sys_close(self, fd: int) -> Program:
        """``close`` syscall."""
        yield Compute(self.costs.syscall_cycles, tag="host-close")
        self.fs.close(fd)
        return 0

    def sys_read(self, fd: int, nbytes: int) -> Program:
        """``read`` syscall; returns the bytes read."""
        yield Compute(self.costs.dev_read_cycles(nbytes), tag="host-read")
        return self.fs.read(fd, nbytes)

    def sys_write(self, fd: int, payload: bytes) -> Program:
        """``write`` syscall; returns the byte count written."""
        yield Compute(self.costs.dev_write_cycles(len(payload)), tag="host-write")
        return self.fs.write(fd, payload)

    def sys_stat(self, path: str) -> Program:
        """``stat`` syscall; returns a minimal stat dict."""
        yield Compute(self.costs.stat_cycles, tag="host-stat")
        return self.fs.stat(path)

    def sys_fstat(self, fd: int) -> Program:
        """``fstat`` syscall; returns a minimal stat dict."""
        yield Compute(self.costs.fstat_cycles, tag="host-fstat")
        return self.fs.fstat(fd)

    def sys_getppid(self) -> Program:
        """The lmbench "null" syscall: pure kernel entry/exit."""
        yield Compute(self.costs.syscall_cycles, tag="host-null")
        return 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def handlers(self) -> dict[str, object]:
        """Handler table keyed by ocall name."""
        return {
            "fopen": self.fopen,
            "fclose": self.fclose,
            "fseeko": self.fseeko,
            "fread": self.fread,
            "fwrite": self.fwrite,
            "ftell": self.ftell,
            "open": self.sys_open,
            "close": self.sys_close,
            "read": self.sys_read,
            "write": self.sys_write,
            "stat": self.sys_stat,
            "fstat": self.sys_fstat,
            "getppid": self.sys_getppid,
        }

    def install(self, urts: UntrustedRuntime) -> None:
        """Register every handler into ``urts``.

        The wrap-or-not decision is taken once here, so runs without
        telemetry pay nothing per call.
        """
        kernel = self.kernel
        if kernel is None or getattr(kernel, "bus", None) is None:
            urts.register_many(self.handlers())  # type: ignore[arg-type]
            return
        urts.register_many(
            {
                name: self._published(name, handler, kernel)
                for name, handler in self.handlers().items()
            }  # type: ignore[arg-type]
        )

    @staticmethod
    def _published(name: str, handler, kernel) -> object:
        """Wrap ``handler`` to emit one ``syscall`` event per invocation."""

        def wrapped(*args: object) -> Program:
            t0 = kernel.now
            result = yield from handler(*args)
            bus = kernel.bus  # may have been detached at capture finalize
            if bus is not None:
                bus.emit("syscall", name=name, host_cycles=kernel.now - t0)
            return result

        return wrapped
