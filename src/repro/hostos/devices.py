"""Character devices: ``/dev/null`` and ``/dev/zero``.

The lmbench dynamic benchmark (§V-C) iteratively reads one word from
``/dev/zero`` and writes one word to ``/dev/null``; these devices implement
the corresponding data semantics.
"""

from __future__ import annotations


class Device:
    """Base class for character devices mountable in the host filesystem."""

    def read(self, nbytes: int) -> bytes:
        """Read up to ``nbytes``; returns the bytes read."""
        raise NotImplementedError

    def write(self, data: bytes) -> int:
        """Write ``data``; returns the byte count written."""
        raise NotImplementedError


class DevNull(Device):
    """``/dev/null``: discards writes, reads return EOF."""

    def __init__(self) -> None:
        self.bytes_discarded = 0

    def read(self, nbytes: int) -> bytes:
        """Read up to ``nbytes``; returns the bytes read."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return b""

    def write(self, data: bytes) -> int:
        """Write ``data``; returns the byte count written."""
        self.bytes_discarded += len(data)
        return len(data)


class DevZero(Device):
    """``/dev/zero``: reads return zero bytes, writes are discarded."""

    def __init__(self) -> None:
        self.bytes_read = 0

    def read(self, nbytes: int) -> bytes:
        """Read up to ``nbytes``; returns the bytes read."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.bytes_read += nbytes
        return bytes(nbytes)

    def write(self, data: bytes) -> int:
        """Write ``data``; returns the byte count written."""
        return len(data)
