"""Untrusted host operating system substrate.

The evaluation applications perform their I/O through ocalls into this
package:

- :mod:`repro.hostos.filesystem` — an in-memory file system with POSIX
  open/read/write/seek semantics (real data, fully unit-testable).
- :mod:`repro.hostos.devices` — character devices ``/dev/null`` and
  ``/dev/zero`` used by the lmbench benchmarks.
- :mod:`repro.hostos.syscalls` — the cycle-cost model of host syscalls and
  stdio operations.
- :mod:`repro.hostos.posix` — ocall handlers (generator coroutines) that
  combine the cost model with the file system, registered into the
  untrusted runtime.
- :mod:`repro.hostos.procstat` — ``/proc/stat``-style CPU usage sampling
  of the simulated machine, used by the paper's CPU-utilisation figures.
"""

from repro.hostos.devices import DevNull, DevZero
from repro.hostos.filesystem import HostFileSystem
from repro.hostos.posix import PosixHost
from repro.hostos.procstat import CpuUsageMonitor, ProcStat
from repro.hostos.syscalls import SyscallCostModel

__all__ = [
    "CpuUsageMonitor",
    "DevNull",
    "DevZero",
    "HostFileSystem",
    "PosixHost",
    "ProcStat",
    "SyscallCostModel",
]
