"""In-memory POSIX-style file system.

This is a pure data structure (no simulated time): handlers in
:mod:`repro.hostos.posix` charge cycle costs separately.  Semantics follow
POSIX closely enough for the kissdb and crypto pipelines to run unmodified:

- ``open`` modes ``r``, ``r+``, ``w``, ``w+``, ``a``, ``a+`` (binary
  implied — everything is bytes);
- sparse writes: seeking past EOF and writing zero-fills the gap;
- per-handle file positions; append handles always write at EOF;
- device nodes (``/dev/null``, ``/dev/zero``) dispatch to
  :class:`repro.hostos.devices.Device` objects and ignore seeks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.hostos.devices import Device

SEEK_SET = os.SEEK_SET
SEEK_CUR = os.SEEK_CUR
SEEK_END = os.SEEK_END

_MODES = {"r", "r+", "w", "w+", "a", "a+"}


class FileSystemError(OSError):
    """Base error for host filesystem failures."""


class BadFileDescriptor(FileSystemError):
    """Operation on a closed or unknown file descriptor."""


@dataclass
class _OpenFile:
    """State of one open file descriptor."""

    path: str
    pos: int = 0
    readable: bool = True
    writable: bool = True
    append: bool = False
    device: Device | None = None


@dataclass
class _RegularFile:
    data: bytearray = field(default_factory=bytearray)


class HostFileSystem:
    """An in-memory file system with POSIX open/read/write/seek semantics."""

    def __init__(self) -> None:
        self._files: dict[str, _RegularFile] = {}
        self._devices: dict[str, Device] = {}
        self._handles: dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 reserved, as on a real host
        self.op_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Namespace management
    # ------------------------------------------------------------------
    def mount_device(self, path: str, device: Device) -> None:
        """Expose ``device`` at ``path`` (e.g. ``/dev/null``)."""
        self._devices[path] = device

    def create(self, path: str, data: bytes = b"") -> None:
        """Create (or truncate) a regular file with ``data``."""
        self._files[path] = _RegularFile(bytearray(data))

    def exists(self, path: str) -> bool:
        """Whether ``path`` names a file or device."""
        return path in self._files or path in self._devices

    def size(self, path: str) -> int:
        """Size in bytes of a regular file."""
        try:
            return len(self._files[path].data)
        except KeyError:
            raise FileNotFoundError(path) from None

    def contents(self, path: str) -> bytes:
        """Full contents of a regular file (testing/verification hook)."""
        try:
            return bytes(self._files[path].data)
        except KeyError:
            raise FileNotFoundError(path) from None

    def unlink(self, path: str) -> None:
        """Delete a regular file."""
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def stat(self, path: str) -> dict[str, int]:
        """Minimal stat: size and a device flag (st_mode stand-in)."""
        if path in self._devices:
            return {"st_size": 0, "is_device": 1}
        try:
            return {"st_size": len(self._files[path].data), "is_device": 0}
        except KeyError:
            raise FileNotFoundError(path) from None

    def fstat(self, fd: int) -> dict[str, int]:
        """stat by descriptor."""
        handle = self._handle(fd)
        if handle.device is not None:
            return {"st_size": 0, "is_device": 1}
        return {"st_size": len(self._files[handle.path].data), "is_device": 0}

    # ------------------------------------------------------------------
    # Handle lifecycle
    # ------------------------------------------------------------------
    def open(self, path: str, mode: str = "r") -> int:
        """Open ``path``; returns a file descriptor."""
        if mode not in _MODES:
            raise ValueError(f"unsupported mode {mode!r}")
        self._count("open")
        device = self._devices.get(path)
        if device is not None:
            handle = _OpenFile(path=path, device=device)
        else:
            exists = path in self._files
            if mode in ("r", "r+") and not exists:
                raise FileNotFoundError(path)
            if mode in ("w", "w+") or (mode in ("a", "a+") and not exists):
                if mode in ("w", "w+"):
                    self._files[path] = _RegularFile()
                else:
                    self._files.setdefault(path, _RegularFile())
            handle = _OpenFile(
                path=path,
                readable=mode not in ("w", "a"),
                writable=mode != "r",
                append=mode in ("a", "a+"),
            )
            if mode in ("a", "a+"):
                handle.pos = len(self._files[path].data)
        fd = self._next_fd
        self._next_fd += 1
        self._handles[fd] = handle
        return fd

    def close(self, fd: int) -> None:
        """Close the descriptor."""
        self._count("close")
        try:
            del self._handles[fd]
        except KeyError:
            raise BadFileDescriptor(fd) from None

    def is_open(self, fd: int) -> bool:
        """Whether the handle/database is currently open."""
        return fd in self._handles

    def open_fd_count(self) -> int:
        """Number of currently open descriptors."""
        return len(self._handles)

    def _handle(self, fd: int) -> _OpenFile:
        try:
            return self._handles[fd]
        except KeyError:
            raise BadFileDescriptor(fd) from None

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, fd: int, nbytes: int) -> bytes:
        """Read up to ``nbytes`` from the handle's position."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self._count("read")
        handle = self._handle(fd)
        if not handle.readable:
            raise FileSystemError(f"fd {fd} not open for reading")
        if handle.device is not None:
            return handle.device.read(nbytes)
        data = self._files[handle.path].data
        chunk = bytes(data[handle.pos : handle.pos + nbytes])
        handle.pos += len(chunk)
        return chunk

    def write(self, fd: int, payload: bytes) -> int:
        """Write ``payload`` at the handle's position (EOF if append)."""
        self._count("write")
        handle = self._handle(fd)
        if not handle.writable:
            raise FileSystemError(f"fd {fd} not open for writing")
        if handle.device is not None:
            return handle.device.write(payload)
        data = self._files[handle.path].data
        if handle.append:
            handle.pos = len(data)
        end = handle.pos + len(payload)
        if handle.pos > len(data):
            data.extend(bytes(handle.pos - len(data)))  # sparse zero-fill
        data[handle.pos : end] = payload
        handle.pos = end
        return len(payload)

    def seek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        """Reposition the handle; returns the new offset."""
        self._count("seek")
        handle = self._handle(fd)
        if handle.device is not None:
            return 0  # seeks on character devices are no-ops
        size = len(self._files[handle.path].data)
        if whence == SEEK_SET:
            new_pos = offset
        elif whence == SEEK_CUR:
            new_pos = handle.pos + offset
        elif whence == SEEK_END:
            new_pos = size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if new_pos < 0:
            raise FileSystemError("negative seek position")
        handle.pos = new_pos
        return new_pos

    def tell(self, fd: int) -> int:
        """Current position of the handle."""
        return self._handle(fd).pos

    def _count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
