"""Cycle-cost model of host-side syscalls and stdio operations.

Costs are host-side only: they price the work a host (or an untrusted
worker thread) does once an ocall request has crossed the enclave
boundary.  The calibration anchors:

- a bare syscall costs ~250 cycles on the paper's CPU (§I);
- kissdb's stdio calls (8-byte fread/fwrite, fseeko) are *short* relative
  to the ~13,500-cycle transition — this is why they benefit from
  switchless execution (Take-away 2);
- the crypto pipeline's chunked fread/fwrite are ~6x longer than
  kissdb's calls (§V-B), which the per-byte stdio cost reproduces for
  4 kB chunks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SyscallCostModel:
    """Host-side cycle costs for the POSIX surface the apps use.

    Attributes:
        syscall_cycles: Kernel entry/exit for one bare syscall.
        fopen_cycles / fclose_cycles: stdio stream open/close (path lookup,
            buffer setup / flush + release).
        fseek_cycles: stdio seek — usually only updates the stream's
            buffered position, hence cheap; this is why kissdb's dominant
            fseeko ocall is the shortest of its calls (and the best
            single-ocall switchless pick, per the paper's Fig. 8
            discussion).
        stdio_base_cycles: Base cost of one fread/fwrite.  Because the
            kissdb access pattern interleaves seeks with reads and
            writes, stdio cannot batch in its stream buffer: each call
            pays a real syscall plus page-cache work (~3 µs) — this is
            what makes fread/fwrite markedly *longer* than fseeko, as the
            paper observes.
        stdio_per_byte_cycles: Per-byte cost of stdio data transfer
            (kernel copy + page-cache management).  Calibrated so that
            the crypto pipeline's 4 kB chunked calls come out ~6x longer
            than kissdb's 8-byte calls (§V-B).
        dev_rw_base_cycles: read/write syscall on a character device.
        dev_per_byte_cycles: Per-byte device transfer cost.
    """

    syscall_cycles: float = 250.0
    fopen_cycles: float = 7_600.0
    fclose_cycles: float = 3_800.0
    fseek_cycles: float = 500.0
    stdio_base_cycles: float = 12_000.0
    stdio_per_byte_cycles: float = 12.0
    dev_rw_base_cycles: float = 500.0
    dev_per_byte_cycles: float = 0.05

    def fread_cycles(self, nbytes: int) -> float:
        """Host cost of ``fread(nbytes)`` on a buffered stream."""
        return self.stdio_base_cycles + nbytes * self.stdio_per_byte_cycles

    def fwrite_cycles(self, nbytes: int) -> float:
        """Host cost of ``fwrite(nbytes)`` on a buffered stream."""
        return self.stdio_base_cycles + nbytes * self.stdio_per_byte_cycles

    def dev_read_cycles(self, nbytes: int) -> float:
        """Host cost of a ``read`` syscall on a character device."""
        return self.syscall_cycles + self.dev_rw_base_cycles + nbytes * self.dev_per_byte_cycles

    def dev_write_cycles(self, nbytes: int) -> float:
        """Host cost of a ``write`` syscall on a character device."""
        return self.syscall_cycles + self.dev_rw_base_cycles + nbytes * self.dev_per_byte_cycles

    @property
    def stat_cycles(self) -> float:
        """``stat``: path resolution + inode read (~3x a bare syscall)."""
        return self.syscall_cycles * 3

    @property
    def fstat_cycles(self) -> float:
        """``fstat``: no path walk, just the inode (~1.5x a bare syscall)."""
        return self.syscall_cycles * 1.5
