"""The AES block cipher (FIPS-197), pure Python.

A straightforward byte-oriented implementation: S-box substitution, row
shifts, GF(2^8) column mixing and the Rijndael key schedule, supporting
128-, 192- and 256-bit keys.  It is written for clarity and testability,
not speed — the simulated pipeline prices cipher work with a cycle model
and only runs the real cipher where correctness matters.
"""

from __future__ import annotations

BLOCK_SIZE = 16

_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from first principles."""
    # Multiplicative inverses in GF(2^8) via exp/log tables (generator 3).
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    inv = bytearray(256)
    for value in range(256):
        g_inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        result = 0x63
        for shift in (0, 1, 2, 3, 4):
            rotated = ((g_inv << shift) | (g_inv >> (8 - shift))) & 0xFF
            result ^= rotated
        sbox[value] = result
        inv[result] = value
    return bytes(sbox), bytes(inv)


SBOX, INV_SBOX = _build_sbox()


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES:
    """AES block cipher with a fixed key.

    Args:
        key: 16, 24 or 32 bytes (AES-128/192/256).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in _ROUNDS_BY_KEYLEN:
            raise ValueError(f"key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = _ROUNDS_BY_KEYLEN[len(key)]
        self._round_keys = self._expand_key(self.key)

    # ------------------------------------------------------------------
    # Key schedule
    # ------------------------------------------------------------------
    def _expand_key(self, key: bytes) -> list[list[int]]:
        """Rijndael key schedule: one 16-byte round key per round + 1."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        rcon = 1
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            word = list(words[i - 1])
            if i % nk == 0:
                word = word[1:] + word[:1]  # RotWord
                word = [SBOX[b] for b in word]  # SubWord
                word[0] ^= rcon
                rcon = _xtime(rcon)
            elif nk > 6 and i % nk == 4:
                word = [SBOX[b] for b in word]
            words.append([w ^ p for w, p in zip(word, words[i - nk])])
        return [
            [b for word in words[4 * r : 4 * r + 4] for b in word]
            for r in range(self.rounds + 1)
        ]

    # ------------------------------------------------------------------
    # Round operations (state is a flat 16-byte column-major list)
    # ------------------------------------------------------------------
    @staticmethod
    def _shift_rows(state: list[int]) -> list[int]:
        return [
            state[0], state[5], state[10], state[15],
            state[4], state[9], state[14], state[3],
            state[8], state[13], state[2], state[7],
            state[12], state[1], state[6], state[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> list[int]:
        return [
            state[0], state[13], state[10], state[7],
            state[4], state[1], state[14], state[11],
            state[8], state[5], state[2], state[15],
            state[12], state[9], state[6], state[3],
        ]

    @staticmethod
    def _mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            out[4 * c + 0] = _xtime(a0) ^ (_xtime(a1) ^ a1) ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ _xtime(a1) ^ (_xtime(a2) ^ a2) ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ _xtime(a2) ^ (_xtime(a3) ^ a3)
            out[4 * c + 3] = (_xtime(a0) ^ a0) ^ a1 ^ a2 ^ _xtime(a3)
        return out

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            out[4 * c + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
            out[4 * c + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
            out[4 * c + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
            out[4 * c + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)
        return out

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be 16 bytes")
        state = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for rnd in range(1, self.rounds):
            state = [SBOX[b] for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = [b ^ k for b, k in zip(state, self._round_keys[rnd])]
        state = [SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = [b ^ k for b, k in zip(state, self._round_keys[self.rounds])]
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be 16 bytes")
        state = [b ^ k for b, k in zip(block, self._round_keys[self.rounds])]
        state = self._inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        for rnd in range(self.rounds - 1, 0, -1):
            state = [b ^ k for b, k in zip(state, self._round_keys[rnd])]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [INV_SBOX[b] for b in state]
        state = [b ^ k for b, k in zip(state, self._round_keys[0])]
        return bytes(state)
