"""Pure-Python cryptography for the OpenSSL evaluation substrate.

The paper's second static benchmark encrypts/decrypts files with
AES-256-CBC through an SGX port of OpenSSL (§V-B).  This package provides
the equivalent primitives, implemented from scratch and verified against
the FIPS-197 and NIST SP 800-38A test vectors:

- :mod:`repro.crypto.aes` — the AES block cipher (128/192/256-bit keys);
- :mod:`repro.crypto.cbc` — CBC mode with PKCS#7 padding;
- :mod:`repro.crypto.engine` — cipher engines for the simulated pipeline:
  the real cipher for correctness-focused runs, and a fast length- and
  padding-faithful stand-in for large benchmark runs, both priced by the
  same cycle-cost model.
"""

from repro.crypto.aes import AES
from repro.crypto.cbc import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from repro.crypto.engine import (
    CryptoCostModel,
    FastXorEngine,
    RealAesCbcEngine,
)

__all__ = [
    "AES",
    "CryptoCostModel",
    "FastXorEngine",
    "RealAesCbcEngine",
    "cbc_decrypt",
    "cbc_encrypt",
    "pkcs7_pad",
    "pkcs7_unpad",
]
