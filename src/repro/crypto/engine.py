"""Cipher engines for the simulated crypto pipeline.

The pipeline charges in-enclave cipher work through
:class:`CryptoCostModel` (cycles a hardware-accelerated AES-256-CBC costs
on the paper's CPU).  Two data transforms implement the actual bytes:

- :class:`RealAesCbcEngine` — the genuine AES-256-CBC from
  :mod:`repro.crypto.cbc`.  Used in examples and correctness tests.
- :class:`FastXorEngine` — a length- and padding-faithful stand-in
  (keystream XOR + PKCS#7) that is invertible and fast enough to stream
  megabytes through the benchmark harness.  The *simulated* cycle cost is
  identical to the real engine's; only the host-Python cost differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import BLOCK_SIZE
from repro.crypto.cbc import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad


@dataclass(frozen=True)
class CryptoCostModel:
    """In-enclave cycle cost of AES-256-CBC on the paper's CPU.

    With AES-NI inside an enclave, bulk AES-CBC costs a few cycles per
    byte (CBC encryption is serial, so it is slower than GCM); the setup
    cost covers the EVP context and key schedule per chunk.
    """

    cycles_per_byte: float = 2.6
    setup_cycles: float = 900.0

    def encrypt_cycles(self, nbytes: int) -> float:
        """Enclave cycles to encrypt an ``nbytes`` chunk."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.setup_cycles + nbytes * self.cycles_per_byte

    def decrypt_cycles(self, nbytes: int) -> float:
        """Enclave cycles to decrypt an ``nbytes`` chunk."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.setup_cycles + nbytes * self.cycles_per_byte


class RealAesCbcEngine:
    """The genuine AES-256-CBC transform."""

    def __init__(self, key: bytes, iv: bytes) -> None:
        if len(key) != 32:
            raise ValueError("AES-256 key must be 32 bytes")
        self.key = key
        self.iv = iv

    def encrypt(self, plaintext: bytes) -> bytes:
        """AES-256-CBC encrypt with PKCS#7 padding."""
        return cbc_encrypt(self.key, self.iv, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """AES-256-CBC decrypt, stripping PKCS#7 padding."""
        return cbc_decrypt(self.key, self.iv, ciphertext)


class FastXorEngine:
    """Length/padding-faithful stand-in cipher for large benchmark runs.

    Applies PKCS#7 padding and XORs with a key-derived 256-byte repeating
    keystream.  Ciphertext length matches the real engine exactly
    (``len(pkcs7_pad(plaintext))``), decryption round-trips, and malformed
    "ciphertext" fails unpadding — enough fidelity for the I/O pipeline,
    at hundreds of MB/s of host-Python throughput.
    """

    def __init__(self, key: bytes, iv: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        # Fold the key material into a 64-bit seed, then expand it with an
        # LCG; deterministic per (key, iv) and sensitive to every byte.
        raw = key + iv
        state = len(raw)
        for offset in range(0, len(raw), 8):
            state ^= int.from_bytes(raw[offset : offset + 8], "big")
        mask = 2**64 - 1
        stream = bytearray()
        while len(stream) < 256:
            state = (state * 6364136223846793005 + 1442695040888963407) & mask
            stream.extend(state.to_bytes(8, "big"))
        self._pad = bytes(stream[:256])

    def _xor(self, data: bytes) -> bytes:
        pad = (self._pad * (len(data) // 256 + 1))[: len(data)]
        return bytes(a ^ b for a, b in zip(data, pad)) if len(data) < 4096 else (
            int.from_bytes(data, "big") ^ int.from_bytes(pad, "big")
        ).to_bytes(len(data), "big")

    def encrypt(self, plaintext: bytes) -> bytes:
        """Pad then XOR-transform (length-faithful stand-in)."""
        return self._xor(pkcs7_pad(plaintext, BLOCK_SIZE))

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Inverse XOR-transform then unpad."""
        return pkcs7_unpad(self._xor(ciphertext), BLOCK_SIZE)
