"""CBC mode with PKCS#7 padding (NIST SP 800-38A / RFC 5652)."""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE


class PaddingError(ValueError):
    """Raised when PKCS#7 unpadding encounters malformed padding."""


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always adds 1..block_size bytes)."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("data length is not a multiple of the block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise PaddingError(f"invalid padding length {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes, pad: bool = True) -> bytes:
    """AES-CBC encrypt ``plaintext``; pads with PKCS#7 unless ``pad=False``
    (in which case the input must be block-aligned, as in the NIST
    vectors)."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("iv must be 16 bytes")
    cipher = AES(key)
    data = pkcs7_pad(plaintext) if pad else plaintext
    if len(data) % BLOCK_SIZE:
        raise ValueError("unpadded input must be a multiple of 16 bytes")
    out = bytearray()
    previous = iv
    for offset in range(0, len(data), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(data[offset : offset + BLOCK_SIZE], previous))
        encrypted = cipher.encrypt_block(block)
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes, pad: bool = True) -> bytes:
    """AES-CBC decrypt ``ciphertext``; strips PKCS#7 unless ``pad=False``."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("iv must be 16 bytes")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext must be a non-empty multiple of 16 bytes")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    data = bytes(out)
    return pkcs7_unpad(data) if pad else data
