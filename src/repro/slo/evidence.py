"""One-command evidence packs: a self-verifying bundle of run proof.

An evidence pack is a directory (optionally tarred) holding everything a
reviewer needs to audit one serving run — the run configuration, the
stamped bench artifact, span samples, SLO verdicts, the invariant-audit
report, any baseline-gate output — plus a ``manifest.json`` listing the
SHA-256 of every file.  The manifest is itself schema-stamped
(``schema_version`` / ``repro_version`` via the shared stamping helper),
so :func:`verify_evidence_pack` refuses packs from an incompatible
schema *before* it starts re-hashing, and a tampered file (or a file
added/removed after packing) fails verification with a named error.

``repro evidence build`` produces a pack; ``repro evidence verify``
re-checks one (directory or tarball) long after the run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tarfile
import tempfile
from typing import Any, Mapping

from repro.telemetry.schema import SchemaMismatch, check_stamp, stamp

#: The manifest's own filename (never listed inside itself).
MANIFEST_NAME = "manifest.json"


def file_sha256(path: str) -> str:
    """Hex SHA-256 of one file, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_entry(path: str, content: Any) -> None:
    if isinstance(content, bytes):
        with open(path, "wb") as handle:
            handle.write(content)
    elif isinstance(content, str):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
    else:  # JSON-serialisable document
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(content, handle, indent=2, sort_keys=True)
            handle.write("\n")


def build_evidence_pack(
    out_dir: str, contents: Mapping[str, Any]
) -> dict[str, Any]:
    """Write ``contents`` into ``out_dir`` and manifest every byte.

    ``contents`` maps pack-relative filenames to file bodies: ``bytes``
    are written raw, ``str`` as UTF-8 text, anything else as indented
    JSON.  Returns the manifest document (already written as
    ``manifest.json``).
    """
    if not contents:
        raise ValueError("an evidence pack needs at least one file")
    os.makedirs(out_dir, exist_ok=True)
    files: dict[str, dict[str, Any]] = {}
    for name, content in sorted(contents.items()):
        if name == MANIFEST_NAME:
            raise ValueError(f"{MANIFEST_NAME} is reserved for the manifest")
        if os.path.isabs(name) or ".." in name.split("/"):
            raise ValueError(f"pack filename {name!r} escapes the pack")
        path = os.path.join(out_dir, name)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        _write_entry(path, content)
        files[name] = {"sha256": file_sha256(path), "bytes": os.path.getsize(path)}
    manifest = {"meta": stamp("evidence-pack"), "files": files}
    _write_entry(os.path.join(out_dir, MANIFEST_NAME), manifest)
    return manifest


def pack_tarball(pack_dir: str, tar_path: str) -> str:
    """Tar (gzipped) an evidence-pack directory; returns ``tar_path``."""
    with tarfile.open(tar_path, "w:gz") as archive:
        for root, _, names in sorted(os.walk(pack_dir)):
            for name in sorted(names):
                full = os.path.join(root, name)
                archive.add(full, arcname=os.path.relpath(full, pack_dir))
    return tar_path


def _verify_dir(pack_dir: str) -> list[str]:
    manifest_path = os.path.join(pack_dir, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        return [f"{pack_dir}: no {MANIFEST_NAME} — not an evidence pack"]
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    # Schema refusal is a raise, not an error entry: a pack from another
    # schema version must not be half-verified.
    check_stamp(manifest.get("meta", {}), "evidence-pack", source=manifest_path)
    errors: list[str] = []
    files = manifest.get("files", {})
    for name, expected in sorted(files.items()):
        path = os.path.join(pack_dir, name)
        if not os.path.exists(path):
            errors.append(f"{name}: listed in the manifest but missing")
            continue
        digest = file_sha256(path)
        if digest != expected.get("sha256"):
            errors.append(
                f"{name}: SHA-256 mismatch — manifest says "
                f"{expected.get('sha256', '?')[:12]}…, file hashes {digest[:12]}…"
            )
        elif os.path.getsize(path) != expected.get("bytes"):
            errors.append(f"{name}: size changed since packing")
    on_disk = {
        os.path.relpath(os.path.join(root, name), pack_dir)
        for root, _, names in os.walk(pack_dir)
        for name in names
    }
    for name in sorted(on_disk - set(files) - {MANIFEST_NAME}):
        errors.append(f"{name}: present in the pack but not in the manifest")
    return errors


def verify_evidence_pack(path: str) -> list[str]:
    """Re-check a pack (directory or ``.tar.gz``); returns error strings.

    Empty list = every manifested file present and hash-identical, and
    nothing unmanifested smuggled in.  Raises
    :class:`~repro.telemetry.schema.SchemaMismatch` when the manifest
    stamp is missing or from an incompatible schema version —
    verification refuses to even start on such packs.
    """
    if os.path.isdir(path):
        return _verify_dir(path)
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with tempfile.TemporaryDirectory(prefix="evidence-verify-") as scratch:
        with tarfile.open(path, "r:*") as archive:
            for member in archive.getmembers():
                target = os.path.realpath(os.path.join(scratch, member.name))
                if not target.startswith(os.path.realpath(scratch) + os.sep):
                    raise SchemaMismatch(
                        f"{path}: archive member {member.name!r} escapes the pack"
                    )
            archive.extractall(scratch)
        return _verify_dir(scratch)
