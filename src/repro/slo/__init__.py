"""Spans, SLO contracts and evidence packs for the serving layer.

Three pieces, one observability story (see the "Spans, SLOs, and
evidence packs" section of ``docs/observability.md``):

- :mod:`repro.slo.trace` — per-request span trees built from the
  router's trace boundaries (live, from the bus, or from an exported
  JSONL event log), with an exact root-equals-children conservation
  property and a tenant-lane Chrome-trace exporter;
- :mod:`repro.slo.contract` — per-tenant SLO contracts (tail-latency
  ceilings, throughput floors, shed-rate and recovery-deadline bounds)
  evaluated into hard (gating) vs diagnostic verdicts over a serve-bench
  artifact;
- :mod:`repro.slo.evidence` — one-command evidence packs: a manifest of
  SHA-256 hashes over the run's artifacts that
  ``repro evidence verify`` re-checks byte-for-byte.
"""

from repro.slo.contract import (
    SEVERITY_CHOICES,
    SloContract,
    Verdict,
    contracts_to_document,
    evaluate_contracts,
    hard_breaches,
    load_contracts,
    render_verdicts,
    save_contracts,
    verdicts_summary,
)
from repro.slo.evidence import (
    build_evidence_pack,
    file_sha256,
    pack_tarball,
    verify_evidence_pack,
)
from repro.slo.trace import (
    Span,
    SpanTree,
    build_span_tree,
    build_span_trees,
    read_spans_jsonl,
    reconcile_with_latency,
    span_conservation_errors,
    spans_from_events,
    spans_from_jsonl,
    tenant_lane_trace_events,
    write_span_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "SEVERITY_CHOICES",
    "SloContract",
    "Span",
    "SpanTree",
    "Verdict",
    "build_evidence_pack",
    "build_span_tree",
    "build_span_trees",
    "contracts_to_document",
    "evaluate_contracts",
    "file_sha256",
    "hard_breaches",
    "load_contracts",
    "pack_tarball",
    "read_spans_jsonl",
    "reconcile_with_latency",
    "render_verdicts",
    "save_contracts",
    "span_conservation_errors",
    "spans_from_events",
    "spans_from_jsonl",
    "tenant_lane_trace_events",
    "verdicts_summary",
    "verify_evidence_pack",
    "write_span_chrome_trace",
    "write_spans_jsonl",
]
