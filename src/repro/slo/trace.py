"""Per-request span trees over the serving layer's trace boundaries.

The router stamps every request with five boundary instants off the
simulated clock — submit, enqueue, dequeue, result, complete — and
publishes them as one flat ``serve.request.span`` record per request
(kept in ``Router.spans`` and emitted on the bus).  This module turns
those records into span *trees*:

    request (t_submit .. t_complete)
    ├── admission   router placement: submit .. enqueue
    ├── queue       waiting on the shard: enqueue .. dequeue
    ├── execute     ecall into the enclave: dequeue .. result
    └── reply       completion wake-up: result .. complete

The children partition the root exactly — consecutive phases share their
boundary instant — so ``root.duration == sum(child durations)`` holds to
the bit, not to a tolerance.  Requests that never reach a boundary
(shed at admission, evicted from a queue) simply have fewer children:
the phase that *was* in progress absorbs the time up to completion.

Three sources produce the same records:

- live: ``router.spans`` after a run (works without any telemetry bus);
- bus: :func:`spans_from_events` over captured telemetry events;
- offline: :func:`spans_from_jsonl` over an exported ``*.events.jsonl``.

Exports: :func:`write_spans_jsonl` (stamped, one record per line) and
:func:`write_span_chrome_trace` (Perfetto-loadable; one *process lane
per tenant*, requests as async begin/end pairs keyed by request id).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.schema import SchemaMismatch, check_stamp, stamp

#: Boundary fields in request order, each starting the named child phase.
CHECKPOINTS: tuple[tuple[str, str], ...] = (
    ("t_submit", "admission"),
    ("t_enqueue", "queue"),
    ("t_dequeue", "execute"),
    ("t_result", "reply"),
)

#: Fields every span record carries (the ``serve.request.span`` schema).
SPAN_FIELDS: tuple[str, ...] = (
    "request_id",
    "tenant",
    "op",
    "status",
    "shard",
    "t_submit",
    "t_enqueue",
    "t_dequeue",
    "t_result",
    "t_complete",
)


@dataclass(frozen=True)
class Span:
    """One node of a request's span tree (times in simulated cycles)."""

    name: str
    t_start: float
    t_end: float
    children: tuple["Span", ...] = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def child_sum(self) -> float:
        return sum(child.duration for child in self.children)


@dataclass(frozen=True)
class SpanTree:
    """One request's full span tree plus its identity fields."""

    request_id: int
    tenant: str
    op: str
    status: str
    shard: int | None
    root: Span

    def errors(self) -> list[str]:
        """Internal-consistency problems (empty for a well-formed tree).

        Checks boundary monotonicity, that the children tile the root
        gaplessly, and the exact ``root == Σ children`` identity the
        construction promises.
        """
        problems: list[str] = []
        label = f"request {self.request_id} ({self.tenant or 'anon'})"
        if self.root.duration < 0:
            problems.append(f"{label}: negative root duration {self.root.duration}")
        cursor = self.root.t_start
        for child in self.root.children:
            if child.t_start != cursor:
                problems.append(
                    f"{label}: span '{child.name}' starts at {child.t_start}, "
                    f"leaving a gap from {cursor}"
                )
            if child.t_end < child.t_start:
                problems.append(
                    f"{label}: span '{child.name}' ends before it starts"
                )
            cursor = child.t_end
        if self.root.children and cursor != self.root.t_end:
            problems.append(
                f"{label}: children end at {cursor}, root at {self.root.t_end}"
            )
        if self.root.duration != self.root.child_sum:
            problems.append(
                f"{label}: root duration {self.root.duration} != child sum "
                f"{self.root.child_sum}"
            )
        return problems


def build_span_tree(record: Mapping[str, Any]) -> SpanTree:
    """One flat span record → its request span tree.

    Missing intermediate boundaries (a shed request never dequeued, an
    evicted request never executed) merge into the phase that was under
    way: the children always partition ``[t_submit, t_complete]``.
    """
    t_complete = float(record["t_complete"])
    boundaries = [
        (name, float(record[field]))
        for field, name in CHECKPOINTS
        if record.get(field) is not None
    ]
    children = []
    for position, (name, t_start) in enumerate(boundaries):
        t_end = (
            boundaries[position + 1][1]
            if position + 1 < len(boundaries)
            else t_complete
        )
        children.append(Span(name, t_start, t_end))
    t_submit = float(record["t_submit"])
    return SpanTree(
        request_id=int(record["request_id"]),
        tenant=str(record.get("tenant", "")),
        op=str(record.get("op", "")),
        status=str(record.get("status", "")),
        shard=record.get("shard"),
        root=Span("request", t_submit, t_complete, tuple(children)),
    )


def build_span_trees(records: Iterable[Mapping[str, Any]]) -> list[SpanTree]:
    """Every record through :func:`build_span_tree`, in input order."""
    return [build_span_tree(record) for record in records]


def span_conservation_errors(records: Iterable[Mapping[str, Any]]) -> list[str]:
    """All per-tree consistency errors plus duplicate-request detection."""
    problems: list[str] = []
    seen: set[int] = set()
    for tree in build_span_trees(records):
        if tree.request_id in seen:
            problems.append(
                f"request {tree.request_id} produced more than one span record"
            )
        seen.add(tree.request_id)
        problems.extend(tree.errors())
    return problems


def reconcile_with_latency(
    trees: Sequence[SpanTree], total_latency_cycles: float, rel_tol: float = 1e-9
) -> str | None:
    """Check span roots against the router's latency ledger.

    The router records one latency sample per ``ok`` request off the same
    clock that stamps the span boundaries, so the sum of ok root
    durations must equal the recorder's total — the spans attribute
    exactly the cycles the latency ledger charges, no more, no fewer.
    Returns an error string, or None when the books balance.
    """
    span_total = sum(t.root.duration for t in trees if t.status == "ok")
    error = abs(span_total - total_latency_cycles)
    if error > rel_tol * max(abs(total_latency_cycles), 1.0):
        return (
            f"span trees attribute {span_total:.0f} cycles to ok requests but "
            f"the latency ledger recorded {total_latency_cycles:.0f} "
            f"({error:.1f} cycles unreconciled)"
        )
    return None


# ----------------------------------------------------------------------
# Record sources
# ----------------------------------------------------------------------
def spans_from_events(events: Iterable[TelemetryEvent]) -> list[dict[str, Any]]:
    """Span records carried by a telemetry event stream, in stream order."""
    return [
        {field: event.fields.get(field) for field in SPAN_FIELDS}
        for event in events
        if event.name == "serve.request.span"
    ]


def spans_from_jsonl(path: str) -> list[dict[str, Any]]:
    """Span records from an exported ``*.events.jsonl`` (all cells).

    Refuses unstamped or version-mismatched files, like every other
    replay consumer.
    """
    from repro.regress.replay import read_events_jsonl

    records: list[dict[str, Any]] = []
    for stream in read_events_jsonl(path).values():
        records.extend(spans_from_events(stream.events))
    return records


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def write_spans_jsonl(path: str, records: Sequence[Mapping[str, Any]]) -> int:
    """Write span records one per line under a ``spans-jsonl`` stamp."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(stamp("spans-jsonl")) + "\n")
        for record in records:
            handle.write(json.dumps(dict(record)) + "\n")
    return len(records)


def read_spans_jsonl(path: str) -> list[dict[str, Any]]:
    """Read a :func:`write_spans_jsonl` artifact back (stamp-checked)."""
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
        try:
            header = json.loads(first) if first.strip() else {}
        except json.JSONDecodeError as exc:
            raise SchemaMismatch(f"{path}: line 1 is not JSON") from exc
        check_stamp(header, "spans-jsonl", source=path)
        for line in handle:
            if line.strip():
                records.append(json.loads(line))
    return records


def tenant_lane_trace_events(
    records: Sequence[Mapping[str, Any]], freq_hz: float
) -> list[dict[str, Any]]:
    """Chrome-trace events with one process lane per tenant.

    Each request renders as an async begin/end pair (``ph: b``/``e``)
    keyed by its request id, with its phase spans nested inside the same
    async track — Perfetto stacks them under the request row, which makes
    a tenant's latency anatomy readable at a glance.
    """
    scale = 1e6 / freq_hz  # cycles → trace microseconds
    tenants = sorted({str(record.get("tenant", "")) for record in records})
    pids = {tenant: pid for pid, tenant in enumerate(tenants)}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"tenant {tenant}" if tenant else "tenant <anonymous>"},
        }
        for tenant, pid in pids.items()
    ]
    for record in records:
        tree = build_span_tree(record)
        pid = pids[tree.tenant]
        ident = str(tree.request_id)
        common = {"cat": "request", "id": ident, "pid": pid, "tid": 0}
        events.append(
            {
                **common,
                "ph": "b",
                "name": "request",
                "ts": tree.root.t_start * scale,
                "args": {
                    "op": tree.op,
                    "status": tree.status,
                    "shard": tree.shard,
                    "tenant": tree.tenant,
                },
            }
        )
        for child in tree.root.children:
            events.append(
                {**common, "ph": "b", "name": child.name, "ts": child.t_start * scale}
            )
            events.append(
                {**common, "ph": "e", "name": child.name, "ts": child.t_end * scale}
            )
        events.append(
            {**common, "ph": "e", "name": "request", "ts": tree.root.t_end * scale}
        )
    return events


def write_span_chrome_trace(
    path: str, records: Sequence[Mapping[str, Any]], freq_hz: float
) -> int:
    """Write the tenant-lane trace (object form, schema-stamped)."""
    events = tenant_lane_trace_events(records, freq_hz)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({**stamp("chrome-trace"), "traceEvents": events}, handle)
    return len(events)
