"""Per-tenant SLO contracts evaluated over serve-bench artifacts.

A contract names one tenant and bounds what the serving layer owes it:

- ``p99_latency_us`` / ``p999_latency_us`` — tail-latency ceilings;
- ``min_throughput_rps`` — completed-request floor;
- ``max_shed_rate`` — admission-control shed ceiling (shed/submitted);
- ``recovery_deadline_s`` (+ optional ``fault_plan``) — every quarantine
  episode under the named fault plan must re-admit within the deadline.

Contracts come in two severities.  **hard** contracts gate: a breach is
a "regression" in the :mod:`repro.regress.diff` vocabulary and drives
``repro serve bench --contracts`` (and the CI ``slo`` job) to exit 1.
**diagnostic** contracts report the same breaches as "drift" — visible,
never gating.  One escape hatch connects this to the percentile
confidence floor of :class:`repro.analysis.metrics.LatencyRecorder`: a
hard tail-latency verdict read from fewer samples than the quantile
supports is *downgraded* to diagnostic, with the note saying why — a
10-request smoke run cannot fail CI on a p999 it cannot measure.

Contract sets round-trip through schema-stamped JSON
(:func:`load_contracts` / :func:`contracts_to_document`); the committed
set lives in ``contracts/quick.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Mapping, Sequence

from repro.analysis.metrics import LatencyRecorder
from repro.telemetry.schema import check_stamp, stamp

#: Contract severities, in gating order.
SEVERITY_CHOICES = ("hard", "diagnostic")

#: Quantile each latency bound reads, keyed by contract field.
_LATENCY_BOUNDS: tuple[tuple[str, str, float], ...] = (
    ("p99_latency_us", "p99", 99.0),
    ("p999_latency_us", "p999", 99.9),
)


@dataclass(frozen=True)
class SloContract:
    """One tenant's service-level objectives (None = unchecked)."""

    tenant: str
    severity: str = "hard"
    p99_latency_us: float | None = None
    p999_latency_us: float | None = None
    min_throughput_rps: float | None = None
    max_shed_rate: float | None = None
    recovery_deadline_s: float | None = None
    #: Fault plan the recovery deadline applies under; a run under a
    #: different plan (or none) records the deadline as not exercised.
    fault_plan: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITY_CHOICES:
            raise ValueError(f"severity must be one of {SEVERITY_CHOICES}")
        for name in (
            "p99_latency_us",
            "p999_latency_us",
            "min_throughput_rps",
            "recovery_deadline_s",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_shed_rate is not None and not 0 <= self.max_shed_rate <= 1:
            raise ValueError("max_shed_rate must be in [0, 1]")
        if self.bounds() == ():
            raise ValueError(f"contract for {self.tenant!r} bounds nothing")

    def bounds(self) -> tuple[str, ...]:
        """Names of the objective fields this contract actually sets."""
        return tuple(
            f.name
            for f in fields(self)
            if f.name not in ("tenant", "severity", "fault_plan")
            and getattr(self, f.name) is not None
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloContract":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown contract field(s): {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class Verdict:
    """One evaluated objective: what was measured against what bound."""

    tenant: str
    check: str
    severity: str  # effective severity, after any confidence downgrade
    ok: bool
    measured: float | None
    bound: float | None
    message: str
    note: str = ""  # e.g. the low-confidence downgrade explanation

    @property
    def breached(self) -> bool:
        return not self.ok

    @property
    def gating(self) -> bool:
        """True when this verdict alone fails the run."""
        return self.severity == "hard" and not self.ok

    def diff_severity(self) -> str:
        """This verdict in :mod:`repro.regress.diff` vocabulary."""
        if self.gating:
            return "regression"
        if self.breached:
            return "drift"
        return "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "check": self.check,
            "severity": self.severity,
            "ok": self.ok,
            "measured": self.measured,
            "bound": self.bound,
            "message": self.message,
            "note": self.note,
            "diff_severity": self.diff_severity(),
        }


# ----------------------------------------------------------------------
# Contract-set round trip
# ----------------------------------------------------------------------
def contracts_to_document(contracts: Sequence[SloContract]) -> dict[str, Any]:
    """The stamped JSON document form of a contract set."""
    return {
        "meta": stamp("slo-contracts"),
        "contracts": [contract.to_dict() for contract in contracts],
    }


def save_contracts(contracts: Sequence[SloContract], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(contracts_to_document(contracts), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_contracts(path: str) -> list[SloContract]:
    """Load a stamped contract file; refuses schema mismatches."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    check_stamp(document.get("meta", {}), "slo-contracts", source=path)
    contracts = [
        SloContract.from_dict(entry) for entry in document.get("contracts", [])
    ]
    tenants = [contract.tenant for contract in contracts]
    if len(set(tenants)) != len(tenants):
        raise ValueError(f"{path}: duplicate tenant contract(s)")
    return contracts


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _latency_verdicts(
    contract: SloContract, tenant_record: Mapping[str, Any]
) -> list[Verdict]:
    latency = tenant_record.get("latency_us", {})
    count = int(latency.get("count", 0))
    verdicts = []
    for field_name, quantile_key, quantile in _LATENCY_BOUNDS:
        bound = getattr(contract, field_name)
        if bound is None:
            continue
        measured = float(latency.get(quantile_key, 0.0))
        ok = measured <= bound
        severity = contract.severity
        note = ""
        floor = LatencyRecorder.sample_floor(quantile)
        if not ok and severity == "hard" and count < floor:
            severity = "diagnostic"
            note = (
                f"downgraded to diagnostic: {quantile_key} read from {count} "
                f"sample(s), needs >= {floor} for a confident tail estimate"
            )
        verdicts.append(
            Verdict(
                tenant=contract.tenant,
                check=quantile_key,
                severity=severity,
                ok=ok,
                measured=measured,
                bound=bound,
                message=(
                    f"{quantile_key} latency {measured:.1f} us "
                    f"{'<=' if ok else '>'} bound {bound:.1f} us"
                ),
                note=note,
            )
        )
    return verdicts


def _recovery_verdict(
    contract: SloContract, result: Mapping[str, Any]
) -> Verdict | None:
    deadline = contract.recovery_deadline_s
    if deadline is None:
        return None
    run_plan = result.get("params", {}).get("plan")
    if contract.fault_plan is not None and run_plan != contract.fault_plan:
        return Verdict(
            tenant=contract.tenant,
            check="recovery",
            severity=contract.severity,
            ok=True,
            measured=None,
            bound=deadline,
            message=(
                f"recovery deadline not exercised (contract names plan "
                f"{contract.fault_plan!r}, run used {run_plan!r})"
            ),
        )
    episodes = result.get("totals", {}).get("recoveries", [])
    dead = [e for e in episodes if e.get("outcome") == "dead"]
    slow = [
        e
        for e in episodes
        if e.get("outcome") == "readmitted" and e.get("seconds", 0.0) > deadline
    ]
    worst = max((e.get("seconds", 0.0) for e in episodes), default=0.0)
    if dead:
        message = (
            f"{len(dead)} shard(s) never recovered (declared dead) against a "
            f"{deadline:g} s recovery deadline"
        )
        ok = False
    elif slow:
        message = (
            f"slowest recovery took {worst:g} s, over the {deadline:g} s deadline"
        )
        ok = False
    elif not episodes:
        message = "no recovery episodes occurred (deadline vacuously met)"
        ok = True
    else:
        message = (
            f"all {len(episodes)} recovery episode(s) re-admitted within "
            f"{deadline:g} s (slowest {worst:g} s)"
        )
        ok = True
    return Verdict(
        tenant=contract.tenant,
        check="recovery",
        severity=contract.severity,
        ok=ok,
        measured=worst,
        bound=deadline,
        message=message,
    )


def evaluate_contracts(
    result: Mapping[str, Any], contracts: Sequence[SloContract]
) -> list[Verdict]:
    """Evaluate every contract against one serve-bench artifact.

    ``result`` is the artifact :func:`repro.serve.bench.run_bench`
    returns (its ``per_tenant`` section carries the per-tenant counters
    and latency summary).  A hard contract whose tenant produced no
    traffic is itself a breach: an objective nobody measured is not met.
    """
    per_tenant = result.get("per_tenant", {})
    verdicts: list[Verdict] = []
    for contract in contracts:
        record = per_tenant.get(contract.tenant)
        if record is None or not record.get("submitted"):
            verdicts.append(
                Verdict(
                    tenant=contract.tenant,
                    check="traffic",
                    severity=contract.severity,
                    ok=False,
                    measured=0.0,
                    bound=None,
                    message="tenant sent no traffic; its objectives are unattested",
                )
            )
            continue
        verdicts.extend(_latency_verdicts(contract, record))
        if contract.min_throughput_rps is not None:
            measured = float(record.get("throughput_rps", 0.0))
            ok = measured >= contract.min_throughput_rps
            verdicts.append(
                Verdict(
                    tenant=contract.tenant,
                    check="throughput",
                    severity=contract.severity,
                    ok=ok,
                    measured=measured,
                    bound=contract.min_throughput_rps,
                    message=(
                        f"throughput {measured:.0f} rps "
                        f"{'>=' if ok else '<'} floor "
                        f"{contract.min_throughput_rps:.0f} rps"
                    ),
                )
            )
        if contract.max_shed_rate is not None:
            measured = float(record.get("shed_rate", 0.0))
            ok = measured <= contract.max_shed_rate
            verdicts.append(
                Verdict(
                    tenant=contract.tenant,
                    check="shed_rate",
                    severity=contract.severity,
                    ok=ok,
                    measured=measured,
                    bound=contract.max_shed_rate,
                    message=(
                        f"shed rate {measured:.1%} "
                        f"{'<=' if ok else '>'} ceiling "
                        f"{contract.max_shed_rate:.1%}"
                    ),
                )
            )
        recovery = _recovery_verdict(contract, result)
        if recovery is not None:
            verdicts.append(recovery)
    return verdicts


def hard_breaches(verdicts: Sequence[Verdict]) -> list[Verdict]:
    """The verdicts that gate (hard severity, breached)."""
    return [verdict for verdict in verdicts if verdict.gating]


def verdicts_summary(verdicts: Sequence[Verdict]) -> dict[str, Any]:
    """The artifact section serve-bench embeds under ``result["slo"]``."""
    return {
        "verdicts": [verdict.to_dict() for verdict in verdicts],
        "hard_breaches": len(hard_breaches(verdicts)),
        "diagnostic_breaches": len(
            [v for v in verdicts if v.breached and not v.gating]
        ),
        "checks": len(verdicts),
    }


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """Human-readable verdict table, hard breaches first."""
    if not verdicts:
        return "slo: no contracts evaluated"
    ordered = sorted(
        verdicts,
        key=lambda v: (not v.gating, not v.breached, v.tenant, v.check),
    )
    lines = []
    for verdict in ordered:
        flag = "BREACH" if verdict.breached else "ok"
        gate = " [gates]" if verdict.gating else ""
        lines.append(
            f"  {verdict.tenant:>12s} {verdict.check:<10s} "
            f"{verdict.severity:<10s} {flag}{gate}  {verdict.message}"
        )
        if verdict.note:
            lines.append(f"  {'':>12s} {'':<10s} {'':<10s} note: {verdict.note}")
    gating = len(hard_breaches(verdicts))
    header = (
        f"slo: {len(verdicts)} check(s), "
        + (f"{gating} hard breach(es)" if gating else "no hard breaches")
    )
    return "\n".join([header, *lines])
