"""The unified runtime facade: one front door to the whole stack.

Historically every workload hand-assembled its system under test —
kernel, filesystem, host OS, enclave, and one of three backends, each
with a different construction incantation.  This module replaces those
incantations with a single factory:

    >>> from repro.api import Runtime
    >>> with Runtime.create(backend="zc") as rt:
    ...     def program():
    ...         result = yield from rt.enclave.ocall("fopen", "/dev/null", "w")
    ...         return result
    ...     fd = rt.run_program(program())
    >>> fd
    3

- :func:`Runtime.create` wires a complete simulated machine and returns
  a context-manager :class:`Runtime` owning the lifecycle: closing it
  detaches fault injection, stops backend threads, drains the kernel and
  finalizes telemetry, in the order the ledger requires.
- :func:`make_backend` is the one canonical construction point for the
  three call backends (``"zc"`` / ``"intel"`` / ``"baseline"``); nothing
  else in the repo instantiates backend classes directly.
- :func:`normalize_backend` maps the historical spelling zoo (``no_sl``,
  ``regular``, ``zc-switchless``, ...) onto :data:`BACKEND_CHOICES`, the
  single vocabulary the CLI's ``--backend`` flags use.

Sharded serving (:mod:`repro.serve`) builds N runtimes on one shared
kernel by passing ``kernel=``/``fs=``: a runtime that does not own its
kernel neither attaches ambient telemetry/fault plans (the shared-kernel
owner does that exactly once) nor drains the kernel on close.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.backend import ZcSwitchlessBackend
from repro.core.config import ZcConfig
from repro.faults import FaultInjector, FaultPlan, active_fault_plan, get_plan
from repro.hostos import (
    CpuUsageMonitor,
    DevNull,
    DevZero,
    HostFileSystem,
    PosixHost,
    ProcStat,
    SyscallCostModel,
)
from repro.sgx import Enclave, SgxCostModel, UntrustedRuntime
from repro.sgx.backend import CallBackend, RegularBackend
from repro.sim import Kernel, MachineSpec, paper_machine
from repro.switchless.backend import IntelSwitchlessBackend
from repro.switchless.config import SwitchlessConfig
from repro.telemetry.session import CellCapture, TelemetrySession, active_session

if TYPE_CHECKING:
    from repro.sim.kernel import Program, SimThread

__all__ = [
    "BACKEND_CHOICES",
    "Runtime",
    "SwitchlessConfig",
    "ZcConfig",
    "make_backend",
    "normalize_backend",
]

#: The canonical backend vocabulary (the CLI's ``--backend`` choices).
BACKEND_CHOICES: tuple[str, ...] = ("zc", "intel", "baseline")

#: Historical spellings accepted by :func:`normalize_backend`.
_ALIASES: dict[str, str] = {
    "zc": "zc",
    "zc-switchless": "zc",
    "intel": "intel",
    "intel-switchless": "intel",
    "sdk": "intel",
    "baseline": "baseline",
    "no_sl": "baseline",
    "no-sl": "baseline",
    "regular": "baseline",
}


def normalize_backend(name: str) -> str:
    """Map a backend spelling onto :data:`BACKEND_CHOICES`.

    >>> normalize_backend("no_sl")
    'baseline'
    >>> normalize_backend("zc-switchless")
    'zc'
    """
    try:
        return _ALIASES[name.strip().lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown backend {name!r}; choose one of {', '.join(BACKEND_CHOICES)}"
        ) from None


def make_backend(
    kind: str, config: ZcConfig | SwitchlessConfig | None = None
) -> CallBackend:
    """Construct a call backend — the repo's single instantiation point.

    ``config`` must match the backend family: a :class:`ZcConfig` for
    ``"zc"``, a :class:`SwitchlessConfig` for ``"intel"``, and nothing
    for ``"baseline"`` (which has no knobs — every call transitions).
    Omitting the config gives each backend its documented defaults.
    """
    kind = normalize_backend(kind)
    if kind == "baseline":
        if config is not None:
            raise TypeError("the baseline backend takes no config")
        return RegularBackend()
    if kind == "intel":
        if config is not None and not isinstance(config, SwitchlessConfig):
            raise TypeError(
                f"intel backend needs a SwitchlessConfig, got {type(config).__name__}"
            )
        return IntelSwitchlessBackend(config)
    if config is not None and not isinstance(config, ZcConfig):
        raise TypeError(f"zc backend needs a ZcConfig, got {type(config).__name__}")
    return ZcSwitchlessBackend(config)


class Runtime:
    """One fully-wired system under test, with an owned lifecycle.

    Built by :meth:`create`; use as a context manager (or call
    :meth:`close` explicitly).  Attributes of interest:

    - ``kernel`` / ``fs`` / ``urts`` / ``enclave`` / ``backend`` — the
      wired simulation objects;
    - ``telemetry`` — the :class:`CellCapture` attached for this runtime
      (None when telemetry is off);
    - ``faults`` — the attached :class:`FaultInjector` (None on healthy
      runs);
    - ``procstat`` / ``monitor`` — the ``/proc/stat`` meter and optional
      usage monitor.
    """

    def __init__(
        self,
        *,
        kernel: Kernel,
        fs: HostFileSystem,
        urts: UntrustedRuntime,
        enclave: Enclave,
        backend: CallBackend,
        procstat: ProcStat,
        label: str,
        owns_kernel: bool,
        monitor: CpuUsageMonitor | None = None,
        telemetry: CellCapture | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.kernel = kernel
        self.fs = fs
        self.urts = urts
        self.enclave = enclave
        self.backend = backend
        self.procstat = procstat
        self.label = label
        self.owns_kernel = owns_kernel
        self.monitor = monitor
        self.telemetry = telemetry
        self.faults = faults
        self._closed = False
        self._start_sample: Any = None

    # ------------------------------------------------------------------
    # Factory
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        backend: str = "zc",
        config: ZcConfig | SwitchlessConfig | None = None,
        *,
        machine: MachineSpec | None = None,
        kernel: Kernel | None = None,
        fs: HostFileSystem | None = None,
        files: dict[str, bytes] | None = None,
        cost: SgxCostModel | None = None,
        syscall_costs: SyscallCostModel | None = None,
        memcpy_model: Any | None = None,
        monitor_interval_s: float | None = None,
        telemetry: TelemetrySession | bool | None = None,
        faults: FaultPlan | str | bool | None = None,
        arbiter: Any | None = None,
        label: str | None = None,
        name: str = "enclave",
    ) -> "Runtime":
        """Wire kernel + host OS + enclave + backend and return a Runtime.

        Args:
            backend: One of :data:`BACKEND_CHOICES` (aliases accepted).
            config: Backend config (see :func:`make_backend`).
            machine: Simulated machine; default :func:`paper_machine`.
                Ignored when ``kernel`` is given.
            kernel: Attach to an existing kernel instead of creating one
                (shared-kernel mode, used by :mod:`repro.serve`).  The
                runtime then neither drains the kernel on close nor
                auto-attaches ambient telemetry/fault plans.
            fs: Share an existing host filesystem; by default a fresh one
                is created with ``/dev/null`` and ``/dev/zero`` mounted.
            files: Initial file contents to create in the filesystem.
            cost: SGX cycle-cost model override.
            syscall_costs: Host syscall cost model override.
            memcpy_model: Marshalling memcpy override (the zc backend
                installs its own ``rep movsb`` model on attach anyway).
            monitor_interval_s: When set, start a
                :class:`CpuUsageMonitor` sampling at this period.
            telemetry: ``None`` (default) attaches to the ambient
                :func:`active_session` when this runtime owns its kernel;
                ``False`` disables; ``True`` forces ambient attachment; a
                :class:`TelemetrySession` attaches to that session.
            faults: ``None`` (default) attaches the ambient
                :func:`active_fault_plan` when this runtime owns its
                kernel; ``False`` disables; ``True`` forces the ambient
                plan; a :class:`FaultPlan` or plan name attaches that
                plan's injector to this runtime's enclave.
            arbiter: Cross-enclave worker-budget arbiter installed on the
                backend before attach (zc only; see
                :class:`repro.serve.budget.WorkerBudgetArbiter`).
            label: Telemetry cell label; defaults to the backend kind.
            name: Enclave name (distinguishes shards in fault events).
        """
        kind = normalize_backend(backend)
        label = label if label is not None else kind
        owns_kernel = kernel is None
        if kernel is None:
            kernel = Kernel(machine if machine is not None else paper_machine())

        session = cls._resolve_session(telemetry, owns_kernel)
        capture = session.attach(kernel, label=label) if session is not None else None

        if fs is None:
            fs = HostFileSystem()
            fs.mount_device("/dev/null", DevNull())
            fs.mount_device("/dev/zero", DevZero())
        if files:
            for path, data in files.items():
                fs.create(path, data)

        urts = UntrustedRuntime()
        PosixHost(fs, syscall_costs, kernel=kernel).install(urts)
        enclave = Enclave(kernel, urts, cost=cost, memcpy_model=memcpy_model, name=name)

        if kind == "baseline":
            call_backend: CallBackend = enclave.backend  # the default RegularBackend
        else:
            call_backend = make_backend(kind, config)
            if arbiter is not None:
                call_backend.arbiter = arbiter  # type: ignore[attr-defined]
            enclave.set_backend(call_backend)

        monitor = None
        if monitor_interval_s is not None:
            monitor = CpuUsageMonitor(kernel, kernel.cycles(monitor_interval_s)).start()
        if capture is not None:
            capture.bind_enclave(enclave)

        plan = cls._resolve_plan(faults, owns_kernel)
        injector = (
            FaultInjector(plan).attach(kernel, enclave) if plan is not None else None
        )

        return cls(
            kernel=kernel,
            fs=fs,
            urts=urts,
            enclave=enclave,
            backend=call_backend,
            procstat=ProcStat(kernel),
            label=label,
            owns_kernel=owns_kernel,
            monitor=monitor,
            telemetry=capture,
            faults=injector,
        )

    @staticmethod
    def _resolve_session(
        telemetry: TelemetrySession | bool | None, owns_kernel: bool
    ) -> TelemetrySession | None:
        if telemetry is False:
            return None
        if telemetry is None:
            return active_session() if owns_kernel else None
        if telemetry is True:
            return active_session()
        return telemetry

    @staticmethod
    def _resolve_plan(
        faults: FaultPlan | str | bool | None, owns_kernel: bool
    ) -> FaultPlan | None:
        if faults is False:
            return None
        if faults is None:
            return active_fault_plan() if owns_kernel else None
        if faults is True:
            return active_fault_plan()
        if isinstance(faults, str):
            return get_plan(faults)
        return faults

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Tear the runtime down in ledger order.  Idempotent.

        Fault timers are cancelled first (so teardown never advances
        simulated time to a future fault instant), then the monitor and
        backend threads stop, the kernel drains (owned kernels only —
        shared kernels are drained once by their owner), and finally the
        telemetry capture snapshots the ledger so exit-cleanup cycles are
        attributed.
        """
        if self._closed:
            return
        self._closed = True
        if self.faults is not None:
            self.faults.detach()
        if self.monitor is not None:
            self.monitor.stop()
        self.enclave.stop_backend()
        if self.owns_kernel:
            self.kernel.run()
            if self.telemetry is not None:
                self.telemetry.finalize()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def spawn(self, program: "Program", **kwargs: Any) -> "SimThread":
        """Spawn a simulated thread on this runtime's kernel."""
        return self.kernel.spawn(program, **kwargs)

    def join(self, *threads: "SimThread") -> None:
        """Run the kernel until the given threads complete."""
        self.kernel.join(*threads)

    def run_program(self, program: "Program", name: str = "program") -> Any:
        """Spawn ``program``, run it to completion, return its result."""
        thread = self.kernel.spawn(program, name=name)
        self.kernel.join(thread)
        return thread.result

    def start_measuring(self) -> None:
        """Snapshot CPU counters; usage is measured from here."""
        self._start_sample = self.procstat.sample()

    def cpu_usage_pct(self) -> float:
        """Mean CPU usage since :meth:`start_measuring`."""
        if self._start_sample is None:
            raise RuntimeError("start_measuring() was not called")
        end = self.procstat.sample()
        return self.procstat.usage_between(self._start_sample, end).usage_pct
