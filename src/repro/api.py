"""The unified runtime facade: one front door to the whole stack.

Historically every workload hand-assembled its system under test —
kernel, filesystem, host OS, enclave, and one of three backends, each
with a different construction incantation.  This module replaces those
incantations with a single factory:

    >>> from repro.api import Runtime
    >>> with Runtime.create(backend="zc") as rt:
    ...     def program():
    ...         result = yield from rt.enclave.ocall("fopen", "/dev/null", "w")
    ...         return result
    ...     fd = rt.run_program(program())
    >>> fd
    3

- :func:`Runtime.create` wires a complete simulated machine and returns
  a context-manager :class:`Runtime` owning the lifecycle: closing it
  detaches fault injection, stops backend threads, drains the kernel and
  finalizes telemetry, in the order the ledger requires.
- :func:`make_backend` is the one canonical construction point for the
  three call backends (``"zc"`` / ``"intel"`` / ``"baseline"``); nothing
  else in the repo instantiates backend classes directly.
- :func:`normalize_backend` maps the historical spelling zoo (``no_sl``,
  ``regular``, ``zc-switchless``, ...) onto :data:`BACKEND_CHOICES`, the
  single vocabulary the CLI's ``--backend`` flags use.

Sharded serving (:mod:`repro.serve`) builds N runtimes on one shared
kernel by passing ``kernel=``/``fs=``: a runtime that does not own its
kernel neither attaches ambient telemetry/fault plans (the shared-kernel
owner does that exactly once) nor drains the kernel on close.

The *declarative* serving surface lives here too: :class:`ServeSpec`
describes a cluster, :class:`BenchSpec` describes a full benchmark run
over one, :class:`AutoscaleSpec` enables the elastic control plane, and
:meth:`Runtime.serve` is the single entry point that turns a spec into a
live cluster or a finished artifact.  Every spec validates its field
combinations centrally in one error path (:class:`SpecError`) and
round-trips through JSON with a schema stamp, so evidence packs and
scenario baselines record the complete serve configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.backend import ZcSwitchlessBackend
from repro.core.config import ZcConfig
from repro.faults import FaultInjector, FaultPlan, active_fault_plan, get_plan
from repro.hostos import (
    CpuUsageMonitor,
    DevNull,
    DevZero,
    HostFileSystem,
    PosixHost,
    ProcStat,
    SyscallCostModel,
)
from repro.sgx import Enclave, SgxCostModel, UntrustedRuntime
from repro.sgx.backend import CallBackend, RegularBackend
from repro.sim import Kernel, MachineSpec, paper_machine
from repro.switchless.backend import IntelSwitchlessBackend
from repro.switchless.config import SwitchlessConfig
from repro.telemetry.schema import check_stamp, stamp
from repro.telemetry.session import CellCapture, TelemetrySession, active_session

if TYPE_CHECKING:
    from repro.sim.kernel import Program, SimThread

__all__ = [
    "BACKEND_CHOICES",
    "AutoscaleSpec",
    "BenchSpec",
    "Runtime",
    "ServeSpec",
    "SpecError",
    "SwitchlessConfig",
    "ZcConfig",
    "make_backend",
    "normalize_backend",
]

#: The canonical backend vocabulary (the CLI's ``--backend`` choices).
BACKEND_CHOICES: tuple[str, ...] = ("zc", "intel", "baseline")

#: Historical spellings accepted by :func:`normalize_backend`.
_ALIASES: dict[str, str] = {
    "zc": "zc",
    "zc-switchless": "zc",
    "intel": "intel",
    "intel-switchless": "intel",
    "sdk": "intel",
    "baseline": "baseline",
    "no_sl": "baseline",
    "no-sl": "baseline",
    "regular": "baseline",
}


def normalize_backend(name: str) -> str:
    """Map a backend spelling onto :data:`BACKEND_CHOICES`.

    >>> normalize_backend("no_sl")
    'baseline'
    >>> normalize_backend("zc-switchless")
    'zc'
    """
    try:
        return _ALIASES[name.strip().lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown backend {name!r}; choose one of {', '.join(BACKEND_CHOICES)}"
        ) from None


def make_backend(
    kind: str, config: ZcConfig | SwitchlessConfig | None = None
) -> CallBackend:
    """Construct a call backend — the repo's single instantiation point.

    ``config`` must match the backend family: a :class:`ZcConfig` for
    ``"zc"``, a :class:`SwitchlessConfig` for ``"intel"``, and nothing
    for ``"baseline"`` (which has no knobs — every call transitions).
    Omitting the config gives each backend its documented defaults.
    """
    kind = normalize_backend(kind)
    if kind == "baseline":
        if config is not None:
            raise TypeError("the baseline backend takes no config")
        return RegularBackend()
    if kind == "intel":
        if config is not None and not isinstance(config, SwitchlessConfig):
            raise TypeError(
                f"intel backend needs a SwitchlessConfig, got {type(config).__name__}"
            )
        return IntelSwitchlessBackend(config)
    if config is not None and not isinstance(config, ZcConfig):
        raise TypeError(f"zc backend needs a ZcConfig, got {type(config).__name__}")
    return ZcSwitchlessBackend(config)


# ----------------------------------------------------------------------
# Declarative serve specs
# ----------------------------------------------------------------------
#: Artifact kind stamped onto serialized specs.
SPEC_ARTIFACT = "serve-spec"


class SpecError(ValueError):
    """A declarative serve/bench spec failed validation.

    Every invalid field *combination* — not just an out-of-range single
    field — raises through this one type, so callers (the CLI included)
    have a single error path instead of per-flag ad-hoc checks.
    """


def _check_pairs(
    pairs: "tuple[tuple[str, float], ...] | None", what: str
) -> None:
    """Validate a weighted ``(name, weight)`` tuple (tenants or apps)."""
    if pairs is None:
        return
    if not pairs:
        raise SpecError(f"{what} needs at least one (name, weight) pair")
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise SpecError(f"{what} names must be unique")
    if any(weight <= 0 for _, weight in pairs):
        raise SpecError(f"{what} weights must be positive")


def _pairs_to_json(
    pairs: "tuple[tuple[str, float], ...] | None",
) -> "list[list[Any]] | None":
    return [list(pair) for pair in pairs] if pairs is not None else None


def _pairs_from_json(
    pairs: "list[list[Any]] | None",
) -> "tuple[tuple[str, float], ...] | None":
    if pairs is None:
        return None
    return tuple((str(name), float(weight)) for name, weight in pairs)


@dataclass(frozen=True)
class AutoscaleSpec:
    """Configuration of the elastic control plane (:mod:`repro.autoscale`).

    The controller watches the obs window stream, forecasts per-lane
    arrivals with an EWMA, and sweeps (shards × per-shard workers ×
    batching degree) against the wasted-cycle objective ``U`` — the
    paper's §IV-A argmin, one level up.  Scaling actions are charged the
    enclave-lifecycle cost model (:mod:`repro.sgx.lifecycle`).

    Attributes:
        min_shards: Never retire below this many live shards.
        max_shards: Never spawn above this many live shards.
        worker_options: Candidate per-shard switchless-worker budgets
            swept by the optimizer (the fleet cap becomes
            ``workers × live shards``).
        batch_options: Candidate per-shard dequeue batch sizes.
        alpha: EWMA smoothing factor for the arrival forecast, in
            ``(0, 1]`` (1 = trust only the last window).
        headroom: Capacity multiplier the predictive admission gate
            grants before shedding (≥ 1; higher sheds later).
    """

    min_shards: int = 1
    max_shards: int = 8
    worker_options: tuple[int, ...] = (1, 2, 4)
    batch_options: tuple[int, ...] = (1, 2, 4)
    alpha: float = 0.5
    headroom: float = 1.25

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise SpecError("autoscale min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise SpecError("autoscale max_shards must be >= min_shards")
        for name in ("worker_options", "batch_options"):
            options = getattr(self, name)
            object.__setattr__(self, name, tuple(options))
            options = getattr(self, name)
            if not options:
                raise SpecError(f"autoscale {name} must not be empty")
            if any(int(opt) != opt or opt < 1 for opt in options):
                raise SpecError(f"autoscale {name} must be positive integers")
            if list(options) != sorted(set(options)):
                raise SpecError(
                    f"autoscale {name} must be strictly increasing"
                )
        if not 0.0 < self.alpha <= 1.0:
            raise SpecError("autoscale alpha must be in (0, 1]")
        if self.headroom < 1.0:
            raise SpecError("autoscale headroom must be >= 1")

    def to_json(self) -> dict[str, Any]:
        """Plain-data form (nested inside a stamped spec)."""
        return {
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "worker_options": list(self.worker_options),
            "batch_options": list(self.batch_options),
            "alpha": self.alpha,
            "headroom": self.headroom,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "AutoscaleSpec":
        """Rebuild from :meth:`to_json` output."""
        return cls(
            min_shards=int(data["min_shards"]),
            max_shards=int(data["max_shards"]),
            worker_options=tuple(int(v) for v in data["worker_options"]),
            batch_options=tuple(int(v) for v in data["batch_options"]),
            alpha=float(data["alpha"]),
            headroom=float(data["headroom"]),
        )


@dataclass(frozen=True)
class ServeSpec:
    """Declarative description of one serving cluster.

    The single source of truth for cluster topology — what used to be
    the ``--shards/--backend/--budget/--apps/...`` flag sprawl.  Build a
    live cluster from it with ``Runtime.serve(spec)`` (returns a
    :class:`repro.serve.bench.ServeCluster`).

    >>> spec = ServeSpec(shards=4, budget=8)
    >>> spec.backend
    'zc'
    >>> ServeSpec(shards=0)
    Traceback (most recent call last):
        ...
    repro.api.SpecError: shards must be >= 1

    Attributes:
        shards: Initial enclave shard count (the *global* count for a
            sliced run; the fixed count without autoscaling).
        backend: One of :data:`BACKEND_CHOICES` (aliases accepted and
            normalized on construction).
        policy: Router placement policy (``hash`` | ``round-robin``).
        admission: Full-queue admission policy (``shed`` | ``block``).
        queue_capacity: Per-shard bound on queued requests.
        servers_per_shard: Untrusted server threads per shard.
        budget: Fleet-wide switchless-worker cap (None = no arbiter).
        batch: Requests a server thread drains per dispatch (≥ 1).
        dispatch_cycles: Untrusted dispatch cost charged once per drain
            burst (0 disables the dispatch cost model).
        apps: Weighted served-app mix as ``(name, weight)`` pairs; None
            keeps the classic single-app KV shard.
        tenants: Weighted tenant mix as ``(name, weight)`` pairs; also
            switches the router to weighted-fair shedding.
        plan: Fault-plan name to attach (None = ambient plan, if any).
        fault_shard: Global index of the shard the plan attaches to.
        autoscale: Elastic control-plane configuration (None = static).
    """

    shards: int = 2
    backend: str = "zc"
    policy: str = "hash"
    admission: str = "shed"
    queue_capacity: int = 64
    servers_per_shard: int = 2
    budget: int | None = None
    batch: int = 1
    dispatch_cycles: float = 0.0
    apps: tuple[tuple[str, float], ...] | None = None
    tenants: tuple[tuple[str, float], ...] | None = None
    plan: str | None = None
    fault_shard: int = 0
    autoscale: AutoscaleSpec | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise SpecError("shards must be >= 1")
        object.__setattr__(self, "backend", normalize_backend(self.backend))
        # Deferred imports: the serve modules import this one at load
        # time; by spec-construction time they are always importable.
        from repro.serve.router import ADMISSION_CHOICES, POLICY_CHOICES

        if self.policy not in POLICY_CHOICES:
            raise SpecError(f"policy must be one of {POLICY_CHOICES}")
        if self.admission not in ADMISSION_CHOICES:
            raise SpecError(f"admission must be one of {ADMISSION_CHOICES}")
        if self.queue_capacity < 1:
            raise SpecError("queue_capacity must be >= 1")
        if self.servers_per_shard < 1:
            raise SpecError("servers_per_shard must be >= 1")
        if self.budget is not None and self.budget < 0:
            raise SpecError("budget must be >= 0 (or None)")
        if self.batch < 1:
            raise SpecError("batch must be >= 1")
        if self.dispatch_cycles < 0:
            raise SpecError("dispatch_cycles must be >= 0")
        if self.apps is not None:
            object.__setattr__(
                self, "apps", tuple(tuple(pair) for pair in self.apps)
            )
            _check_pairs(self.apps, "apps")
            from repro.serve.apps import APP_CHOICES

            unknown = [n for n, _ in self.apps if n not in APP_CHOICES]
            if unknown:
                raise SpecError(
                    f"unknown apps {unknown}; choices: {', '.join(APP_CHOICES)}"
                )
        if self.tenants is not None:
            object.__setattr__(
                self, "tenants", tuple(tuple(pair) for pair in self.tenants)
            )
            _check_pairs(self.tenants, "tenants")
        if not 0 <= self.fault_shard < self.shards:
            raise SpecError(
                f"fault_shard {self.fault_shard} out of range for "
                f"{self.shards} shards"
            )
        if self.autoscale is not None:
            if not isinstance(self.autoscale, AutoscaleSpec):
                raise SpecError("autoscale must be an AutoscaleSpec")
            if self.backend != "zc":
                raise SpecError(
                    "autoscale requires the zc backend (the worker-budget "
                    "arbiter and §IV-A objective live there)"
                )
            if self.policy != "hash":
                raise SpecError(
                    "autoscale requires policy='hash' (rendezvous placement "
                    "is what makes shard add/retire re-home only the moved "
                    "keys)"
                )
            if not (
                self.autoscale.min_shards
                <= self.shards
                <= self.autoscale.max_shards
            ):
                raise SpecError(
                    f"initial shards ({self.shards}) must lie within the "
                    f"autoscale band [{self.autoscale.min_shards}, "
                    f"{self.autoscale.max_shards}]"
                )

    def app_names(self) -> tuple[str, ...] | None:
        """Installed served-app names, in mix order (None = default KV)."""
        if self.apps is None:
            return None
        return tuple(name for name, _ in self.apps)

    def tenant_weights(self) -> dict[str, float] | None:
        """The tenant mix as a name → weight dict (None without tenants)."""
        if self.tenants is None:
            return None
        return dict(self.tenants)

    def to_json(self) -> dict[str, Any]:
        """Stamped plain-data form; round-trips via :meth:`from_json`."""
        return {
            "meta": {**stamp(SPEC_ARTIFACT), "kind": "serve"},
            "shards": self.shards,
            "backend": self.backend,
            "policy": self.policy,
            "admission": self.admission,
            "queue_capacity": self.queue_capacity,
            "servers_per_shard": self.servers_per_shard,
            "budget": self.budget,
            "batch": self.batch,
            "dispatch_cycles": self.dispatch_cycles,
            "apps": _pairs_to_json(self.apps),
            "tenants": _pairs_to_json(self.tenants),
            "plan": self.plan,
            "fault_shard": self.fault_shard,
            "autoscale": (
                self.autoscale.to_json() if self.autoscale is not None else None
            ),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ServeSpec":
        """Rebuild a spec from :meth:`to_json` output (stamp-checked)."""
        check_stamp(data.get("meta", {}), SPEC_ARTIFACT, source="ServeSpec")
        autoscale = data.get("autoscale")
        return cls(
            shards=int(data["shards"]),
            backend=data["backend"],
            policy=data["policy"],
            admission=data["admission"],
            queue_capacity=int(data["queue_capacity"]),
            servers_per_shard=int(data["servers_per_shard"]),
            budget=None if data["budget"] is None else int(data["budget"]),
            batch=int(data.get("batch", 1)),
            dispatch_cycles=float(data.get("dispatch_cycles", 0.0)),
            apps=_pairs_from_json(data.get("apps")),
            tenants=_pairs_from_json(data.get("tenants")),
            plan=data.get("plan"),
            fault_shard=int(data.get("fault_shard", 0)),
            autoscale=(
                AutoscaleSpec.from_json(autoscale)
                if autoscale is not None
                else None
            ),
        )


@dataclass(frozen=True)
class BenchSpec:
    """Declarative description of one serve benchmark run.

    A :class:`ServeSpec` plus the offered load, observation windows and
    slicing — everything ``repro serve bench`` used to take as ~15 flags.
    Run it with ``Runtime.serve(spec)`` (returns the stamped
    ``serve-bench`` artifact).

    >>> bench = BenchSpec(serve=ServeSpec(shards=4), seconds=0.1)
    >>> BenchSpec(serve=ServeSpec(shards=2), slices=4)
    Traceback (most recent call last):
        ...
    repro.api.SpecError: slices (4) must not exceed shards (2)

    Attributes:
        serve: The cluster under test.
        seconds: Offered-load duration in simulated seconds (a trace
            overrides it with its own declared duration).
        rate: Open-loop Poisson arrival rate in requests/s (the default
            loop; ignored when ``clients`` selects the closed loop).
        clients: Closed-loop request threads (None = open loop).
        requests_per_client: Closed-loop per-thread request budget.
        keydist: Key distribution (``uniform`` | ``zipf`` | ``seq``).
        keyspace: Distinct keys for the synthetic distributions.
        set_fraction: Fraction of requests that are ``set``.
        seed: Base RNG seed for the synthetic load.
        scenario: Catalog scenario name to replay (committed trace).
        trace: Trace-file path to replay (exclusive with ``scenario``).
        slices: Slice-parallel process count (1 = single process).
        obs: Attach the windowed metric sampler.
        obs_interval: Window width in simulated cycles (None = duration
            split into the default window count; setting it implies
            ``obs``).
        contracts: Path to an SLO contracts JSON file to evaluate.
    """

    serve: ServeSpec = field(default_factory=ServeSpec)
    seconds: float = 2.0
    rate: float | None = 2_000.0
    clients: int | None = None
    requests_per_client: int | None = None
    keydist: str = "uniform"
    keyspace: int = 256
    set_fraction: float = 1.0 / 3.0
    seed: int = 0
    scenario: str | None = None
    trace: str | None = None
    slices: int = 1
    obs: bool = False
    obs_interval: float | None = None
    contracts: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.serve, ServeSpec):
            raise SpecError("serve must be a ServeSpec")
        from repro.serve.loadgen import KEYDIST_CHOICES

        if self.keydist not in KEYDIST_CHOICES:
            raise SpecError(f"keydist must be one of {KEYDIST_CHOICES}")
        if self.seconds <= 0:
            raise SpecError("seconds must be > 0")
        if self.rate is not None and self.rate <= 0:
            raise SpecError("rate must be > 0 (or None for the closed loop)")
        if self.clients is not None and self.clients < 1:
            raise SpecError("clients must be >= 1 (or None for the open loop)")
        if self.requests_per_client is not None and self.clients is None:
            raise SpecError("requests_per_client needs clients (closed loop)")
        if self.keyspace < 1:
            raise SpecError("keyspace must be >= 1")
        if not 0.0 <= self.set_fraction <= 1.0:
            raise SpecError("set_fraction must be in [0, 1]")
        if self.scenario is not None and self.trace is not None:
            raise SpecError("scenario and trace are exclusive — pick one")
        if self.replays_trace() and self.clients is not None:
            raise SpecError("trace replay is open-loop; drop clients")
        if self.slices < 1:
            raise SpecError("slices must be >= 1")
        if self.slices > self.serve.shards:
            raise SpecError(
                f"slices ({self.slices}) must not exceed shards "
                f"({self.serve.shards})"
            )
        if self.slices > 1:
            if self.serve.policy != "hash":
                raise SpecError(
                    "slice-parallel serving requires policy='hash'"
                )
            if self.clients is not None:
                raise SpecError(
                    "slice-parallel serving is open-loop only; drop clients"
                )
            if self.serve.autoscale is not None:
                raise SpecError(
                    "autoscale needs the single-process runner; with a "
                    "fixed slices > 1 the shard set cannot change mid-run"
                )
        if self.serve.autoscale is not None and self.clients is not None:
            raise SpecError(
                "autoscale forecasts open-loop arrival windows; the closed "
                "loop has no offered-load signal to forecast"
            )
        if self.obs_interval is not None:
            if self.obs_interval <= 0:
                raise SpecError("obs_interval must be a positive cycle count")
            object.__setattr__(self, "obs", True)

    def replays_trace(self) -> bool:
        """True when the load comes from a committed/explicit trace."""
        return self.scenario is not None or self.trace is not None

    def to_json(self) -> dict[str, Any]:
        """Stamped plain-data form; round-trips via :meth:`from_json`."""
        return {
            "meta": {**stamp(SPEC_ARTIFACT), "kind": "bench"},
            "serve": self.serve.to_json(),
            "seconds": self.seconds,
            "rate": self.rate,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "keydist": self.keydist,
            "keyspace": self.keyspace,
            "set_fraction": self.set_fraction,
            "seed": self.seed,
            "scenario": self.scenario,
            "trace": self.trace,
            "slices": self.slices,
            "obs": self.obs,
            "obs_interval": self.obs_interval,
            "contracts": self.contracts,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "BenchSpec":
        """Rebuild a spec from :meth:`to_json` output (stamp-checked)."""
        check_stamp(data.get("meta", {}), SPEC_ARTIFACT, source="BenchSpec")
        return cls(
            serve=ServeSpec.from_json(data["serve"]),
            seconds=float(data["seconds"]),
            rate=None if data["rate"] is None else float(data["rate"]),
            clients=None if data["clients"] is None else int(data["clients"]),
            requests_per_client=(
                None
                if data["requests_per_client"] is None
                else int(data["requests_per_client"])
            ),
            keydist=data["keydist"],
            keyspace=int(data["keyspace"]),
            set_fraction=float(data["set_fraction"]),
            seed=int(data["seed"]),
            scenario=data.get("scenario"),
            trace=data.get("trace"),
            slices=int(data.get("slices", 1)),
            obs=bool(data.get("obs", False)),
            obs_interval=data.get("obs_interval"),
            contracts=data.get("contracts"),
        )

    def replace(self, **changes: Any) -> "BenchSpec":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)


class Runtime:
    """One fully-wired system under test, with an owned lifecycle.

    Built by :meth:`create`; use as a context manager (or call
    :meth:`close` explicitly).  Attributes of interest:

    - ``kernel`` / ``fs`` / ``urts`` / ``enclave`` / ``backend`` — the
      wired simulation objects;
    - ``telemetry`` — the :class:`CellCapture` attached for this runtime
      (None when telemetry is off);
    - ``faults`` — the attached :class:`FaultInjector` (None on healthy
      runs);
    - ``procstat`` / ``monitor`` — the ``/proc/stat`` meter and optional
      usage monitor.
    """

    def __init__(
        self,
        *,
        kernel: Kernel,
        fs: HostFileSystem,
        urts: UntrustedRuntime,
        enclave: Enclave,
        backend: CallBackend,
        procstat: ProcStat,
        label: str,
        owns_kernel: bool,
        monitor: CpuUsageMonitor | None = None,
        telemetry: CellCapture | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.kernel = kernel
        self.fs = fs
        self.urts = urts
        self.enclave = enclave
        self.backend = backend
        self.procstat = procstat
        self.label = label
        self.owns_kernel = owns_kernel
        self.monitor = monitor
        self.telemetry = telemetry
        self.faults = faults
        self._closed = False
        self._start_sample: Any = None

    # ------------------------------------------------------------------
    # Factory
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        backend: str = "zc",
        config: ZcConfig | SwitchlessConfig | None = None,
        *,
        machine: MachineSpec | None = None,
        kernel: Kernel | None = None,
        fs: HostFileSystem | None = None,
        files: dict[str, bytes] | None = None,
        cost: SgxCostModel | None = None,
        syscall_costs: SyscallCostModel | None = None,
        memcpy_model: Any | None = None,
        monitor_interval_s: float | None = None,
        telemetry: TelemetrySession | bool | None = None,
        faults: FaultPlan | str | bool | None = None,
        arbiter: Any | None = None,
        label: str | None = None,
        name: str = "enclave",
    ) -> "Runtime":
        """Wire kernel + host OS + enclave + backend and return a Runtime.

        Args:
            backend: One of :data:`BACKEND_CHOICES` (aliases accepted).
            config: Backend config (see :func:`make_backend`).
            machine: Simulated machine; default :func:`paper_machine`.
                Ignored when ``kernel`` is given.
            kernel: Attach to an existing kernel instead of creating one
                (shared-kernel mode, used by :mod:`repro.serve`).  The
                runtime then neither drains the kernel on close nor
                auto-attaches ambient telemetry/fault plans.
            fs: Share an existing host filesystem; by default a fresh one
                is created with ``/dev/null`` and ``/dev/zero`` mounted.
            files: Initial file contents to create in the filesystem.
            cost: SGX cycle-cost model override.
            syscall_costs: Host syscall cost model override.
            memcpy_model: Marshalling memcpy override (the zc backend
                installs its own ``rep movsb`` model on attach anyway).
            monitor_interval_s: When set, start a
                :class:`CpuUsageMonitor` sampling at this period.
            telemetry: ``None`` (default) attaches to the ambient
                :func:`active_session` when this runtime owns its kernel;
                ``False`` disables; ``True`` forces ambient attachment; a
                :class:`TelemetrySession` attaches to that session.
            faults: ``None`` (default) attaches the ambient
                :func:`active_fault_plan` when this runtime owns its
                kernel; ``False`` disables; ``True`` forces the ambient
                plan; a :class:`FaultPlan` or plan name attaches that
                plan's injector to this runtime's enclave.
            arbiter: Cross-enclave worker-budget arbiter installed on the
                backend before attach (zc only; see
                :class:`repro.serve.budget.WorkerBudgetArbiter`).
            label: Telemetry cell label; defaults to the backend kind.
            name: Enclave name (distinguishes shards in fault events).
        """
        kind = normalize_backend(backend)
        label = label if label is not None else kind
        owns_kernel = kernel is None
        if kernel is None:
            kernel = Kernel(machine if machine is not None else paper_machine())

        session = cls._resolve_session(telemetry, owns_kernel)
        capture = session.attach(kernel, label=label) if session is not None else None

        if fs is None:
            fs = HostFileSystem()
            fs.mount_device("/dev/null", DevNull())
            fs.mount_device("/dev/zero", DevZero())
        if files:
            for path, data in files.items():
                fs.create(path, data)

        urts = UntrustedRuntime()
        PosixHost(fs, syscall_costs, kernel=kernel).install(urts)
        enclave = Enclave(kernel, urts, cost=cost, memcpy_model=memcpy_model, name=name)

        if kind == "baseline":
            call_backend: CallBackend = enclave.backend  # the default RegularBackend
        else:
            call_backend = make_backend(kind, config)
            if arbiter is not None:
                call_backend.arbiter = arbiter  # type: ignore[attr-defined]
            enclave.set_backend(call_backend)

        monitor = None
        if monitor_interval_s is not None:
            monitor = CpuUsageMonitor(kernel, kernel.cycles(monitor_interval_s)).start()
        if capture is not None:
            capture.bind_enclave(enclave)

        plan = cls._resolve_plan(faults, owns_kernel)
        injector = (
            FaultInjector(plan).attach(kernel, enclave) if plan is not None else None
        )

        return cls(
            kernel=kernel,
            fs=fs,
            urts=urts,
            enclave=enclave,
            backend=call_backend,
            procstat=ProcStat(kernel),
            label=label,
            owns_kernel=owns_kernel,
            monitor=monitor,
            telemetry=capture,
            faults=injector,
        )

    @classmethod
    def serve(
        cls, spec: "ServeSpec | BenchSpec", **kwargs: Any
    ) -> Any:
        """The declarative serving entry point.

        - A :class:`ServeSpec` builds and returns a live, started
          :class:`repro.serve.bench.ServeCluster` (close it when done).
        - A :class:`BenchSpec` runs the full benchmark — synthetic load
          or trace replay, sliced or not, autoscaled or static — and
          returns the stamped ``serve-bench`` artifact.

        Keyword arguments are forwarded to
        :func:`repro.serve.bench.build_cluster` /
        :func:`repro.serve.bench.run_bench` (runner plumbing such as
        ``machine``, ``telemetry`` or ``span_sink`` — everything
        *declarative* belongs in the spec).
        """
        # Deferred import: repro.serve.bench imports this module.
        from repro.serve.bench import build_cluster, run_bench

        if isinstance(spec, BenchSpec):
            return run_bench(spec, **kwargs)
        if isinstance(spec, ServeSpec):
            return build_cluster(spec, **kwargs)
        raise SpecError(
            f"Runtime.serve takes a ServeSpec or BenchSpec, got "
            f"{type(spec).__name__}"
        )

    @staticmethod
    def _resolve_session(
        telemetry: TelemetrySession | bool | None, owns_kernel: bool
    ) -> TelemetrySession | None:
        if telemetry is False:
            return None
        if telemetry is None:
            return active_session() if owns_kernel else None
        if telemetry is True:
            return active_session()
        return telemetry

    @staticmethod
    def _resolve_plan(
        faults: FaultPlan | str | bool | None, owns_kernel: bool
    ) -> FaultPlan | None:
        if faults is False:
            return None
        if faults is None:
            return active_fault_plan() if owns_kernel else None
        if faults is True:
            return active_fault_plan()
        if isinstance(faults, str):
            return get_plan(faults)
        return faults

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Tear the runtime down in ledger order.  Idempotent.

        Fault timers are cancelled first (so teardown never advances
        simulated time to a future fault instant), then the monitor and
        backend threads stop, the kernel drains (owned kernels only —
        shared kernels are drained once by their owner), and finally the
        telemetry capture snapshots the ledger so exit-cleanup cycles are
        attributed.
        """
        if self._closed:
            return
        self._closed = True
        if self.faults is not None:
            self.faults.detach()
        if self.monitor is not None:
            self.monitor.stop()
        self.enclave.stop_backend()
        if self.owns_kernel:
            self.kernel.run()
            if self.telemetry is not None:
                self.telemetry.finalize()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def spawn(self, program: "Program", **kwargs: Any) -> "SimThread":
        """Spawn a simulated thread on this runtime's kernel."""
        return self.kernel.spawn(program, **kwargs)

    def join(self, *threads: "SimThread") -> None:
        """Run the kernel until the given threads complete."""
        self.kernel.join(*threads)

    def run_program(self, program: "Program", name: str = "program") -> Any:
        """Spawn ``program``, run it to completion, return its result."""
        thread = self.kernel.spawn(program, name=name)
        self.kernel.join(thread)
        return thread.result

    def start_measuring(self) -> None:
        """Snapshot CPU counters; usage is measured from here."""
        self._start_sample = self.procstat.sample()

    def cpu_usage_pct(self) -> float:
        """Mean CPU usage since :meth:`start_measuring`."""
        if self._start_sample is None:
            raise RuntimeError("start_measuring() was not called")
        end = self.procstat.sample()
        return self.procstat.usage_between(self._start_sample, end).usage_pct
