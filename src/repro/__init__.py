"""Reproduction of *SGX Switchless Calls Made Configless* (DSN 2023).

This library rebuilds the paper's entire system stack in Python:

- :mod:`repro.sim` — a deterministic discrete-event simulator of the
  paper's 4-core/8-thread SGX machine (cores, SMT, preemptive scheduling,
  cycle accounting).
- :mod:`repro.sgx` — the SGX substrate: enclaves, ecall/ocall transition
  costs, and the trusted-libc ``memcpy`` cost models (Intel's software
  copy vs. the paper's ``rep movsb`` version).
- :mod:`repro.hostos` — untrusted host OS: an in-memory file system,
  character devices, the syscall cost model and a ``/proc/stat``-style
  CPU meter.
- :mod:`repro.switchless` — a faithful reimplementation of the Intel SGX
  SDK switchless-call mechanism (task pool, static worker pool,
  ``retries_before_fallback`` / ``retries_before_sleep``).
- :mod:`repro.core` — **ZC-SWITCHLESS**, the paper's contribution: the
  worker state machine and the wasted-cycle-minimising scheduler.
- :mod:`repro.crypto`, :mod:`repro.apps` — the evaluation applications
  (kissdb, an OpenSSL-style AES-256-CBC file pipeline, lmbench).
- :mod:`repro.workloads`, :mod:`repro.experiments` — workload generators
  and one runner per paper figure/table.
"""

__version__ = "1.0.0"
