"""Artifact schema stamps: make every export self-identifying.

Every artifact the repo emits — the JSONL event log, the Chrome trace,
the Prometheus text file, ``BENCH_meta.json`` and the regression
baselines under ``baselines/`` — carries the same two fields:

- ``schema_version``: bumped whenever the *shape* of an artifact changes
  (new required fields, renamed events, different nesting);
- ``repro_version``: the package version that produced the artifact, for
  provenance only (it never gates parsing).

Consumers (``repro diff``, the JSONL replay auditor) call
:func:`check_stamp` before parsing and refuse mismatched inputs instead
of silently misreading them.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro import __version__

#: Version of every exported artifact's schema.  Bump on shape changes.
SCHEMA_VERSION = 1


class SchemaMismatch(ValueError):
    """An artifact's stamp is missing or from an incompatible schema."""


def stamp(artifact: str) -> dict[str, Any]:
    """The stamp fields for one artifact kind (e.g. ``events-jsonl``)."""
    return {
        "artifact": artifact,
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
    }


def check_stamp(meta: Mapping[str, Any], artifact: str, source: str = "artifact") -> None:
    """Validate a parsed stamp; raises :class:`SchemaMismatch` on failure.

    ``source`` names the input (usually a file path) for the error text.
    """
    found_artifact = meta.get("artifact")
    if found_artifact != artifact:
        raise SchemaMismatch(
            f"{source}: expected a {artifact!r} stamp, found {found_artifact!r} "
            "(unstamped artifacts predate the regression schema; re-export them)"
        )
    version = meta.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaMismatch(
            f"{source}: schema_version {version!r} is not the supported "
            f"{SCHEMA_VERSION} (written by repro {meta.get('repro_version', '?')})"
        )
