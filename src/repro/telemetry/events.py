"""The telemetry event bus: ``emit(event, **fields)`` with subscribers.

Every instrumented layer publishes to the bus installed on its simulation
kernel (``kernel.bus``):

- :mod:`repro.sim.kernel` — scheduler events (``sched.dispatch``,
  ``sched.preempt``, ``sched.park``, ``sched.finish``), gated behind
  :attr:`EventBus.capture_sched` because of their volume;
- :mod:`repro.sgx.enclave` — ``ecall.complete`` with the execution mode
  the backend chose, and (only when :attr:`EventBus.capture_calls` is
  set) a per-call ``ocall.complete``.  By default the dense per-ocall
  record lives in :class:`repro.profiler.tracer.CallTracer` instead; the
  JSONL exporter synthesizes ``ocall.complete`` lines from the tracer so
  the artifact is the same either way;
- :mod:`repro.switchless` — ``intel.fallback`` (with the reason: full
  pool vs. exhausted retry budget) and worker sleep/wake transitions;
- :mod:`repro.core` — ``zc.fallback`` / ``zc.pool_realloc`` /
  ``zc.workers`` and the scheduler's per-probe ``zc.sched.probe`` (each
  candidate's ``U_i``) and ``zc.sched.decision`` (the chosen argmin);

Successful switchless completions deliberately have no event of their
own: the enclave's per-call ``ocall.complete`` already carries the mode
the backend chose, so only exceptional paths cost an emit.
- :mod:`repro.hostos` — ``syscall`` with the handler name and host cycles.

Publishing costs host time only, never simulated cycles; with no bus
installed (``kernel.bus is None``) the instrumentation is a single
attribute check per site.
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple


class TelemetryEvent(NamedTuple):
    """One published event.

    A ``NamedTuple`` rather than a dataclass: emit sits on the simulator's
    hot path and tuple construction is several times cheaper.
    """

    t_cycles: float
    name: str
    fields: dict[str, Any]


class EventBus:
    """Collects :class:`TelemetryEvent` records and fans out to subscribers.

    Args:
        clock: Zero-argument callable returning the current simulated time
            in cycles (normally ``lambda: kernel.now``); ``None`` stamps
            every event with 0.0.
        max_events: Retention bound; once reached, *new* events are counted
            in :attr:`dropped` instead of stored (subscribers still see
            them).  0 means unbounded.
        capture_sched: Whether the kernel publishes its per-dispatch
            scheduler events.  Off by default — they are high-volume and
            :class:`repro.sim.kernel.SchedTrace` already records the same
            information for the CPU lanes of the Chrome trace.
        capture_calls: Whether the enclave publishes a per-call
            ``ocall.complete``.  Off by default for the same reason: the
            call tracer already records every call, and an emit per ocall
            dominates telemetry's host-time cost.
    """

    __slots__ = (
        "clock",
        "max_events",
        "capture_sched",
        "capture_calls",
        "events",
        "dropped",
        "_subscribers",
    )

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_events: int = 200_000,
        capture_sched: bool = False,
        capture_calls: bool = False,
    ) -> None:
        if max_events < 0:
            raise ValueError("max_events must be >= 0")
        self.clock = clock
        self.max_events = max_events
        self.capture_sched = capture_sched
        self.capture_calls = capture_calls
        self.events: list[TelemetryEvent] = []
        self.dropped = 0
        # A tuple, not a list: emit iterates the immutable snapshot it
        # read, so a subscriber may unsubscribe (itself or another) from
        # inside its callback — one-shot audit checkers rely on this.
        self._subscribers: tuple[Callable[[TelemetryEvent], None], ...] = ()

    def subscribe(self, fn: Callable[[TelemetryEvent], None]) -> None:
        """Register ``fn`` to be called synchronously on every emit."""
        self._subscribers = (*self._subscribers, fn)

    def unsubscribe(self, fn: Callable[[TelemetryEvent], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`.

        Safe to call from inside a subscriber during :meth:`emit`: the
        dispatch loop iterates the subscriber tuple it snapshotted, so the
        removed subscriber still sees the in-flight event but none after.
        """
        subscribers = list(self._subscribers)
        subscribers.remove(fn)
        self._subscribers = tuple(subscribers)

    def emit(self, name: str, /, **fields: Any) -> None:
        """Publish one event; timestamped with the kernel clock.

        ``name`` is positional-only so events may carry a ``name`` field
        (e.g. ``ocall.complete`` names the ocall that completed).
        """
        clock = self.clock
        event = TelemetryEvent(clock() if clock is not None else 0.0, name, fields)
        if self._subscribers:
            for fn in self._subscribers:
                fn(event)
        events = self.events
        if self.max_events and len(events) >= self.max_events:
            self.dropped += 1
            return
        events.append(event)

    @property
    def count(self) -> int:
        """Total events emitted (stored + dropped)."""
        return len(self.events) + self.dropped

    @property
    def counts(self) -> dict[str, int]:
        """Per-name counts of the *stored* events, computed on demand.

        Events beyond the retention bound appear only in the aggregate
        :attr:`dropped` counter — emit stays free of bookkeeping.
        """
        counts: dict[str, int] = {}
        for event in self.events:
            name = event.name
            counts[name] = counts.get(name, 0) + 1
        return counts

    def events_named(self, name: str) -> list[TelemetryEvent]:
        """The stored events with the given name."""
        return [e for e in self.events if e.name == name]
