"""Telemetry sessions: attach instrumentation to every stack in a run.

A :class:`TelemetrySession` is a context manager an experiment runner (or
the CLI's ``--telemetry`` / ``--trace`` flags) wraps around
``module.run(...)``.  While active, :func:`repro.experiments.common.
build_stack` attaches a :class:`CellCapture` to every kernel it creates:
an :class:`~repro.telemetry.events.EventBus`, a
:class:`~repro.telemetry.ledger.CycleLedger`, a scheduler trace and a
:class:`~repro.profiler.tracer.CallTracer`.  ``Stack.finish()`` finalizes
the capture — snapshotting the ledger, backend statistics and metrics and
releasing the simulation objects — so a session accumulates one compact
capture per experiment cell, exported together at the end.

Telemetry is opt-in: with no active session, nothing is installed and the
instrumented code paths stay on their single ``is None`` check.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.analysis.metrics import LatencyRecorder
from repro.profiler.tracer import CallTracer
from repro.sim.kernel import Kernel, SchedTrace
from repro.telemetry.events import EventBus, TelemetryEvent
from repro.telemetry.exporters import (
    render_cycle_budget,
    write_chrome_trace,
    write_cycle_budget,
    write_events_jsonl,
    write_prometheus,
)
from repro.telemetry.ledger import BUSY_CATEGORIES, CycleLedger, LedgerSnapshot
from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

#: Stack of active sessions; the innermost wins (supports nesting in tests).
_ACTIVE: list["TelemetrySession"] = []


def active_session() -> "TelemetrySession | None":
    """The innermost active session, or None when telemetry is off."""
    return _ACTIVE[-1] if _ACTIVE else None


@dataclass
class CapturePayload:
    """One finalized capture as plain picklable data.

    What a pool worker ships back to the parent process: everything the
    exporters read from a capture, with the live objects (kernel, bus
    clock closure, tracer) already reduced to lists and snapshots.
    """

    label: str
    freq_hz: float
    events: list[TelemetryEvent]
    events_dropped: int
    event_counts: dict[str, int]
    now_cycles: float
    sched_trace: SchedTrace | None
    call_events: list[Any]
    latency_samples: list[float]
    snapshot: LedgerSnapshot | None
    worker_timeline: list[tuple[float, float]]
    backend_stats: dict[str, Any]
    capture_calls: bool


@dataclass
class SessionPayload:
    """A child session's captures + metrics, ready to cross a process."""

    captures: list[CapturePayload] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)


class _BusFlags:
    """Stands in for the event bus on a frozen capture.

    The exporters only ask a finalized capture's bus one question —
    ``capture_calls`` (whether ``ocall.complete`` lines are already on the
    bus or must be synthesized from the tracer) — so a frozen capture
    carries just that flag.
    """

    __slots__ = ("capture_calls",)

    def __init__(self, capture_calls: bool) -> None:
        self.capture_calls = capture_calls


class FrozenCapture:
    """An absorbed capture: exporter-compatible, plain data only.

    Quacks like a finalized :class:`CellCapture` for every exporter and
    summary path (label, events, sched trace, call events, snapshot,
    ``assert_balanced``, ``latency_summary``) but holds no simulation
    objects — it is rebuilt from a :class:`CapturePayload` in the parent
    process after a pool worker ran the cell.
    """

    def __init__(self, payload: CapturePayload, label: str) -> None:
        self.label = label
        self.freq_hz = payload.freq_hz
        self.kernel = None
        self.bus = _BusFlags(payload.capture_calls)
        self.events = payload.events
        self.events_dropped = payload.events_dropped
        self.event_counts = payload.event_counts
        self.now_cycles = payload.now_cycles
        self.sched_trace = payload.sched_trace
        self.call_events = payload.call_events
        self.snapshot = payload.snapshot
        self.worker_timeline = payload.worker_timeline
        self.backend_stats = payload.backend_stats
        self._latency_samples = payload.latency_samples
        self.finalized = True

    def finalize(self) -> None:
        """No-op: a frozen capture is finalized by construction."""

    def assert_balanced(self, rel_tol: float = 1e-6) -> None:
        """Assert cycle conservation on the absorbed snapshot."""
        assert self.snapshot is not None
        self.snapshot.assert_balanced(rel_tol)

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 summary of the captured end-to-end call latencies."""
        recorder = LatencyRecorder()
        recorder.record_many(self._latency_samples)
        return recorder.summary()


class CellCapture:
    """Telemetry attached to one experiment cell (one kernel + enclave).

    Live phase: holds references to the kernel, bus, ledger and tracer.
    After :meth:`finalize` only plain data remains — events, the sched
    trace, call events, the ledger snapshot and backend counters — sized
    for a whole session of cells to be kept in memory.
    """

    def __init__(self, session: "TelemetrySession", kernel: Kernel, label: str) -> None:
        # Copy what we need from the session rather than keeping a
        # reference: the session holds its captures, and a backref would
        # make every capture cyclic garbage (collector-only reclaim).
        self._registry = session.registry
        self._tracer_max_events = session.tracer_max_events
        self.label = label
        self.kernel: Kernel | None = kernel
        self.freq_hz = kernel.spec.freq_hz
        self.bus = EventBus(
            clock=lambda: kernel.now,
            max_events=session.max_events_per_cell,
            capture_sched=session.capture_sched,
            capture_calls=session.capture_calls,
        )
        self.ledger = CycleLedger()
        kernel.bus = self.bus
        # The kernel's dispatch path reads the pre-resolved ``sched_bus``
        # instead of checking ``bus.capture_sched`` per dispatch.
        kernel.sched_bus = self.bus if session.capture_sched else None
        kernel.ledger = self.ledger
        if kernel.trace is None:
            kernel.trace = SchedTrace(session.sched_trace_entries)
        self.sched_trace: SchedTrace | None = kernel.trace
        self.tracer: CallTracer | None = None
        self._enclave: "Enclave | None" = None
        # Populated by finalize().
        self.snapshot: LedgerSnapshot | None = None
        self.events: list[TelemetryEvent] = []
        self.events_dropped = 0
        self.event_counts: dict[str, int] = {}
        self.now_cycles = 0.0
        #: The detached tracer, kept so call_events can materialize lazily.
        self._done_tracer: CallTracer | None = None
        self.worker_timeline: list[tuple[float, float]] = []
        self.backend_stats: dict[str, Any] = {}
        self.finalized = False

    def bind_enclave(self, enclave: "Enclave") -> None:
        """Install the call tracer on the cell's enclave."""
        self._enclave = enclave
        self.tracer = CallTracer(max_events=self._tracer_max_events).install(enclave)

    @property
    def enclave(self) -> "Enclave | None":
        """The bound enclave while the cell is live (None once finalized).

        The live invariant auditor reads backend parameters (worker-pool
        size) through this to resolve the expected probe count.
        """
        return self._enclave

    @property
    def registry(self) -> MetricsRegistry:
        """The owning session's metrics registry.

        Layers above telemetry (the serve bench's Prometheus export)
        register their cell-labelled metrics through this rather than
        reaching for the session, which the capture deliberately does
        not hold a reference to.
        """
        return self._registry

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Snapshot everything and release the simulation objects.

        Idempotent; called by ``Stack.finish()`` after the kernel drains
        (so worker exit-cleanup cycles are attributed) and defensively by
        the session's exporters.
        """
        if self.finalized:
            return
        self.finalized = True
        kernel = self.kernel
        assert kernel is not None
        self.snapshot = self.ledger.snapshot(kernel)
        self.now_cycles = kernel.now
        self.events = self.bus.events
        self.events_dropped = self.bus.dropped
        self.event_counts = dict(self.bus.counts)
        if self.tracer is not None:
            self.tracer.uninstall()
            self._done_tracer = self.tracer
            self.tracer = None
        self._snapshot_metrics(kernel)
        kernel.bus = None
        kernel.sched_bus = None
        kernel.ledger = None
        self.kernel = None
        self._enclave = None

    def _snapshot_metrics(self, kernel: Kernel) -> None:
        registry = self._registry
        label = self.label
        snapshot = self.snapshot
        assert snapshot is not None
        for category in BUSY_CATEGORIES:
            registry.counter("repro_cycles_total", cell=label, category=category).inc(
                snapshot.wall_by_category.get(category, 0.0)
            )
        registry.counter("repro_cycles_total", cell=label, category="idle").inc(
            snapshot.idle_cycles
        )
        registry.gauge("repro_sim_time_cycles", cell=label).set(kernel.now)
        registry.gauge("repro_cpu_utilisation", cell=label).set(
            snapshot.busy_cycles / snapshot.capacity_cycles if snapshot.capacity_cycles else 0.0
        )

        enclave = self._enclave
        if enclave is not None:
            for mode in ("regular", "switchless", "fallback"):
                count = getattr(enclave.stats, f"total_{mode}")
                if count:
                    registry.counter("repro_ocalls_total", cell=label, mode=mode).inc(count)
            backend = enclave.backend
            stats = getattr(backend, "stats", None)
            if stats is not None and hasattr(stats, "worker_count_timeline"):
                self.backend_stats = {
                    "backend": backend.name,
                    "fallbacks": stats.fallback_count,
                    "switchless": stats.switchless_count,
                    "pool_reallocs": stats.pool_reallocs,
                    "scheduler_decisions": stats.scheduler_decisions,
                    "mean_workers": stats.mean_worker_count(kernel.now),
                    # Pool size, for the auditor's N/2+1 probe-count check
                    # (the probe sweep is capped by the workers that exist).
                    "workers_cap": len(getattr(backend, "workers", ())),
                }
                self.worker_timeline = [
                    (t, float(count)) for t, count in stats.worker_count_timeline
                ]
                registry.counter("repro_zc_fallbacks_total", cell=label).inc(
                    stats.fallback_count
                )
                registry.counter("repro_zc_pool_reallocs_total", cell=label).inc(
                    stats.pool_reallocs
                )
                workers = registry.gauge("repro_zc_active_workers", cell=label)
                for t_cycles, count in self.worker_timeline:
                    workers.set(count, t_cycles=t_cycles)
            elif hasattr(backend, "fallback_count"):
                self.backend_stats = {
                    "backend": backend.name,
                    "fallbacks": backend.fallback_count,
                    "switchless": backend.switchless_count,
                }
                registry.counter("repro_intel_fallbacks_total", cell=label).inc(
                    backend.fallback_count
                )
            else:
                self.backend_stats = {"backend": backend.name}

        tracer = self._done_tracer
        if tracer is not None and tracer.count:
            registry.histogram("repro_ocall_latency_cycles", cell=label).observe_many(
                tracer.latency_samples()
            )
            registry.histogram("repro_ocall_host_cycles", cell=label).observe_many(
                tracer.host_samples()
            )

    # ------------------------------------------------------------------
    # Assertions / summaries
    # ------------------------------------------------------------------
    def assert_balanced(self, rel_tol: float = 1e-6) -> None:
        """Assert cycle conservation (finalizing first if needed)."""
        if not self.finalized:
            self.finalize()
        assert self.snapshot is not None
        self.snapshot.assert_balanced(rel_tol)

    @property
    def call_events(self) -> list[Any]:
        """Per-ocall events from the call tracer, materialized lazily.

        CallEvent construction is deferred until an exporter asks — it
        costs host time proportional to the call count, and finalize runs
        inside the window the overhead guard measures.
        """
        return self._done_tracer.events if self._done_tracer is not None else []

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 summary of the captured end-to-end call latencies."""
        recorder = LatencyRecorder()
        if self._done_tracer is not None:
            recorder.record_many(self._done_tracer.latency_samples())
        return recorder.summary()

    def to_payload(self) -> CapturePayload:
        """Reduce this (finalized) capture to plain picklable data.

        Materializes the tracer's call events eagerly — the payload
        crosses a process boundary, so lazy construction cannot be
        deferred to the parent.
        """
        if not self.finalized:
            self.finalize()
        tracer = self._done_tracer
        return CapturePayload(
            label=self.label,
            freq_hz=self.freq_hz,
            events=self.events,
            events_dropped=self.events_dropped,
            event_counts=self.event_counts,
            now_cycles=self.now_cycles,
            sched_trace=self.sched_trace,
            call_events=list(self.call_events),
            latency_samples=tracer.latency_samples() if tracer is not None else [],
            snapshot=self.snapshot,
            worker_timeline=self.worker_timeline,
            backend_stats=self.backend_stats,
            capture_calls=self.bus.capture_calls,
        )


class TelemetrySession:
    """Context manager collecting one :class:`CellCapture` per stack.

    Args:
        capture_sched: Also publish per-dispatch scheduler events on the
            bus (high volume; the sched trace covers the Chrome trace's
            needs without it).
        capture_calls: Also publish per-call ``ocall.complete`` events on
            the bus (high volume; the call tracer records every call
            anyway and the JSONL exporter synthesizes the same lines).
        max_events_per_cell: Event-bus retention bound per cell.
        sched_trace_entries: Ring size of the per-kernel scheduler trace.
        tracer_max_events: Ring size of the per-enclave call tracer.
        on_attach: Called with each new :class:`CellCapture` right after
            it is attached — the hook the ``--audit-invariants`` pytest
            fixture uses to put live checkers on every cell's bus.  Not
            forwarded to pool workers (:meth:`config_kwargs`): callbacks
            don't cross process boundaries.
    """

    def __init__(
        self,
        capture_sched: bool = False,
        capture_calls: bool = False,
        max_events_per_cell: int = 200_000,
        sched_trace_entries: int = 100_000,
        tracer_max_events: int = 100_000,
        on_attach: "Callable[[CellCapture], None] | None" = None,
    ) -> None:
        self.capture_sched = capture_sched
        self.capture_calls = capture_calls
        self.max_events_per_cell = max_events_per_cell
        self.sched_trace_entries = sched_trace_entries
        self.tracer_max_events = tracer_max_events
        self.on_attach = on_attach
        #: Holds :class:`CellCapture` for cells run in-process and
        #: :class:`FrozenCapture` for cells absorbed from pool workers.
        self.captures: list[CellCapture | FrozenCapture] = []
        self.registry = MetricsRegistry()
        self._label_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "TelemetrySession":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE.remove(self)

    def _unique_label(self, label: str) -> str:
        """Uniquify a cell label (``zc``, ``zc#1``, ``zc#2``, ...)."""
        count = self._label_counts.get(label, 0)
        self._label_counts[label] = count + 1
        return label if count == 0 else f"{label}#{count}"

    def attach(self, kernel: Kernel, label: str) -> CellCapture:
        """Instrument ``kernel`` as a new cell; labels are made unique."""
        capture = CellCapture(self, kernel, self._unique_label(label))
        self.captures.append(capture)
        if self.on_attach is not None:
            self.on_attach(capture)
        return capture

    def finalize_all(self) -> None:
        """Finalize any capture whose stack never called ``finish()``."""
        for capture in self.captures:
            if not capture.finalized and capture.kernel is not None:
                capture.finalize()

    # ------------------------------------------------------------------
    # Cross-process transfer (repro.parallel)
    # ------------------------------------------------------------------
    def config_kwargs(self) -> dict[str, Any]:
        """The constructor kwargs that recreate this session's config.

        The parallel runner passes these to the child process so each
        pool worker instruments its cell exactly as the parent would.
        """
        return {
            "capture_sched": self.capture_sched,
            "capture_calls": self.capture_calls,
            "max_events_per_cell": self.max_events_per_cell,
            "sched_trace_entries": self.sched_trace_entries,
            "tracer_max_events": self.tracer_max_events,
        }

    def to_payload(self) -> SessionPayload:
        """Reduce every capture to plain data for the trip to the parent."""
        self.finalize_all()
        return SessionPayload(
            captures=[capture.to_payload() for capture in self.captures],
            registry=self.registry,
        )

    def absorb(self, payload: SessionPayload) -> None:
        """Merge a child session's payload into this session.

        Labels are re-uniquified through this session's counter — a
        child's ``zc`` becomes ``zc#2`` here if two zc cells were already
        captured — so absorbing cells in deterministic cell order yields
        the same label sequence a serial run produces.  The child's
        metrics follow their capture via the same relabel map.
        """
        relabel: dict[str, str] = {}
        for capture_payload in payload.captures:
            # Recover the base label (strip a ``#N`` uniquification suffix
            # the child added) and re-derive the suffix in this session.
            base, sep, suffix = capture_payload.label.rpartition("#")
            if sep and suffix.isdigit():
                original = base
            else:
                original = capture_payload.label
            unique = self._unique_label(original)
            relabel[capture_payload.label] = unique
            self.captures.append(FrozenCapture(capture_payload, unique))
        self.registry.merge(payload.registry, relabel_cell=relabel)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, directory: str, name: str) -> dict[str, str]:
        """Write all four artifacts under ``directory``; returns the paths."""
        self.finalize_all()
        os.makedirs(directory, exist_ok=True)
        paths = {
            "events": os.path.join(directory, f"{name}.events.jsonl"),
            "trace": os.path.join(directory, f"{name}.trace.json"),
            "metrics": os.path.join(directory, f"{name}.metrics.prom"),
            "budget": os.path.join(directory, f"{name}.cycle_budget.txt"),
        }
        write_events_jsonl(paths["events"], self.captures)
        write_chrome_trace(paths["trace"], self.captures)
        write_prometheus(paths["metrics"], self.registry)
        write_cycle_budget(paths["budget"], self.captures)
        return paths

    def export_trace(self, directory: str, name: str) -> str:
        """Write only the Chrome trace (the CLI's ``--trace`` mode)."""
        self.finalize_all()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{name}.trace.json")
        write_chrome_trace(path, self.captures)
        return path

    def render_cycle_budget(self) -> str:
        """The session-wide cycle-budget table as text."""
        self.finalize_all()
        return render_cycle_budget(self.captures)
