"""Run-artifact exporters for telemetry captures.

Four formats, one file each per experiment run:

- **JSONL event log** — one JSON object per bus event, tagged with the
  cell (configuration) it came from;
- **Chrome trace** — loadable in ``chrome://tracing`` / Perfetto; one
  process per cell with per-CPU scheduler lanes, an ocall lane, a
  worker-count counter track and instant markers for scheduler decisions
  and fallbacks (this extends :mod:`repro.profiler.chrometrace` beyond
  ocalls);
- **Prometheus-style text** — counters/gauges/histogram quantiles from
  the session's :class:`repro.telemetry.registry.MetricsRegistry`;
- **cycle-budget table** — the human-readable conservation report
  rendered through :func:`repro.analysis.report.format_cycle_budget`.
"""

from __future__ import annotations

import heapq
import json
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.analysis.report import format_cycle_budget
from repro.profiler.chrometrace import (
    call_trace_events,
    counter_events,
    instant_events,
    sched_trace_events,
)
from repro.telemetry.ledger import CATEGORIES
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.schema import SCHEMA_VERSION, stamp

from repro import __version__

if TYPE_CHECKING:
    from repro.telemetry.session import CellCapture

#: Bus events rendered as instant markers in the Chrome trace.
_INSTANT_EVENTS = frozenset(
    {
        "zc.sched.decision",
        "zc.pool_realloc",
        "zc.fallback",
        "intel.fallback",
        "intel.worker.sleep",
        "intel.worker.wake",
    }
)

#: Synthetic tids for the non-CPU lanes of each cell's trace process.
_OCALL_TID = 100
_EVENT_TID = 101


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def _synthesized_ocall_records(capture: "CellCapture") -> list[tuple[float, dict]]:
    """Per-ocall ``ocall.complete`` records built from the call tracer.

    The enclave only publishes ``ocall.complete`` on the bus when
    ``capture_calls`` is set (an emit per call is telemetry's dominant
    host-time cost); the tracer records every call regardless, so the
    JSONL artifact carries the same lines either way.
    """
    if not capture.call_events or (capture.bus is not None and capture.bus.capture_calls):
        return []
    label = capture.label
    return [
        (
            event.completed_at_cycles,
            {
                "t_cycles": event.completed_at_cycles,
                "cell": label,
                "event": "ocall.complete",
                "name": event.name,
                "mode": event.mode,
                "latency_cycles": event.latency_cycles,
                "in_bytes": event.in_bytes,
                "out_bytes": event.out_bytes,
            },
        )
        for event in capture.call_events
    ]


def write_events_jsonl(path: str, captures: Sequence["CellCapture"]) -> int:
    """Write every captured bus event as one JSON line; returns the count.

    Line schema: ``{"t_cycles": ..., "cell": ..., "event": ..., <fields>}``.
    The first line is a ``telemetry.schema`` stamp (schema version + repro
    version) so replay tooling can refuse incompatible files.  Per-call
    ``ocall.complete`` lines are synthesized from the call tracer when the
    bus did not capture them itself (the default).  A trailing ``meta``
    line per cell records drop counters and the cell's machine context
    (``n_cpus``, ``freq_hz``, backend stats) so truncated captures are
    visible — and replayable — from the artifact alone.
    """
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"t_cycles": 0.0, "cell": "", "event": "telemetry.schema", **stamp("events-jsonl")}
            )
            + "\n"
        )
        written += 1
        for capture in captures:
            bus_records = (
                (event.t_cycles, dict({"t_cycles": event.t_cycles, "cell": capture.label, "event": event.name}, **event.fields))
                for event in capture.events
            )
            call_records = _synthesized_ocall_records(capture)
            for _, record in heapq.merge(bus_records, call_records, key=lambda item: item[0]):
                handle.write(json.dumps(record, default=str) + "\n")
                written += 1
            snapshot = capture.snapshot
            handle.write(
                json.dumps(
                    {
                        "t_cycles": capture.now_cycles,
                        "cell": capture.label,
                        "event": "telemetry.meta",
                        "events_stored": len(capture.events),
                        "events_dropped": capture.events_dropped,
                        "event_counts": capture.event_counts,
                        "call_events": len(capture.call_events),
                        "n_cpus": snapshot.n_cpus if snapshot is not None else None,
                        "freq_hz": capture.freq_hz,
                        "backend_stats": capture.backend_stats,
                    }
                )
                + "\n"
            )
            written += 1
    return written


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def build_chrome_trace(captures: Sequence["CellCapture"]) -> list[dict]:
    """Trace-event list with one process (pid) per capture."""
    events: list[dict] = []
    for pid, capture in enumerate(captures):
        freq = capture.freq_hz
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": capture.label}}
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _OCALL_TID,
                "args": {"name": "ocalls"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _EVENT_TID,
                "args": {"name": "events"},
            }
        )
        if capture.sched_trace is not None:
            for entry in sched_trace_events(capture.sched_trace, freq):
                entry["pid"] = pid
                events.append(entry)
        for entry in call_trace_events(capture.call_events, freq):
            entry["pid"] = pid
            entry["tid"] = _OCALL_TID
            events.append(entry)
        if capture.worker_timeline:
            events.extend(
                counter_events("active workers", capture.worker_timeline, freq, pid=pid)
            )
        markers = [
            (event.t_cycles, event.name, event.fields)
            for event in capture.events
            if event.name in _INSTANT_EVENTS
        ]
        events.extend(instant_events(markers, freq, pid=pid, tid=_EVENT_TID))
    return events


def write_chrome_trace(path: str, captures: Sequence["CellCapture"]) -> int:
    """Write the combined trace JSON; returns the event count.

    The file uses the trace format's *object* form (``traceEvents`` plus
    top-level metadata) rather than the bare array form — both load in
    ``chrome://tracing``/Perfetto, and the object form carries the schema
    stamp.
    """
    events = build_chrome_trace(captures)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({**stamp("chrome-trace"), "traceEvents": events}, handle)
    return len(events)


# ----------------------------------------------------------------------
# Prometheus-style text
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sanitize_metric_name(name: str) -> str:
    """Rewrite ``name`` into a legal Prometheus metric name.

    Metric names admit only ``[a-zA-Z_:][a-zA-Z0-9_:]*``; every other
    character becomes ``_`` (and a leading digit gains a ``_`` prefix),
    matching what official exporters do with foreign names.
    """
    sanitized = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _labels_text(labels: Iterable[tuple[str, str]], extra: dict[str, str] | None = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(str(value))}"' for key, value in pairs)
    return "{" + body + "}"


def _families(metrics: Iterable[Any]) -> dict[str, list[Any]]:
    """Group metrics by name, preserving registration order.

    The exposition format requires all series of a family to sit together
    under one TYPE header.
    """
    grouped: dict[str, list[Any]] = {}
    for metric in metrics:
        grouped.setdefault(metric.name, []).append(metric)
    return grouped


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    The output opens with schema/version comment lines and a
    ``repro_build_info`` gauge (the ``_info``-metric idiom) so scrapes and
    the regression tooling can identify what produced the file.
    Histograms are rendered summary-style (``quantile`` labels from the
    recorder's p50/p95/p99) plus ``_count`` and ``_sum`` series.  Metric
    names are sanitized to the legal character set and label values are
    backslash-escaped.
    """
    lines: list[str] = [
        f"# repro_schema_version {SCHEMA_VERSION}",
        f"# repro_version {__version__}",
        "# TYPE repro_build_info gauge",
        "repro_build_info"
        + _labels_text(
            [("repro_version", __version__), ("schema_version", str(SCHEMA_VERSION))]
        )
        + " 1",
    ]
    for name, counters in _families(registry.counters).items():
        name = _sanitize_metric_name(name)
        lines.append(f"# TYPE {name} counter")
        for counter in counters:
            lines.append(f"{name}{_labels_text(counter.labels)} {counter.value:g}")
    for name, gauges in _families(registry.gauges).items():
        name = _sanitize_metric_name(name)
        lines.append(f"# TYPE {name} gauge")
        for gauge in gauges:
            lines.append(f"{name}{_labels_text(gauge.labels)} {gauge.value:g}")
    for name, histograms in _families(registry.histograms).items():
        name = _sanitize_metric_name(name)
        lines.append(f"# TYPE {name} summary")
        for histogram in histograms:
            summary = histogram.summary()
            for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                labels = _labels_text(histogram.labels, {"quantile": quantile})
                lines.append(f"{name}{labels} {summary[key]:g}")
            lines.append(f"{name}_count{_labels_text(histogram.labels)} {summary['count']:g}")
            lines.append(
                f"{name}_sum{_labels_text(histogram.labels)} "
                f"{summary['count'] * summary['mean']:g}"
            )
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    """Write :func:`render_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry))


# ----------------------------------------------------------------------
# Cycle-budget table
# ----------------------------------------------------------------------
def render_cycle_budget(captures: Sequence["CellCapture"]) -> str:
    """The per-cell cycle-budget table (wall Mcycles per category)."""
    rows = [
        (capture.label, capture.snapshot.wall_by_category)
        for capture in captures
        if capture.snapshot is not None
    ]
    return format_cycle_budget(rows, CATEGORIES)


def write_cycle_budget(path: str, captures: Sequence["CellCapture"]) -> None:
    """Write :func:`render_cycle_budget` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_cycle_budget(captures) + "\n")
