"""Metrics registry: counters, gauges and histograms with labels.

A thin Prometheus-style metrics surface over the measurement helpers in
:mod:`repro.analysis.metrics`: histograms delegate to
:class:`repro.analysis.metrics.LatencyRecorder` (whose ``summary()``
provides the p50/p95/p99 quantiles the exporters publish), and gauge time
series are summarised with :func:`repro.analysis.metrics.summarize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import LatencyRecorder, summarize

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing value."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time value with an optional sampled time series."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0
    series: list[tuple[float, float]] = field(default_factory=list)

    def set(self, value: float, t_cycles: float | None = None) -> None:
        """Set the gauge; with ``t_cycles`` also appends to the series."""
        self.value = value
        if t_cycles is not None:
            self.series.append((t_cycles, value))

    def summary(self) -> dict[str, float]:
        """Mean/min/max over the sampled series (or the current value)."""
        values = [v for _, v in self.series] if self.series else [self.value]
        return summarize(values)


@dataclass
class Histogram:
    """Distribution metric backed by a :class:`LatencyRecorder`."""

    name: str
    labels: LabelKey = ()
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)

    def observe(self, value: float) -> None:
        """Record one sample/event."""
        self.recorder.record(value)

    def observe_many(self, values: list[float]) -> None:
        """Bulk-record samples."""
        self.recorder.record_many(values)

    def summary(self) -> dict[str, float]:
        """count/mean/p50/p95/p99/max of the observed samples."""
        return self.recorder.summary()


class MetricsRegistry:
    """Keyed store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter with this name and label set."""
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge with this name and label set."""
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram with this name and label set."""
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, key[1])
        return metric

    def merge(self, other: "MetricsRegistry", relabel_cell: dict[str, str] | None = None) -> None:
        """Fold another registry's metrics into this one.

        Used when a pool worker ships its per-cell registry back to the
        parent session (:meth:`repro.telemetry.session.TelemetrySession.
        absorb`): counters add, gauges take the incoming value and extend
        their series, histograms re-observe the incoming samples.

        ``relabel_cell`` remaps the value of the ``cell`` label — the
        parent re-uniquifies capture labels on absorb, and the metrics
        must follow their capture.
        """

        def remap(labels: LabelKey) -> dict[str, str]:
            out = dict(labels)
            if relabel_cell and "cell" in out:
                out["cell"] = relabel_cell.get(out["cell"], out["cell"])
            return out

        for counter in other.counters:
            self.counter(counter.name, **remap(counter.labels)).inc(counter.value)
        for gauge in other.gauges:
            mine = self.gauge(gauge.name, **remap(gauge.labels))
            mine.value = gauge.value
            mine.series.extend(gauge.series)
        for histogram in other.histograms:
            self.histogram(histogram.name, **remap(histogram.labels)).observe_many(
                histogram.recorder.samples_cycles
            )

    @property
    def counters(self) -> list[Counter]:
        """All counters, in registration order."""
        return list(self._counters.values())

    @property
    def gauges(self) -> list[Gauge]:
        """All gauges, in registration order."""
        return list(self._gauges.values())

    @property
    def histograms(self) -> list[Histogram]:
        """All histograms, in registration order."""
        return list(self._histograms.values())
