"""Unified telemetry: cycle-attribution ledger, event bus and exporters.

See ``docs/observability.md`` for the category definitions, the event
schema and the exporter formats.  Typical use::

    from repro import telemetry

    with telemetry.TelemetrySession() as session:
        results = fig8.run(**kwargs)          # stacks attach automatically
    session.export("out/", "fig8")

or end-to-end: ``python -m repro run fig8 --quick --telemetry out/``.
"""

from repro.telemetry.events import EventBus, TelemetryEvent
from repro.telemetry.exporters import (
    build_chrome_trace,
    render_cycle_budget,
    render_prometheus,
    write_chrome_trace,
    write_cycle_budget,
    write_events_jsonl,
    write_prometheus,
)
from repro.telemetry.ledger import (
    BUSY_CATEGORIES,
    CATEGORIES,
    CycleLedger,
    LedgerSnapshot,
    classify,
)
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.schema import SCHEMA_VERSION, SchemaMismatch, check_stamp, stamp
from repro.telemetry.session import CellCapture, TelemetrySession, active_session

__all__ = [
    "BUSY_CATEGORIES",
    "CATEGORIES",
    "CellCapture",
    "Counter",
    "CycleLedger",
    "EventBus",
    "Gauge",
    "Histogram",
    "LedgerSnapshot",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "SchemaMismatch",
    "TelemetryEvent",
    "TelemetrySession",
    "active_session",
    "check_stamp",
    "stamp",
    "build_chrome_trace",
    "classify",
    "render_cycle_budget",
    "render_prometheus",
    "write_chrome_trace",
    "write_cycle_budget",
    "write_events_jsonl",
    "write_prometheus",
]
