"""The cycle-attribution ledger: every simulated cycle has a category.

The paper's headline argument is an accounting identity over wasted
cycles, ``U = F·T_es + M·T`` (§IV-A); this module generalises it to the
*whole* machine.  The DES kernel charges every on-core interval to the
ledger as it credits its busy-cycle counters, keyed by the running
thread's accounting ``kind``, the activity kind (``compute`` vs.
``spin``) and the instruction's tag; the ledger maps each charge to one
of the categories below and can prove conservation: categorised busy
cycles plus idle capacity equals ``kernel.now × n_logical_cpus``.

Two units are tracked per charge:

- **wall** cycles — core occupancy, degraded by nothing (an SMT-slowed
  activity occupies its logical CPU for the full wall duration).  Wall
  cycles are what conservation and the cycle-budget table are stated in.
- **work** cycles — nominal instruction cycles actually retired
  (``wall × smt_speed``).  Work cycles are what the paper's identities
  are stated in: a zc run's ``transition`` work cycles equal exactly
  ``(fallbacks + pool_reallocs) · T_es``.
"""

from __future__ import annotations

from dataclasses import dataclass

# ----------------------------------------------------------------------
# Categories
# ----------------------------------------------------------------------
APP = "app"
HOST_EXEC = "host-exec"
TRANSITION = "transition"
MARSHAL = "marshal"
RUNTIME = "runtime"
CALLER_SPIN = "caller-spin"
WORKER_SPIN = "worker-spin"
SCHED = "sched"
FAULT = "fault"
IDLE = "idle"

#: Busy categories, in cycle-budget column order.
BUSY_CATEGORIES: tuple[str, ...] = (
    APP,
    HOST_EXEC,
    TRANSITION,
    MARSHAL,
    RUNTIME,
    CALLER_SPIN,
    WORKER_SPIN,
    SCHED,
    FAULT,
)

#: Every category, including idle capacity.
CATEGORIES: tuple[str, ...] = BUSY_CATEGORIES + (IDLE,)

#: Thread kinds whose on-CPU time belongs to a switchless worker pool.
WORKER_KINDS = frozenset(
    {"intel-worker", "intel-tworker", "zc-worker", "zc-tworker", "hotcalls-responder"}
)

#: Thread kinds that are runtime schedulers/monitors, not application work.
SCHEDULER_KINDS = frozenset({"zc-scheduler", "monitor"})

#: Enclave boundary crossings (the paper's ``T_es`` per EEXIT+EENTER pair).
TRANSITION_TAGS = frozenset(
    {"eexit", "eenter", "ecall-enter", "ecall-exit", "enclave-create", "enclave-destroy"}
)

#: Argument marshalling and trusted/untrusted memcpy.
MARSHAL_TAGS = frozenset(
    {"marshal-in", "marshal-out", "copy-in", "copy-out", "ocall-setup", "ecall-setup"}
)

#: Switchless-call plumbing (enqueue/dispatch/pickup/complete/wake glue).
RUNTIME_TAGS = frozenset(
    {
        "sl-enqueue",
        "sl-ecall-enqueue",
        "zc-dispatch",
        "zc-pickup",
        "zc-complete",
        "zc-unpause",
        "zc-exit-cleanup",
        "zc-pool-realloc",
        "zc-ecall-dispatch",
        "zc-ecall-pool",
        "worker-pickup",
        "worker-complete",
        "worker-wake",
        "hotcall-publish",
        "hotcall-pickup",
        "hotcall-complete",
        "batch-dispatch",
        "tracer-probe",
    }
)


def classify(thread_kind: str, activity_kind: str, tag: str | None) -> str:
    """Map one kernel charge to its ledger category.

    Precedence: scheduler/monitor threads first (their compute *is*
    scheduling overhead), then spin vs. compute, then the tag tables.
    Unrecognised compute tags default to ``app`` — application logic
    carries workload-specific tags (``kissdb-hash``, ``aes-encrypt``, …)
    that the ledger deliberately does not enumerate.
    """
    if thread_kind in SCHEDULER_KINDS:
        return SCHED
    if activity_kind == "spin":
        return WORKER_SPIN if thread_kind in WORKER_KINDS else CALLER_SPIN
    tag = tag or ""
    if tag.startswith("fault-"):
        # Injected-fault overhead (stalls, enclave re-creation, rejoin
        # resets) — the `fault_overhead` quantity the regression gate
        # bounds; see repro.faults and docs/faults.md.
        return FAULT
    if tag in TRANSITION_TAGS:
        return TRANSITION
    if tag in MARSHAL_TAGS:
        return MARSHAL
    if tag.startswith("host-"):
        return HOST_EXEC
    if tag in RUNTIME_TAGS:
        return RUNTIME
    return APP


@dataclass(frozen=True)
class LedgerSnapshot:
    """The ledger's totals at one instant, with conservation inputs."""

    now_cycles: float
    n_cpus: int
    busy_cycles: float
    wall_by_category: dict[str, float]  # includes "idle"
    work_by_category: dict[str, float]  # busy categories only

    @property
    def capacity_cycles(self) -> float:
        """Total core-cycles the machine offered since time zero."""
        return self.now_cycles * self.n_cpus

    @property
    def idle_cycles(self) -> float:
        """Unoccupied capacity."""
        return self.wall_by_category.get(IDLE, 0.0)

    def conservation_error(self) -> float:
        """|sum of categorised wall cycles − machine capacity|."""
        return abs(sum(self.wall_by_category.values()) - self.capacity_cycles)

    def assert_balanced(self, rel_tol: float = 1e-6) -> None:
        """Raise ``AssertionError`` unless the ledger balances.

        Balanced means the categorised wall cycles (including idle) equal
        the machine's total capacity within ``rel_tol``, i.e. no simulated
        cycle escaped attribution.
        """
        scale = max(self.capacity_cycles, 1.0)
        error = self.conservation_error()
        if error > rel_tol * scale:
            budget = ", ".join(
                f"{cat}={cycles:.0f}" for cat, cycles in sorted(self.wall_by_category.items())
            )
            raise AssertionError(
                f"cycle ledger does not balance: capacity={self.capacity_cycles:.0f}, "
                f"categorised={sum(self.wall_by_category.values()):.0f} "
                f"(error {error:.1f} cycles; {budget})"
            )


class CycleLedger:
    """Accumulates per-(thread kind, activity, tag) cycle charges.

    Installed as ``kernel.ledger``.  The kernel's accounting hot path does
    not touch :attr:`table` at all: it charges into per-thread nested
    dicts (``SimThread.ledger_cells``), which avoids building a key tuple
    on every accounting interval.  :meth:`snapshot` folds those into the
    table via :meth:`fold_thread_cells`; :meth:`charge` is the equivalent
    convenience entry point for everything off the hot path.
    """

    __slots__ = ("table",)

    def __init__(self) -> None:
        #: (thread_kind, activity_kind, tag) -> [wall_cycles, work_cycles].
        self.table: dict[tuple[str, str, str | None], list[float]] = {}

    def charge(
        self, thread_kind: str, activity_kind: str, tag: str | None, wall: float, work: float
    ) -> None:
        """Record ``wall`` occupancy cycles (``work`` nominal) for one charge."""
        table = self.table
        key = (thread_kind, activity_kind, tag)
        cell = table.get(key)
        if cell is None:
            cell = table[key] = [0.0, 0.0]
        cell[0] += wall
        cell[1] += work

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def cells(self) -> dict[tuple[str, str, str | None], tuple[float, float]]:
        """Raw (kind, activity, tag) → (wall, work) charges, for drill-down."""
        return {key: (cell[0], cell[1]) for key, cell in self.table.items()}

    def wall_by_category(self) -> dict[str, float]:
        """Wall cycles per busy category."""
        totals = {cat: 0.0 for cat in BUSY_CATEGORIES}
        for (kind, activity, tag), cell in self.table.items():
            totals[classify(kind, activity, tag)] += cell[0]
        return totals

    def work_by_category(self) -> dict[str, float]:
        """Nominal (SMT-degradation-free) cycles per busy category."""
        totals = {cat: 0.0 for cat in BUSY_CATEGORIES}
        for (kind, activity, tag), cell in self.table.items():
            totals[classify(kind, activity, tag)] += cell[1]
        return totals

    def total_wall_cycles(self) -> float:
        """Sum of all charged wall cycles (= machine busy cycles)."""
        return sum(cell[0] for cell in self.table.values())

    def fold_thread_cells(self, threads) -> None:
        """Merge the kernel's per-thread charges into :attr:`table`.

        The hot path accumulates into ``SimThread.ledger_cells``; folding
        clears each thread's cells so repeated folds never double-count.
        """
        table = self.table
        for thread in threads:
            cells = thread.ledger_cells
            if not cells:
                continue
            thread.ledger_cells = None
            thread_kind = thread.kind
            for activity_kind, by_tag in cells.items():
                for tag, (wall, work) in by_tag.items():
                    key = (thread_kind, activity_kind, tag)
                    cell = table.get(key)
                    if cell is None:
                        table[key] = [wall, work]
                    else:
                        cell[0] += wall
                        cell[1] += work

    def snapshot(self, kernel) -> LedgerSnapshot:
        """Totals plus idle capacity at ``kernel.now`` (flushes accounting)."""
        kernel.flush_accounting()
        self.fold_thread_cells(kernel.threads)
        busy = sum(core.busy_cycles for core in kernel.cpus)
        capacity = kernel.now * len(kernel.cpus)
        wall = self.wall_by_category()
        wall[IDLE] = max(capacity - busy, 0.0)
        return LedgerSnapshot(
            now_cycles=kernel.now,
            n_cpus=len(kernel.cpus),
            busy_cycles=busy,
            wall_by_category=wall,
            work_by_category=self.work_by_category(),
        )
