"""The live ops console: window records rendered as they close.

Refreshes from the same records the sampler rings (its ``on_window``
callback hands them over verbatim), so the live view and the exported
JSONL/HTML views can never disagree.  On a real TTY the panel redraws
in place with ANSI cursor movement; on anything else (CI logs, pipes)
it degrades to one plain line per window.
"""

from __future__ import annotations

import sys
from typing import Any, TextIO


class LiveConsole:
    """Renders closing windows to a terminal (or a plain-line stream).

    Args:
        stream: Output stream (default ``sys.stdout``).
        tty: Force TTY (panel) or plain-line mode; default auto-detects
            via ``stream.isatty()``.
        total_windows: Grid size for the ``window k/N`` header.
        max_lanes: Panel rows; lanes beyond it are elided (the exported
            stream still carries them all).
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        tty: bool | None = None,
        total_windows: int | None = None,
        max_lanes: int = 12,
    ) -> None:
        self.stream = stream if stream is not None else sys.stdout
        if tty is None:
            isatty = getattr(self.stream, "isatty", None)
            tty = bool(isatty()) if callable(isatty) else False
        self.tty = tty
        self.total_windows = total_windows
        self.max_lanes = max_lanes
        self.windows_seen = 0
        self.anomaly_count = 0
        self._panel_height = 0

    # ------------------------------------------------------------------
    # Sampler hook
    # ------------------------------------------------------------------
    def on_window(
        self,
        index: int,
        records: list[dict[str, Any]],
        anomalies: list[dict[str, Any]],
    ) -> None:
        """Sampler ``on_window`` callback: render one closed window."""
        self.windows_seen = index + 1
        self.anomaly_count += len(anomalies)
        if self.tty:
            self._render_panel(index, records, anomalies)
        else:
            self._render_line(index, records, anomalies)

    def finish(self) -> None:
        """Drop below the panel so the end-of-run summary prints clean."""
        if self.tty and self._panel_height:
            self.stream.write("\n")
            self.stream.flush()
            self._panel_height = 0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _row(record: dict[str, Any], flagged: set[str]) -> str:
        occupancy = record.get("occupancy")
        occ = f"{occupancy:4.0%}" if occupancy is not None else "   –"
        depth = record.get("queue_depth")
        queue = f"{depth:3d}" if depth is not None else "  –"
        mark = " !" if record["lane"] in flagged else ""
        return (
            f"{record['lane']:<14.14} {record['throughput_rps']:>9.0f} rps "
            f"p99 {record['p99_us']:>8.1f} µs  q {queue}  occ {occ}  "
            f"shed {record['shed']:>4d}{mark}"
        )

    def _header(self, index: int) -> str:
        total = f"/{self.total_windows}" if self.total_windows else ""
        return (
            f"window {index + 1}{total}  "
            f"anomalies {self.anomaly_count}"
        )

    def _render_panel(
        self,
        index: int,
        records: list[dict[str, Any]],
        anomalies: list[dict[str, Any]],
    ) -> None:
        flagged = {anomaly["lane"] for anomaly in anomalies}
        lines = [self._header(index)]
        shown = records[: self.max_lanes]
        lines.extend(self._row(record, flagged) for record in shown)
        if len(records) > len(shown):
            lines.append(f"… {len(records) - len(shown)} more lanes")
        out = self.stream
        if self._panel_height:
            # Rewind over the previous frame and clear to screen end.
            out.write(f"\x1b[{self._panel_height}F\x1b[J")
        out.write("\n".join(lines) + "\n")
        out.flush()
        self._panel_height = len(lines)

    def _render_line(
        self,
        index: int,
        records: list[dict[str, Any]],
        anomalies: list[dict[str, Any]],
    ) -> None:
        total = next(
            (r for r in records if r["lane"] == "total"),
            records[0] if records else None,
        )
        if total is None:
            return
        suffix = f"  anomalies +{len(anomalies)}" if anomalies else ""
        self.stream.write(
            f"[obs] {self._header(index)}  "
            f"total {total['throughput_rps']:.0f} rps "
            f"p99 {total['p99_us']:.1f} µs "
            f"q {total.get('queue_depth')} "
            f"shed {total['shed']}{suffix}\n"
        )
        self.stream.flush()
