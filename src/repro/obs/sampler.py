"""The windowed metric sampler: bus events → per-interval lane records.

A :class:`MetricSampler` owns a fixed grid of ``n_windows`` intervals of
``interval_cycles`` simulated cycles starting at install time ``t0``.
Window ``k`` covers ``[t0 + k·I, t0 + (k+1)·I)`` — an event timestamped
exactly on a boundary belongs to the *next* window.  Ticks are pure
driver-side :meth:`repro.sim.kernel.Kernel.call_at` callbacks at each
boundary, so sampling costs zero simulated cycles and never perturbs
the schedule it observes.

**Why raw windows exist.**  The sampler accumulates *raw* per-window
data (integer counters, latency sample lists, per-shard wasted cycles)
and formats records from it with :func:`build_window_records`.  The
slice-parallel runner merges the per-slice raw windows with
:func:`merge_raw_windows` (counters sum, samples pool, shard lanes copy
from their owning slice) and formats with the *same* function — so a
sliced run's window stream is byte-identical to the unsliced one.  Two
rules make that hold:

- integer counters may accumulate into any lane at event time (integer
  addition commutes), but *floats* (``u_cycles``, gauges) only ever
  accumulate into their owning shard lane; the total lane derives them
  by summing shard lanes in index order inside the formatter, never in
  arrival order;
- latency percentiles are computed from pooled sample lists
  (sort-based, hence pooling-order independent).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.analysis.metrics import LatencyRecorder
from repro.telemetry.events import TelemetryEvent

#: Default window count when the caller gives a duration but no interval.
DEFAULT_WINDOWS = 10

#: Default bounded ring capacity (formatted records, all lanes pooled).
DEFAULT_MAX_RECORDS = 65_536

#: Integer counters carried by every lane accumulator.
LANE_COUNTERS = (
    "submitted",
    "completed",
    "shed",
    "preempted",
    "failed",
    "faults",
    "sched_decisions",
    "fallbacks",
)

#: Lane naming scheme (documented in docs/observability.md): the fleet
#: aggregate is ``total``, shard lanes are ``shard<i>`` by global index,
#: tenant lanes are ``tenant:<name>`` and appear only in windows where
#: the tenant was active.
TOTAL_LANE = "total"


def shard_lane(index: int) -> str:
    """The lane name for global shard index ``index``."""
    return f"shard{index}"


def tenant_lane(name: str) -> str:
    """The lane name for tenant ``name``."""
    return f"tenant:{name}"


def _new_lane() -> dict[str, Any]:
    lane: dict[str, Any] = {name: 0 for name in LANE_COUNTERS}
    lane["u_cycles"] = 0.0
    lane["latency_cycles"] = []
    return lane


def _source_shard_lane(source: Any) -> str | None:
    """Map an enclave name like ``shard-3`` to its lane (else None)."""
    if isinstance(source, str) and source.startswith("shard-"):
        suffix = source[6:]
        if suffix.isdigit():
            return shard_lane(int(suffix))
    return None


class MetricSampler:
    """Closes fixed-cadence windows over the kernel's telemetry bus.

    Args:
        kernel: The simulation kernel to observe.  If it has no event
            bus, :meth:`install` creates a non-retaining one
            (``max_events=1``) and removes it again on :meth:`detach`.
        interval_cycles: Window width in simulated cycles (> 0).
        n_windows: Number of windows on the grid (>= 1).  The sampler's
            :attr:`horizon` is ``t0 + n_windows · interval_cycles``;
            events past it are tallied in :attr:`spilled` per lane.
        shards: :class:`repro.serve.shard.EnclaveShard` list for gauge
            sampling (queue depth, worker occupancy) and for the static
            shard-lane set.  May be a subset of a larger cluster (the
            slice runner passes only the shards it hosts).
        detector: Optional :class:`repro.obs.anomaly.AnomalyDetector`
            fed each window's records as they close (live path).
        on_window: Optional callback ``(index, records, anomalies)``
            invoked after each window closes — the live console hook.
        max_records: Ring-buffer bound on formatted records (0 =
            unbounded); overflow increments :attr:`dropped_records`.
    """

    def __init__(
        self,
        kernel: Any,
        interval_cycles: float,
        n_windows: int,
        *,
        shards: Any = (),
        detector: Any = None,
        on_window: Callable[[int, list, list], None] | None = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be > 0")
        if n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        if max_records < 0:
            raise ValueError("max_records must be >= 0")
        self.kernel = kernel
        self.interval = float(interval_cycles)
        self.n_windows = int(n_windows)
        self.shards = sorted(shards, key=lambda shard: shard.index)
        self.detector = detector
        self.on_window = on_window
        #: Extra ``(index, records, anomalies)`` subscribers (autoscale
        #: control loop etc.), invoked after :attr:`on_window`.
        self._window_hooks: list[Callable[[int, list, list], None]] = []
        self.t0: float | None = None
        self.horizon: float | None = None
        #: Formatted ``serve.window`` records, bounded ring.
        self.records: deque = deque(maxlen=max_records or None)
        self.dropped_records = 0
        #: Raw per-window accumulators, in window order (merge input).
        self.raw_windows: list[dict[str, Any]] = []
        #: Per-lane counts of events landing past the horizon.
        self.spilled: dict[str, int] = {}
        #: Anomalies the attached detector flagged (live path).
        self.anomalies: list[dict[str, Any]] = []
        self._acc: dict[int, dict[str, dict[str, Any]]] = {}
        #: (shard, tenant) → lane-name list; callers iterate, never mutate.
        self._lane_cache: dict[tuple, list[str]] = {}
        self._t0 = 0.0
        self._closed_windows = 0
        self._bus: Any = None
        self._owns_bus = False
        self._installed = False
        self._detached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def shard_lanes(self) -> list[str]:
        """Static shard-lane names, ascending by global index."""
        return [shard_lane(shard.index) for shard in self.shards]

    def install(self) -> "MetricSampler":
        """Subscribe to the bus and arm one tick timer per boundary."""
        if self._installed:
            raise RuntimeError("sampler already installed")
        self._installed = True
        kernel = self.kernel
        self.t0 = self._t0 = kernel.now
        self.horizon = self.t0 + self.interval * self.n_windows
        bus = kernel.bus
        if bus is None:
            # Emit-only shim, not a full EventBus: every emit site in
            # the simulator pays per call once ``kernel.bus`` is set, so
            # the detached-run path skips event construction, storage
            # and subscriber fan-out entirely and dispatches straight
            # into the sampler (the <10% host-overhead budget lives or
            # dies on this).
            bus = _SamplerBus(kernel, self)
            kernel.bus = bus
            self._owns_bus = True
            self._bus = bus
        else:
            self._bus = bus
            bus.subscribe(self._on_event)
        for index in range(self.n_windows):
            kernel.call_at(
                self.t0 + (index + 1) * self.interval, self._make_tick(index)
            )
        return self

    def detach(self) -> None:
        """Unsubscribe; flush windows the clock never reached.  Idempotent.

        Benchmarks drive the kernel to :attr:`horizon` before detaching,
        so the flush is a no-op there; unit tests that stop early still
        get a complete grid (trailing windows sample end-state gauges).
        """
        if not self._installed or self._detached:
            return
        for index in range(self._closed_windows, self.n_windows):
            self._close_window(index)
        self._detached = True
        if self._bus is not None:
            if self._owns_bus:
                if self.kernel.bus is self._bus:
                    self.kernel.bus = None
            else:
                self._bus.unsubscribe(self._on_event)
            self._bus = None

    def _make_tick(self, index: int) -> Callable[[], None]:
        def tick() -> None:
            if not self._detached:
                self._close_window(index)

        return tick

    def _close_window(self, index: int) -> None:
        if index != self._closed_windows:
            return  # late timer after an early detach already flushed it
        self._closed_windows += 1
        lanes = self._acc.pop(index, None) or {}
        gauges: dict[str, dict[str, Any]] = {}
        for shard in self.shards:
            backend = getattr(shard.enclave, "backend", None)
            active = cap = None
            if backend is not None and hasattr(backend, "active_worker_target"):
                workers = getattr(backend, "workers", None)
                if workers:
                    active = int(backend.active_worker_target)
                    cap = len(workers)
            gauges[shard_lane(shard.index)] = {
                "queue_depth": len(shard.queue),
                "workers_active": active,
                "workers_cap": cap,
            }
        raw = {"window": index, "lanes": lanes, "gauges": gauges}
        self.raw_windows.append(raw)
        records = build_window_records(
            raw,
            interval_cycles=self.interval,
            freq_hz=self.kernel.spec.freq_hz,
            shard_lanes=self.shard_lanes,
        )
        ring = self.records
        for record in records:
            if ring.maxlen is not None and len(ring) == ring.maxlen:
                self.dropped_records += 1
            ring.append(record)
        fresh: list[dict[str, Any]] = []
        if self.detector is not None:
            for record in records:
                fresh.extend(self.detector.observe(record))
            self.anomalies.extend(fresh)
            bus = self._bus
            if bus is not None:
                for anomaly in fresh:
                    bus.emit("obs.anomaly", **anomaly)
        if self.on_window is not None:
            self.on_window(index, records, fresh)
        for hook in self._window_hooks:
            hook(index, records, fresh)

    def add_on_window(self, hook: Callable[[int, list, list], None]) -> None:
        """Subscribe an extra per-window callback (multi-consumer hook).

        Runs after :attr:`on_window` with the same ``(index, records,
        anomalies)`` arguments; subscription order is invocation order.
        """
        self._window_hooks.append(hook)

    # ------------------------------------------------------------------
    # Event accounting
    # ------------------------------------------------------------------
    def _lane_accs(
        self, t_cycles: float, lane_names: list[str]
    ) -> list[dict[str, Any]] | None:
        index = int((t_cycles - self._t0) // self.interval)
        if index >= self.n_windows:
            for name in lane_names:
                self.spilled[name] = self.spilled.get(name, 0) + 1
            return None
        if index < 0:
            index = 0
        window = self._acc.get(index)
        if window is None:
            window = self._acc[index] = {}
        accs = []
        for name in lane_names:
            lane = window.get(name)
            if lane is None:
                lane = window[name] = _new_lane()
            accs.append(lane)
        return accs

    def _bump(
        self, t_cycles: float, counter: str, lane_names: list[str]
    ) -> None:
        accs = self._lane_accs(t_cycles, lane_names)
        if accs is not None:
            for lane in accs:
                lane[counter] += 1

    def _request_lanes(self, fields: dict[str, Any]) -> list[str]:
        shard = fields.get("shard")
        tenant = fields.get("tenant")
        key = (shard, tenant)
        lanes = self._lane_cache.get(key)
        if lanes is None:
            lanes = [TOTAL_LANE]
            if shard is not None and shard != "":
                lanes.append(shard_lane(int(shard)))
            if tenant:
                lanes.append(tenant_lane(tenant))
            self._lane_cache[key] = lanes
        return lanes

    def _on_event(self, event: TelemetryEvent) -> None:
        """Real-bus subscriber (telemetry session owns the bus)."""
        self._dispatch(event.name, event.t_cycles, event.fields)

    def _dispatch(self, name: str, t_cycles: float, fields: dict[str, Any]) -> None:
        handler = _HANDLERS.get(name)
        if handler is not None:
            handler(self, t_cycles, fields)
        elif name.startswith("fault."):
            self._on_fault(t_cycles, fields)

    def _on_submit(self, t_cycles: float, fields: dict[str, Any]) -> None:
        self._bump(t_cycles, "submitted", self._request_lanes(fields))

    def _on_complete(self, t_cycles: float, fields: dict[str, Any]) -> None:
        counter = _STATUS_COUNTERS.get(fields.get("status"))
        if counter is not None:
            self._bump(t_cycles, counter, self._request_lanes(fields))

    def _on_shed(self, t_cycles: float, fields: dict[str, Any]) -> None:
        # Terminal shed counts come from the ``complete`` event; this one
        # only contributes the preemption rate (weighted-fair evictions).
        if fields.get("reason") == "preempted":
            self._bump(t_cycles, "preempted", self._request_lanes(fields))

    def _on_span(self, t_cycles: float, fields: dict[str, Any]) -> None:
        if fields.get("status") != "ok":
            return
        latency = fields["t_complete"] - fields["t_submit"]
        accs = self._lane_accs(t_cycles, self._request_lanes(fields))
        if accs is not None:
            for lane in accs:
                lane["latency_cycles"].append(latency)

    def _on_decision(self, t_cycles: float, fields: dict[str, Any]) -> None:
        owner = _source_shard_lane(fields.get("source"))
        lanes = [TOTAL_LANE, owner] if owner is not None else [TOTAL_LANE]
        accs = self._lane_accs(t_cycles, lanes)
        if accs is None:
            return
        for lane in accs:
            lane["sched_decisions"] += 1
        utilities = fields.get("utilities")
        if utilities:
            # ``chosen`` is a worker *count*, not an index; the scheduler
            # picked the argmin, so the realized wasted-cycle estimate for
            # this decision is min(U_i).  Floats go to the owning shard
            # lane only (the formatter derives the total — see module doc).
            accs[-1]["u_cycles"] += min(utilities)

    def _on_fallback(self, t_cycles: float, fields: dict[str, Any]) -> None:
        # ``zc.fallback`` carries no source, so it lands on the total
        # lane only; per-shard fallback splits stay in the ledger.
        self._bump(t_cycles, "fallbacks", [TOTAL_LANE])

    def _on_shard_fault(self, t_cycles: float, fields: dict[str, Any]) -> None:
        shard = fields.get("shard")
        lanes = [TOTAL_LANE]
        if shard is not None and shard != "":
            lanes.append(shard_lane(int(shard)))
        self._bump(t_cycles, "faults", lanes)

    def _on_fault(self, t_cycles: float, fields: dict[str, Any]) -> None:
        owner = _source_shard_lane(fields.get("target"))
        lanes = [TOTAL_LANE, owner] if owner is not None else [TOTAL_LANE]
        self._bump(t_cycles, "faults", lanes)


class _SamplerBus:
    """Emit-only ``kernel.bus`` stand-in for telemetry-detached runs.

    Implements just the ``emit(name, **fields)`` surface the simulator's
    emit sites use (they all guard with ``bus is not None`` and call
    nothing else).  Skipping :class:`~repro.telemetry.events.EventBus`'s
    event construction, ring storage and subscriber fan-out keeps the
    sampler's host overhead on unsampled events down to one dict miss.
    """

    __slots__ = ("_kernel", "_sampler")

    #: Flag surface some emit sites consult before building call/sched
    #: event payloads — always off here (the sampler ignores both).
    capture_calls = False
    capture_sched = False

    def __init__(self, kernel: Any, sampler: "MetricSampler") -> None:
        self._kernel = kernel
        self._sampler = sampler

    def emit(self, name: str, /, **fields: Any) -> None:
        # Hand-inlined MetricSampler._dispatch: this is the hot path for
        # every emit site in a detached run, handled or not.
        handler = _HANDLERS.get(name)
        if handler is not None:
            handler(self._sampler, self._kernel.now, fields)
        elif name.startswith("fault."):
            self._sampler._on_fault(self._kernel.now, fields)


_STATUS_COUNTERS = {"ok": "completed", "shed": "shed", "failed": "failed"}

_HANDLERS: dict[str, Callable[[MetricSampler, float, dict], None]] = {
    "serve.request.submit": MetricSampler._on_submit,
    "serve.request.complete": MetricSampler._on_complete,
    "serve.request.shed": MetricSampler._on_shed,
    "serve.request.span": MetricSampler._on_span,
    "serve.shard.quarantine": MetricSampler._on_shard_fault,
    "serve.shard.readmit": MetricSampler._on_shard_fault,
    "serve.shard.dead": MetricSampler._on_shard_fault,
    "zc.sched.decision": MetricSampler._on_decision,
    "zc.fallback": MetricSampler._on_fallback,
}


# ----------------------------------------------------------------------
# Record formatting (shared by the live sampler and the slice merge)
# ----------------------------------------------------------------------
def build_window_records(
    raw: dict[str, Any],
    *,
    interval_cycles: float,
    freq_hz: float,
    shard_lanes: list[str],
) -> list[dict[str, Any]]:
    """Format one raw window into ``serve.window`` records, one per lane.

    Lane order is fixed: ``total``, then ``shard_lanes`` as given
    (ascending global index), then active tenant lanes sorted by name.
    The total lane's floats (``u_cycles``, gauges, ``occupancy``) are
    derived here by summing shard lanes in that order — the only float
    additions in the pipeline, so a slice merge that reassembles the
    same shard lanes reproduces the total bit-for-bit.

    Record timestamps are *grid-relative* (window ``k`` starts at
    ``k·I``): the grid origin is the load-start instant, which shifts
    with cluster startup cost, and only load-relative time is
    comparable across slicing layouts.  Latency and wasted-cycle floats
    are rounded to fixed decimals for the same reason — a rigid
    timeline shift perturbs the last ulp of cycle timestamps, and the
    bit-identity contract must not hang on it.
    """
    index = raw["window"]
    lanes = raw["lanes"]
    gauges = raw.get("gauges", {})
    t_start = index * interval_cycles
    window_s = interval_cycles / freq_hz
    tenant_lanes = sorted(name for name in lanes if name.startswith("tenant:"))
    records = []
    for name in [TOTAL_LANE, *shard_lanes, *tenant_lanes]:
        lane = lanes.get(name)
        if lane is None:
            lane = _new_lane()
        samples = lane["latency_cycles"]
        if samples:
            recorder = LatencyRecorder()
            recorder.record_many(samples)
            # Rounded to ns resolution: cycle timestamps carry ulp-level
            # jitter between slicing layouts (rigid timeline shift), far
            # below anything physically meaningful.
            p50_us = round(recorder.percentile(50.0) / freq_hz * 1e6, 3)
            p99_us = round(recorder.percentile(99.0) / freq_hz * 1e6, 3)
        else:
            p50_us = p99_us = 0.0
        if name == TOTAL_LANE:
            u_cycles = lane["u_cycles"]  # unattributed remainder only
            queue_depth: int | None = 0
            active_sum: int | None = 0
            cap_sum: int | None = 0
            if not shard_lanes:
                queue_depth = active_sum = cap_sum = None
            for shard_name in shard_lanes:
                u_cycles += (lanes.get(shard_name) or {}).get("u_cycles", 0.0)
                gauge = gauges.get(shard_name) or {}
                depth = gauge.get("queue_depth")
                queue_depth = (
                    None if depth is None or queue_depth is None
                    else queue_depth + depth
                )
                active = gauge.get("workers_active")
                active_sum = (
                    None if active is None or active_sum is None
                    else active_sum + active
                )
                cap = gauge.get("workers_cap")
                cap_sum = (
                    None if cap is None or cap_sum is None else cap_sum + cap
                )
        elif name in gauges:
            u_cycles = lane["u_cycles"]
            gauge = gauges[name]
            queue_depth = gauge.get("queue_depth")
            active_sum = gauge.get("workers_active")
            cap_sum = gauge.get("workers_cap")
        else:
            u_cycles = lane["u_cycles"]
            queue_depth = active_sum = cap_sum = None
        occupancy = (
            active_sum / cap_sum
            if active_sum is not None and cap_sum
            else None
        )
        records.append(
            {
                "record": "serve.window",
                "window": index,
                "lane": name,
                "t_start_cycles": t_start,
                "t_end_cycles": t_start + interval_cycles,
                "submitted": lane["submitted"],
                "completed": lane["completed"],
                "shed": lane["shed"],
                "preempted": lane["preempted"],
                "failed": lane["failed"],
                "throughput_rps": lane["completed"] / window_s,
                "latency_count": len(samples),
                "p50_us": p50_us,
                "p99_us": p99_us,
                "queue_depth": queue_depth,
                "workers_active": active_sum,
                "workers_cap": cap_sum,
                "occupancy": occupancy,
                "faults": lane["faults"],
                "sched_decisions": lane["sched_decisions"],
                "fallbacks": lane["fallbacks"],
                "u_cycles": round(u_cycles, 3),
            }
        )
    return records


def merge_raw_windows(
    slice_raw_windows: list[list[dict[str, Any]]],
) -> list[dict[str, Any]]:
    """Superpose per-slice raw window lists (given in slice order).

    Every slice observed the same window grid, so the merge is
    window-by-window: integer counters sum, latency samples pool in
    slice order (percentiles are sort-based, so pooling order cannot
    show), shard lanes and their gauges copy from the one slice that
    hosts the shard, and the total lane's floats stay derived — the
    formatter recomputes them from the reassembled shard lanes.
    """
    if not slice_raw_windows:
        raise ValueError("nothing to merge")
    n_windows = len(slice_raw_windows[0])
    if any(len(windows) != n_windows for windows in slice_raw_windows):
        raise ValueError("slices disagree on the window count")
    merged: list[dict[str, Any]] = []
    for index in range(n_windows):
        lanes: dict[str, dict[str, Any]] = {}
        gauges: dict[str, dict[str, Any]] = {}
        for windows in slice_raw_windows:
            raw = windows[index]
            if raw["window"] != index:
                raise ValueError("slice window stream out of order")
            for name, lane in raw["lanes"].items():
                if name.startswith("shard"):
                    lanes[name] = lane  # single owner slice
                    continue
                target = lanes.get(name)
                if target is None:
                    target = lanes[name] = _new_lane()
                for counter in LANE_COUNTERS:
                    target[counter] += lane[counter]
                target["u_cycles"] += lane["u_cycles"]
                target["latency_cycles"].extend(lane["latency_cycles"])
            gauges.update(raw.get("gauges", {}))
        merged.append({"window": index, "lanes": lanes, "gauges": gauges})
    return merged


def merge_spilled(per_slice: list[dict[str, int]]) -> dict[str, int]:
    """Sum per-lane spill counters across slices."""
    merged: dict[str, int] = {}
    for spilled in per_slice:
        for lane, count in spilled.items():
            merged[lane] = merged.get(lane, 0) + count
    return merged
