"""Window-stream export: stamped JSONL and a self-contained HTML report.

The JSONL stream is the committed artifact form: a stamped
``obs-windows`` header line, then one ``serve.window`` record per
window × lane, then the ``obs.anomaly`` records.  The HTML report is
rendered *from the same records* (inline SVG sparklines, zero external
dependencies), so the dashboard can never disagree with the artifact.
"""

from __future__ import annotations

import html
import json
import os
from typing import Any

from repro.telemetry.schema import check_stamp, stamp

#: Schema-stamp artifact kind for window streams (see telemetry.schema).
OBS_ARTIFACT = "obs-windows"

#: Metrics charted per lane in the HTML report, with display labels.
REPORT_METRICS = (
    ("throughput_rps", "throughput (rps)"),
    ("p99_us", "p99 latency (µs)"),
    ("queue_depth", "queue depth"),
    ("shed", "shed"),
    ("occupancy", "worker occupancy"),
    ("u_cycles", "wasted cycles U"),
)


def obs_stream_header(obs: dict[str, Any]) -> dict[str, Any]:
    """The stamped JSONL header line for an ``obs`` result section."""
    return {
        **stamp(OBS_ARTIFACT),
        "interval_cycles": obs["interval_cycles"],
        "windows": obs["windows"],
        "freq_hz": obs["freq_hz"],
        "lanes": list(obs["lanes"]),
    }


def render_windows_jsonl(obs: dict[str, Any]) -> str:
    """Render an ``obs`` section as the stamped JSONL window stream."""
    lines = [json.dumps(obs_stream_header(obs), sort_keys=True)]
    for record in obs["records"]:
        lines.append(json.dumps(record, sort_keys=True))
    for anomaly in obs.get("anomalies", []):
        lines.append(json.dumps(anomaly, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_windows_jsonl(obs: dict[str, Any], path: str) -> str:
    """Write the JSONL window stream; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_windows_jsonl(obs))
    return path


def load_windows_jsonl(path: str) -> dict[str, Any]:
    """Load a JSONL window stream back into an ``obs``-shaped section."""
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty window stream")
    header = json.loads(lines[0])
    check_stamp(header, OBS_ARTIFACT, source=path)
    records: list[dict[str, Any]] = []
    anomalies: list[dict[str, Any]] = []
    for line in lines[1:]:
        doc = json.loads(line)
        kind = doc.get("record")
        if kind == "serve.window":
            records.append(doc)
        elif kind == "obs.anomaly":
            anomalies.append(doc)
        else:
            raise ValueError(f"{path}: unknown record kind {kind!r}")
    return {
        "interval_cycles": header["interval_cycles"],
        "windows": header["windows"],
        "freq_hz": header["freq_hz"],
        "lanes": header["lanes"],
        "records": records,
        "anomalies": anomalies,
    }


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
def _sparkline(
    values: list[float | None],
    marks: set[int],
    width: int = 260,
    height: int = 40,
) -> str:
    """One inline-SVG sparkline; ``marks`` are anomalous window indexes."""
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if not points:
        return "<svg class='spark' width='%d' height='%d'></svg>" % (
            width,
            height,
        )
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span = (hi - lo) or 1.0
    n = max(len(values) - 1, 1)

    def xy(i: int, v: float) -> tuple[float, float]:
        x = 4 + (width - 8) * i / n
        y = height - 6 - (height - 12) * (v - lo) / span
        return x, y

    polyline = " ".join("%.1f,%.1f" % xy(i, v) for i, v in points)
    dots = "".join(
        "<circle cx='%.1f' cy='%.1f' r='3' class='anom'/>" % xy(i, v)
        for i, v in points
        if i in marks
    )
    return (
        "<svg class='spark' width='%d' height='%d'>"
        "<polyline points='%s' fill='none'/>%s</svg>"
        % (width, height, polyline, dots)
    )


def _fmt(value: Any) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def render_html_report(
    obs: dict[str, Any], title: str = "serve window stream"
) -> str:
    """Render the sparkline dashboard as one self-contained HTML page."""
    by_lane: dict[str, list[dict[str, Any]]] = {}
    for record in obs["records"]:
        by_lane.setdefault(record["lane"], []).append(record)
    anomalous: dict[tuple[str, str], set[int]] = {}
    for anomaly in obs.get("anomalies", []):
        anomalous.setdefault(
            (anomaly["lane"], anomaly["metric"]), set()
        ).add(anomaly["window"])
    sections = []
    for lane in obs["lanes"]:
        records = sorted(by_lane.get(lane, []), key=lambda r: r["window"])
        cells = []
        for metric, label in REPORT_METRICS:
            values = [record.get(metric) for record in records]
            marks = anomalous.get((lane, metric), set())
            last = next(
                (v for v in reversed(values) if v is not None), None
            )
            cells.append(
                "<td><div class='label'>%s</div>%s"
                "<div class='last'>last %s · %d alarms</div></td>"
                % (
                    html.escape(label),
                    _sparkline(values, marks),
                    _fmt(last),
                    len(marks),
                )
            )
        sections.append(
            "<h2>%s</h2><table><tr>%s</tr></table>"
            % (html.escape(lane), "".join(cells))
        )
    anomaly_rows = "".join(
        "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td>"
        "<td>%s</td><td>%s</td></tr>"
        % (
            a["window"],
            html.escape(a["lane"]),
            html.escape(a["metric"]),
            html.escape(a["kind"]),
            _fmt(a["value"]),
            _fmt(a["score"]),
        )
        for a in obs.get("anomalies", [])
    )
    anomaly_table = (
        "<h2>anomalies</h2><table class='anoms'><tr><th>window</th>"
        "<th>lane</th><th>metric</th><th>kind</th><th>value</th>"
        "<th>score</th></tr>%s</table>" % anomaly_rows
        if anomaly_rows
        else "<h2>anomalies</h2><p>none detected</p>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>%(title)s</title><style>"
        "body{font:13px/1.4 system-ui,sans-serif;margin:24px;"
        "color:#1a1a2e}"
        "h1{font-size:18px}h2{font-size:14px;margin:18px 0 4px}"
        "table{border-collapse:collapse}td,th{padding:4px 10px;"
        "vertical-align:top;text-align:left}"
        ".spark polyline{stroke:#2563eb;stroke-width:1.5}"
        ".spark .anom,circle.anom{fill:#dc2626}"
        ".label{font-weight:600}.last{color:#666;font-size:11px}"
        ".anoms td,.anoms th{border-bottom:1px solid #ddd}"
        "</style></head><body><h1>%(title)s</h1>"
        "<p>%(windows)d windows × %(interval).3g cycles "
        "(%(window_ms).3g ms each) · lanes: %(lanes)s · "
        "%(n_anomalies)d anomalies</p>%(sections)s%(anomaly_table)s"
        "</body></html>"
        % {
            "title": html.escape(title),
            "windows": obs["windows"],
            "interval": obs["interval_cycles"],
            "window_ms": obs["interval_cycles"] / obs["freq_hz"] * 1e3,
            "lanes": html.escape(", ".join(obs["lanes"])),
            "n_anomalies": len(obs.get("anomalies", [])),
            "sections": "".join(sections),
            "anomaly_table": anomaly_table,
        }
    )


def write_html_report(
    obs: dict[str, Any], path: str, title: str = "serve window stream"
) -> str:
    """Write the HTML dashboard; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html_report(obs, title=title))
    return path
