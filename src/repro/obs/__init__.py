"""Windowed time-series observability for the serve layer.

``repro.obs`` turns the end-of-run telemetry stream into *per-interval*
visibility: a :class:`MetricSampler` subscribes to the kernel's event
bus and closes fixed-cadence windows of the simulated clock, producing
``serve.window`` records (throughput, latency percentiles, queue depth,
worker occupancy, shed/preempt rate, faults and wasted cycles ``U``)
with per-shard and per-tenant lanes.  An online
:class:`AnomalyDetector` (EWMA bands + CUSUM changepoints, both
deterministic) watches the stream and flags ``obs.anomaly`` events.

The window records are explicitly the sensor feed a future autoscaling
control plane will consume: every quantity the paper's §IV-A argmin
objective needs (fallback count, worker occupancy, wasted cycles) is on
the record.

Determinism contract: same seed and parameters ⇒ byte-identical window
and anomaly streams, across reruns and across ``--slices N`` vs
unsliced (see :func:`merge_raw_windows` for why).
"""

from repro.obs.anomaly import AnomalyDetector
from repro.obs.baseline import (
    compare_obs_baseline,
    load_obs_baseline,
    obs_snapshot,
    run_obs_scenario,
    write_obs_snapshot,
)
from repro.obs.console import LiveConsole
from repro.obs.export import (
    OBS_ARTIFACT,
    load_windows_jsonl,
    render_html_report,
    render_windows_jsonl,
    write_html_report,
    write_windows_jsonl,
)
from repro.obs.sampler import (
    MetricSampler,
    build_window_records,
    merge_raw_windows,
)

__all__ = [
    "AnomalyDetector",
    "LiveConsole",
    "MetricSampler",
    "OBS_ARTIFACT",
    "build_window_records",
    "compare_obs_baseline",
    "load_obs_baseline",
    "load_windows_jsonl",
    "merge_raw_windows",
    "obs_snapshot",
    "render_html_report",
    "render_windows_jsonl",
    "run_obs_scenario",
    "write_html_report",
    "write_obs_snapshot",
    "write_windows_jsonl",
]
