"""Committed window-stream baselines and the ``repro diff`` gate.

``baselines/obs-quick.json`` snapshots the quick serve scenario's whole
window stream.  The gate re-runs the scenario from the snapshot's own
``params`` (simulated runs are deterministic, so any drift is a real
behavior change) and compares window counts, lane coverage, anomaly
verdicts and the completion totals.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.telemetry.schema import check_stamp, stamp

from repro.obs.export import OBS_ARTIFACT

#: Serve-bench parameters a snapshot records (and the re-run consumes).
SCENARIO_PARAMS = (
    "shards",
    "seconds",
    "backend",
    "rate",
    "policy",
    "admission",
    "queue_capacity",
    "servers_per_shard",
    "budget",
    "plan",
    "keydist",
    "keyspace",
    "set_fraction",
    "seed",
    "tenants",
    "obs_interval",
)


def obs_snapshot(result: dict[str, Any]) -> dict[str, Any]:
    """Build a committable snapshot from a serve-bench result with obs."""
    obs = result.get("obs")
    if obs is None:
        raise ValueError("result has no obs section (run with obs=True)")
    params = dict(result["params"])
    params["obs_interval"] = obs["interval_cycles"]
    total_completed = sum(
        record["completed"]
        for record in obs["records"]
        if record["lane"] == "total"
    )
    return {
        "meta": stamp(OBS_ARTIFACT),
        "params": {name: params.get(name) for name in SCENARIO_PARAMS},
        "windows": obs["windows"],
        "interval_cycles": obs["interval_cycles"],
        "freq_hz": obs["freq_hz"],
        "lanes": list(obs["lanes"]),
        "summary": {
            "records": len(obs["records"]),
            "completed": total_completed,
            "anomalies": len(obs["anomalies"]),
        },
        "records": list(obs["records"]),
        "anomalies": list(obs["anomalies"]),
    }


def write_obs_snapshot(snapshot: dict[str, Any], path: str) -> str:
    """Write a snapshot as JSON; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_obs_baseline(path: str) -> dict[str, Any]:
    """Load and stamp-check a committed obs baseline."""
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    check_stamp(baseline.get("meta", {}), OBS_ARTIFACT, source=path)
    return baseline


def run_obs_scenario(params: dict[str, Any]) -> dict[str, Any]:
    """Re-run the serve scenario a snapshot's ``params`` describe."""
    # Local import: repro.serve.bench imports repro.obs for the sampler.
    from repro.api import BenchSpec, ServeSpec
    from repro.serve.bench import run_bench

    tenants = params.get("tenants")
    spec = BenchSpec(
        serve=ServeSpec(
            shards=params.get("shards", 2),
            backend=params.get("backend", "zc"),
            policy=params.get("policy", "hash"),
            admission=params.get("admission", "shed"),
            queue_capacity=params.get("queue_capacity", 64),
            servers_per_shard=params.get("servers_per_shard", 2),
            budget=params.get("budget"),
            plan=params.get("plan"),
            tenants=tuple(sorted(tenants.items())) if tenants else None,
        ),
        seconds=params.get("seconds", 0.05),
        rate=params.get("rate", 2_000.0),
        keydist=params.get("keydist", "uniform"),
        keyspace=params.get("keyspace", 256),
        set_fraction=params.get("set_fraction", 1.0 / 3.0),
        seed=params.get("seed", 0),
        obs=True,
        obs_interval=params.get("obs_interval"),
    )
    return run_bench(spec, telemetry=False)


def _anomaly_key(anomaly: dict[str, Any]) -> tuple[Any, ...]:
    return (
        anomaly["window"],
        anomaly["lane"],
        anomaly["metric"],
        anomaly["kind"],
    )


def compare_obs_baseline(
    snapshot: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.05,
) -> list[str]:
    """Gate a fresh snapshot against a committed one; returns violations.

    Exact gates (window grid, lane coverage, record count, anomaly
    verdicts) catch structural drift; the completion total gets a
    relative ``threshold`` band to absorb intentional model changes.
    """
    violations: list[str] = []
    if snapshot["windows"] != baseline["windows"]:
        violations.append(
            f"window count changed: {snapshot['windows']} vs baseline "
            f"{baseline['windows']}"
        )
    if snapshot["interval_cycles"] != baseline["interval_cycles"]:
        violations.append(
            f"window interval changed: {snapshot['interval_cycles']} vs "
            f"baseline {baseline['interval_cycles']}"
        )
    if list(snapshot["lanes"]) != list(baseline["lanes"]):
        violations.append(
            f"lane coverage changed: {snapshot['lanes']} vs baseline "
            f"{baseline['lanes']}"
        )
    new_summary = snapshot["summary"]
    old_summary = baseline["summary"]
    if new_summary["records"] != old_summary["records"]:
        violations.append(
            f"record count changed: {new_summary['records']} vs baseline "
            f"{old_summary['records']}"
        )
    new_keys = [_anomaly_key(a) for a in snapshot["anomalies"]]
    old_keys = [_anomaly_key(a) for a in baseline["anomalies"]]
    if new_keys != old_keys:
        gone = [key for key in old_keys if key not in new_keys]
        fresh = [key for key in new_keys if key not in old_keys]
        violations.append(
            "anomaly verdicts changed: "
            f"missing {gone or 'none'}, new {fresh or 'none'}"
        )
    old_completed = old_summary["completed"]
    new_completed = new_summary["completed"]
    if old_completed and abs(new_completed - old_completed) > (
        threshold * old_completed
    ):
        violations.append(
            f"windowed completions moved: {new_completed} vs baseline "
            f"{old_completed} (> {threshold:.0%})"
        )
    return violations
