"""Online anomaly detection over the window stream.

Two deterministic detectors per ``(lane, metric)`` pair, both driven by
the same exponentially-weighted running moments:

- **EWMA band** — the running mean/variance (à la RFC 6298 / Welford
  with exponential forgetting) give a z-score for each new value;
  ``|z| > z_threshold`` after warm-up flags an ``ewma-band`` anomaly.
- **CUSUM changepoint** — two one-sided cumulative sums of the z-score
  (``s⁺ = max(0, s⁺ + z − k)``, ``s⁻ = max(0, s⁻ − z − k)``) accumulate
  persistent drift the band test's pointwise view misses; crossing
  ``h`` flags a ``cusum-changepoint`` and resets both sums.

Everything is plain float arithmetic over the record stream in record
order — no clocks, no randomness — so the same window stream always
yields the same anomaly stream, which is what lets sliced runs recompute
anomalies over the merged stream and match the unsliced run exactly.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

#: Window-record metrics watched by default.  ``shed`` rather than
#: ``shed_rate``: the raw count is integer-exact across slice merges.
DEFAULT_METRICS = ("throughput_rps", "p99_us", "queue_depth", "shed")

#: EWMA forgetting factor (weight of the newest observation).
DEFAULT_ALPHA = 0.3
#: Band half-width in standard deviations.
DEFAULT_Z_THRESHOLD = 3.0
#: Observations per (lane, metric) before either test may alarm.
DEFAULT_WARMUP = 8
#: CUSUM drift allowance (in z units) and alarm threshold.
DEFAULT_CUSUM_K = 0.5
DEFAULT_CUSUM_H = 5.0


class _SeriesState:
    __slots__ = ("mean", "var", "count", "s_pos", "s_neg")

    def __init__(self) -> None:
        self.mean = 0.0
        self.var = 0.0
        self.count = 0
        self.s_pos = 0.0
        self.s_neg = 0.0


class AnomalyDetector:
    """Feeds ``serve.window`` records through EWMA-band + CUSUM tests.

    :meth:`observe` is incremental (one record at a time, in stream
    order) and returns the anomalies that record triggered;
    :attr:`anomalies` accumulates them all.  Use one detector per
    stream — state is keyed by ``(lane, metric)``.
    """

    def __init__(
        self,
        metrics: Iterable[str] = DEFAULT_METRICS,
        *,
        alpha: float = DEFAULT_ALPHA,
        z_threshold: float = DEFAULT_Z_THRESHOLD,
        warmup: int = DEFAULT_WARMUP,
        cusum_k: float = DEFAULT_CUSUM_K,
        cusum_h: float = DEFAULT_CUSUM_H,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.metrics = tuple(metrics)
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.cusum_k = cusum_k
        self.cusum_h = cusum_h
        self.anomalies: list[dict[str, Any]] = []
        self._series: dict[tuple[str, str], _SeriesState] = {}

    def observe(self, record: dict[str, Any]) -> list[dict[str, Any]]:
        """Consume one window record; returns the anomalies it triggered."""
        out: list[dict[str, Any]] = []
        lane = record["lane"]
        for metric in self.metrics:
            value = record.get(metric)
            if value is None:
                continue
            value = float(value)
            state = self._series.get((lane, metric))
            if state is None:
                state = self._series[(lane, metric)] = _SeriesState()
            warm = state.count >= self.warmup
            if state.count == 0:
                z = 0.0
            else:
                # Variance floor scaled to the mean: a dead-flat series
                # followed by any jump must alarm, not divide by zero.
                floor = 1e-9 * max(1.0, abs(state.mean))
                z = (value - state.mean) / max(math.sqrt(state.var), floor)
            if warm and abs(z) > self.z_threshold:
                out.append(
                    self._anomaly(record, lane, metric, "ewma-band", value,
                                  state.mean, z, abs(z))
                )
            if warm:
                state.s_pos = max(0.0, state.s_pos + z - self.cusum_k)
                state.s_neg = max(0.0, state.s_neg - z - self.cusum_k)
                if state.s_pos > self.cusum_h or state.s_neg > self.cusum_h:
                    score = max(state.s_pos, state.s_neg)
                    out.append(
                        self._anomaly(record, lane, metric,
                                      "cusum-changepoint", value,
                                      state.mean, z, score)
                    )
                    state.s_pos = 0.0
                    state.s_neg = 0.0
            diff = value - state.mean
            incr = self.alpha * diff
            state.mean += incr
            state.var = (1.0 - self.alpha) * (state.var + diff * incr)
            state.count += 1
        self.anomalies.extend(out)
        return out

    def observe_all(
        self, records: Iterable[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Consume a whole record stream; returns every anomaly raised."""
        out: list[dict[str, Any]] = []
        for record in records:
            out.extend(self.observe(record))
        return out

    @staticmethod
    def _anomaly(
        record: dict[str, Any],
        lane: str,
        metric: str,
        kind: str,
        value: float,
        mean: float,
        z: float,
        score: float,
    ) -> dict[str, Any]:
        return {
            "record": "obs.anomaly",
            "lane": lane,
            "metric": metric,
            "kind": kind,
            "window": record["window"],
            "t_cycles": record["t_end_cycles"],
            "value": value,
            "mean": mean,
            "z": z,
            "score": score,
        }
