"""Per-lane EWMA arrival forecasting over the obs window stream.

The controller feeds each closed window's per-lane ``submitted`` counts
into an :class:`EwmaForecaster`; the smoothed level is the forecast for
the *next* window.  EWMA is deliberately the whole model: the window
stream is deterministic, the controller re-plans every window anyway,
and a one-parameter forecaster keeps the control loop auditable (the
``autoscale.decision`` event records the exact forecast it acted on).
"""

from __future__ import annotations


class EwmaForecaster:
    """Exponentially-weighted moving average per named lane.

    Args:
        alpha: Smoothing factor in ``(0, 1]``; 1 trusts only the latest
            observation.
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._levels: dict[str, float] = {}

    def observe(self, lane: str, value: float) -> float:
        """Fold one observation into ``lane``; returns the new level.

        The first observation seeds the level directly (no warm-up bias
        toward zero).
        """
        previous = self._levels.get(lane)
        level = (
            float(value)
            if previous is None
            else self.alpha * float(value) + (1.0 - self.alpha) * previous
        )
        self._levels[lane] = level
        return level

    def forecast(self, lane: str, default: float = 0.0) -> float:
        """The smoothed level for ``lane`` (``default`` if never seen)."""
        return self._levels.get(lane, default)

    def lanes(self) -> list[str]:
        """Every lane observed so far, sorted."""
        return sorted(self._levels)
