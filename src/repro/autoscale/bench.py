"""The diurnal acceptance sweep: autoscale vs the static grid.

The claim under test (and under CI gate): on the committed
``diurnal-kv`` trace, the elastic control plane achieves a *lower
fleet-level cycles-per-request* than every static (shards ×
worker-budget) configuration in the sweep grid, at equal-or-better p99.
Cycles-per-request here is the artifact's ``fleet`` section — server
threads and the integrated worker-budget cap for the whole run, plus
the modeled enclave create/teardown cost of any scaling — divided by
completed requests.  A static fleet pays for its peak-sized
provisioning through the diurnal trough; the autoscaler pays the
enclave-lifecycle price to track the curve instead.

Every arm replays the identical committed trace bytes with the same
dispatch model, so the comparison is pure provisioning policy.  The
sweep artifact (``autoscale-sweep``) embeds its own gate verdict, and
``baselines/autoscale-diurnal.json`` pins it for ``repro diff``.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.api import AutoscaleSpec, BenchSpec
from repro.telemetry.schema import check_stamp, stamp

#: Artifact kind of a sweep result / committed sweep baseline.
AUTOSCALE_ARTIFACT = "autoscale-sweep"

#: The scenario the acceptance gate runs on.
DEFAULT_SCENARIO = "diurnal-kv"

#: Relative slack on the "equal-or-better p99" half of the gate: the
#: percentile estimator quantizes on sample boundaries, so bit-exact
#: equality is the expectation and anything beyond ~2% is a real tail
#: regression.
P99_TOLERANCE = 0.02

#: The static (shards × worker-budget) grid the autoscaler must beat.
STATIC_GRID: tuple[tuple[int, int], ...] = ((2, 8), (4, 16), (6, 24))


def sweep_specs(
    scenario: str = DEFAULT_SCENARIO,
    *,
    static_grid: tuple[tuple[int, int], ...] = STATIC_GRID,
) -> list[tuple[str, BenchSpec]]:
    """The sweep's arms: one autoscaled spec plus the static grid.

    Every arm shares the scenario trace, queue shape and dispatch model;
    only the provisioning policy differs.  Names are stable (they key
    the artifact's ``arms`` map and the baseline compare).
    """
    from repro.scenarios.replay import replay_spec

    arms: list[tuple[str, BenchSpec]] = [
        (
            "autoscale",
            replay_spec(
                scenario,
                shards=2,
                budget=None,
                autoscale=AutoscaleSpec(
                    min_shards=1,
                    max_shards=6,
                    worker_options=(1, 2, 4),
                    batch_options=(1, 2, 4),
                ),
            ),
        )
    ]
    for shards, budget in static_grid:
        arms.append(
            (
                f"static-{shards}x{budget}",
                replay_spec(scenario, shards=shards, budget=budget),
            )
        )
    return arms


def _arm_summary(result: dict[str, Any]) -> dict[str, Any]:
    totals = result["totals"]
    fleet = result.get("fleet") or {}
    summary = {
        "issued": totals.get("issued"),
        "completed": totals.get("completed"),
        "shed": totals.get("shed"),
        "p50_us": (totals.get("latency_us") or {}).get("p50"),
        "p99_us": (totals.get("latency_us") or {}).get("p99"),
        "provisioned_cycles": fleet.get("provisioned_cycles"),
        "cycles_per_request": fleet.get("cycles_per_request"),
        "shards_spawned": fleet.get("shards_spawned"),
        "shards_retired": fleet.get("shards_retired"),
    }
    autoscale = result.get("autoscale")
    if autoscale is not None:
        summary["autoscale"] = {
            "windows": autoscale["windows"],
            "spawns": autoscale["spawns"],
            "retires": autoscale["retires"],
            "suppressed_spawns": autoscale["suppressed_spawns"],
            "forecast_shed": autoscale["forecast_shed"],
            "final_shards": autoscale["final_shards"],
            "final_cap": autoscale["final_cap"],
        }
    return summary


def evaluate_sweep(arms: dict[str, dict[str, Any]]) -> list[str]:
    """The acceptance predicate; returns violation messages (empty = ok).

    The ``autoscale`` arm must undercut *every* static arm on
    cycles-per-request while holding p99 within :data:`P99_TOLERANCE`
    of each.
    """
    violations: list[str] = []
    elastic = arms.get("autoscale")
    if elastic is None:
        return ["sweep has no 'autoscale' arm"]
    auto_cpr = elastic.get("cycles_per_request")
    auto_p99 = elastic.get("p99_us")
    if auto_cpr is None or auto_p99 is None:
        return ["autoscale arm completed no requests — nothing to gate"]
    for name, arm in sorted(arms.items()):
        if name == "autoscale":
            continue
        static_cpr = arm.get("cycles_per_request")
        static_p99 = arm.get("p99_us")
        if static_cpr is not None and auto_cpr >= static_cpr:
            violations.append(
                f"cycles/request not better than {name}: autoscale "
                f"{auto_cpr:,.0f} vs static {static_cpr:,.0f}"
            )
        if static_p99 is not None and auto_p99 > static_p99 * (
            1 + P99_TOLERANCE
        ):
            violations.append(
                f"p99 worse than {name}: autoscale {auto_p99:.1f} us vs "
                f"static {static_p99:.1f} us (> {P99_TOLERANCE:.0%} slack)"
            )
    return violations


def run_autoscale_sweep(
    scenario: str = DEFAULT_SCENARIO,
    *,
    root: str = ".",
    static_grid: tuple[tuple[int, int], ...] = STATIC_GRID,
) -> dict[str, Any]:
    """Run every arm and return the stamped ``autoscale-sweep`` artifact.

    The artifact embeds each arm's spec (declarative, re-runnable), its
    outcome summary, and the gate verdict of :func:`evaluate_sweep`.
    """
    from repro.serve.bench import run_bench

    arms_out: dict[str, dict[str, Any]] = {}
    specs: dict[str, dict[str, Any]] = {}
    trace_digest: str | None = None
    for name, spec in sweep_specs(scenario, static_grid=static_grid):
        result = run_bench(spec, root=root)
        arms_out[name] = _arm_summary(result)
        specs[name] = spec.to_json()
        trace_digest = result["params"].get("trace_digest", trace_digest)
    violations = evaluate_sweep(arms_out)
    return {
        "meta": stamp(AUTOSCALE_ARTIFACT),
        "scenario": scenario,
        "trace_digest": trace_digest,
        "specs": specs,
        "arms": arms_out,
        "gate": {"ok": not violations, "violations": violations},
    }


# ----------------------------------------------------------------------
# The committed baseline (``repro diff baselines/autoscale-diurnal.json``)
# ----------------------------------------------------------------------
def sweep_snapshot(result: dict[str, Any]) -> dict[str, Any]:
    """Distil a sweep artifact into a committed baseline snapshot."""
    return {
        "meta": stamp(AUTOSCALE_ARTIFACT),
        "scenario": result["scenario"],
        "trace_digest": result["trace_digest"],
        "arms": {
            name: {
                "completed": arm.get("completed"),
                "shed": arm.get("shed"),
                "p99_us": arm.get("p99_us"),
                "cycles_per_request": arm.get("cycles_per_request"),
            }
            for name, arm in sorted(result["arms"].items())
        },
        "gate": result["gate"],
    }


def write_sweep_baseline(snapshot: dict[str, Any], path: str) -> str:
    """Write a sweep baseline snapshot as JSON; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_sweep_baseline(path: str) -> dict[str, Any]:
    """Load and stamp-check a committed sweep baseline."""
    with open(path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    check_stamp(baseline.get("meta", {}), AUTOSCALE_ARTIFACT, source=path)
    return baseline


def compare_sweep_baseline(
    result: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.1,
) -> list[str]:
    """Gate a sweep against its baseline; returns violation messages.

    Identity first (scenario, trace digest, arm set), then the live gate
    itself must pass, then each arm's outcome numbers must sit within
    the relative ``threshold`` of the committed values — drift in either
    direction is a model change someone must re-baseline deliberately.
    """
    violations: list[str] = []
    for field in ("scenario", "trace_digest"):
        if result.get(field) != baseline.get(field):
            violations.append(
                f"{field} mismatch: run has {result.get(field)!r}, "
                f"baseline has {baseline.get(field)!r}"
            )
    gate = result.get("gate") or {}
    if not gate.get("ok"):
        for message in gate.get("violations", ["gate failed"]):
            violations.append(f"acceptance gate: {message}")
    new_arms = result.get("arms") or {}
    old_arms = baseline.get("arms") or {}
    if sorted(new_arms) != sorted(old_arms):
        violations.append(
            f"arm set changed: {sorted(new_arms)} vs baseline "
            f"{sorted(old_arms)}"
        )
    for name in sorted(set(new_arms) & set(old_arms)):
        new, old = new_arms[name], old_arms[name]
        if new.get("completed") != old.get("completed"):
            violations.append(
                f"{name}: completed changed: {new.get('completed')} vs "
                f"baseline {old.get('completed')}"
            )
        for metric in ("cycles_per_request", "p99_us"):
            old_value = old.get(metric)
            new_value = new.get(metric)
            if not old_value or new_value is None:
                continue
            drift = abs(new_value - old_value) / old_value
            if drift > threshold:
                violations.append(
                    f"{name}: {metric} drifted {drift:.0%}: {new_value:,.1f} "
                    f"vs baseline {old_value:,.1f} (> {threshold:.0%})"
                )
    return violations
