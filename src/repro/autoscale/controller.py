"""The autoscale control loop: obs windows in, scaling actions out.

An :class:`AutoscaleController` subscribes to the serving bench's
:class:`repro.obs.MetricSampler` window stream.  Each time a window
closes it:

1. refreshes its per-request service-cost estimate from the router's
   new span records (execute-phase cycles, EWMA-smoothed);
2. folds the window's per-lane ``submitted`` counts into the
   :class:`repro.autoscale.forecast.EwmaForecaster`;
3. runs :func:`repro.autoscale.optimizer.fleet_argmin` over
   (shards × workers × batch) against the forecast;
4. acts: spawns shards (``create_enclave`` cost charged on the
   bring-up thread, then :meth:`Router.add_shard` re-homes keys
   incrementally), retires shards (:meth:`Router.retire_shard` drains
   and re-homes, ``destroy_enclave`` charged on a teardown thread),
   retunes the worker-budget arbiter's cap, and sets the live shards'
   dequeue batch;
5. re-arms the predictive admission gate: if the forecast exceeds the
   planned capacity (× headroom), the router sheds the excess *at
   admission* next window, per tenant in proportion to each tenant
   lane's forecast share — before queues build and blow p99.

Scale-up is suppressed while any shard is quarantined (capacity is
already in flux and the probe may re-admit it); the
ScalingSanityChecker (:mod:`repro.regress.audit`) audits exactly that,
plus request conservation across retirement, from the ``autoscale.*`` /
``serve.shard.*`` event streams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.autoscale.forecast import EwmaForecaster
from repro.autoscale.optimizer import FleetDemand, FleetPlan, fleet_argmin
from repro.sgx.lifecycle import (
    create_enclave,
    creation_cycles,
    destroy_enclave,
    destruction_cycles,
)
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.api import AutoscaleSpec
    from repro.serve.bench import ServeCluster
    from repro.serve.shard import EnclaveShard

#: Service-cost prior (cycles/request) before any span has completed:
#: roughly one served KV request on the calibrated machine.
DEFAULT_SERVICE_CYCLES = 15_000.0

#: EWMA smoothing for the measured service cost (separate from the
#: arrival forecast's alpha: service cost drifts slowly).
SERVICE_ALPHA = 0.3


class AutoscaleController:
    """Drives a :class:`repro.serve.bench.ServeCluster` elastically."""

    def __init__(
        self,
        cluster: "ServeCluster",
        spec: "AutoscaleSpec",
        sampler: Any,
    ) -> None:
        if cluster.spec is None:
            raise ValueError("autoscale needs a spec-built cluster")
        if cluster.arbiter is None:
            raise ValueError("autoscale needs a worker-budget arbiter")
        if sampler is None:
            raise ValueError("autoscale needs the obs window sampler")
        self.cluster = cluster
        self.spec = spec
        self.sampler = sampler
        self.kernel = cluster.kernel
        self.router = cluster.router
        self.arbiter = cluster.arbiter
        self._forecaster = EwmaForecaster(spec.alpha)
        self._service: float | None = None
        self._span_cursor = 0
        self._next_index = max(shard.index for shard in cluster.shards) + 1
        self._pending_spawns = 0
        #: One record per control window (the artifact's audit trail).
        self.decisions: list[dict[str, Any]] = []
        self.spawns = 0
        self.retires = 0
        self.suppressed_spawns = 0
        # Predictive gate: None = open; else per-tenant admission
        # allowance for the current window.
        self._gate_allowance: dict[str, float] | None = None
        self._gate_admitted: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self) -> "AutoscaleController":
        """Subscribe to the window stream and arm the admission gate."""
        self.sampler.add_on_window(self._on_window)
        self.router.predictive_gate = self._admit
        return self

    # ------------------------------------------------------------------
    # Predictive admission
    # ------------------------------------------------------------------
    def _admit(self, tenant: str) -> bool:
        allowance = self._gate_allowance
        if allowance is None:
            return True
        if tenant not in allowance:
            # Lanes the forecaster has never seen carry no forecast to
            # gate on; let the queue-level admission handle them.
            return True
        admitted = self._gate_admitted.get(tenant, 0)
        if admitted < allowance[tenant]:
            self._gate_admitted[tenant] = admitted + 1
            return True
        return False

    def _rearm_gate(self, plan: FleetPlan, demand: FleetDemand) -> float:
        """Set next window's admission allowance; returns the capacity."""
        capacity = plan.capacity_requests(demand) * self.spec.headroom
        total = self._forecaster.forecast("total")
        self._gate_admitted = {}
        if total <= capacity:
            self._gate_allowance = None
            return capacity
        tenant_levels = {
            lane[len("tenant:"):]: self._forecaster.forecast(lane)
            for lane in self._forecaster.lanes()
            if lane.startswith("tenant:")
        }
        if not tenant_levels:
            # No tenant lanes: every request rides the anonymous tenant.
            self._gate_allowance = {"": capacity}
            return capacity
        share_base = sum(tenant_levels.values())
        self._gate_allowance = {
            tenant: capacity * level / share_base if share_base > 0 else 0.0
            for tenant, level in tenant_levels.items()
        }
        return capacity

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _on_window(self, index: int, records: list, anomalies: list) -> None:
        now = self.kernel.now
        self._refresh_service_estimate()
        total_submitted = 0
        for record in records:
            lane = record.get("lane")
            if lane == "total":
                total_submitted = record.get("submitted", 0)
                self._forecaster.observe("total", total_submitted)
            elif isinstance(lane, str) and lane.startswith("tenant:"):
                self._forecaster.observe(lane, record.get("submitted", 0))
        live = self._live_shards()
        reference = self.cluster.shards[0].enclave
        demand = FleetDemand(
            arrivals=self._forecaster.forecast("total"),
            window_cycles=self.sampler.interval,
            service_cycles=self._service or DEFAULT_SERVICE_CYCLES,
            dispatch_cycles=self.cluster.spec.dispatch_cycles,
            servers_per_shard=self.cluster.spec.servers_per_shard,
        )
        plan = fleet_argmin(
            demand,
            live_shards=live,
            min_shards=self.spec.min_shards,
            max_shards=self.spec.max_shards,
            worker_options=self.spec.worker_options,
            batch_options=self.spec.batch_options,
            creation_cycles=creation_cycles(reference.heap_bytes),
            destruction_cycles=destruction_cycles(reference.heap_bytes),
            t_es=reference.cost.t_es,
        )
        spawned = 0
        retired = 0
        if plan.shards > live:
            if self.router.quarantined:
                # Never scale up while a shard is quarantined: its probe
                # may re-admit that capacity any moment, and the
                # ScalingSanityChecker treats a spawn here as a
                # violation.
                self.suppressed_spawns += 1
            else:
                for _ in range(plan.shards - live):
                    self._spawn_shard(now)
                    spawned += 1
        elif plan.shards < live:
            for _ in range(live - plan.shards):
                victim = self._retire_candidate()
                if victim is None:
                    break
                self._retire_shard(victim, now)
                retired += 1
        self.arbiter.set_cap(plan.workers * plan.shards, at=now)
        for shard in self.router.shards:
            if shard.index not in self.router.retired:
                shard.batch = plan.batch
        capacity = self._rearm_gate(plan, demand)
        decision = {
            "window": index,
            "t_cycles": now,
            "submitted": total_submitted,
            "forecast": demand.arrivals,
            "service_cycles": demand.service_cycles,
            "live_shards": live,
            "plan_shards": plan.shards,
            "plan_workers": plan.workers,
            "plan_batch": plan.batch,
            "u_cycles": plan.u_cycles,
            "cap": plan.workers * plan.shards,
            "capacity_requests": capacity,
            "gated": self._gate_allowance is not None,
            "spawned": spawned,
            "retired": retired,
        }
        self.decisions.append(decision)
        self._emit("autoscale.decision", tenant="", request_id="", **decision)

    def _refresh_service_estimate(self) -> None:
        spans = self.router.spans
        while self._span_cursor < len(spans):
            span = spans[self._span_cursor]
            self._span_cursor += 1
            if span["status"] != "ok":
                continue
            t_dequeue = span.get("t_dequeue")
            t_result = span.get("t_result")
            if t_dequeue is None or t_result is None:
                continue
            sample = float(t_result - t_dequeue)
            if sample <= 0:
                continue
            self._service = (
                sample
                if self._service is None
                else SERVICE_ALPHA * sample + (1 - SERVICE_ALPHA) * self._service
            )

    # ------------------------------------------------------------------
    # Fleet actions
    # ------------------------------------------------------------------
    def _live_shards(self) -> int:
        """Provisioned shard count: routable plus in-flight bring-ups."""
        live = sum(
            1
            for shard in self.router.shards
            if shard.index not in self.router.retired
            and shard.index not in self.router.dead
        )
        return live + self._pending_spawns

    def _retire_candidate(self) -> "EnclaveShard | None":
        """Deterministic scale-down victim: the newest routable shard."""
        candidates = [
            shard
            for shard in self.router.shards
            if shard.index not in self.router.retired
            and shard.index not in self.router.dead
            and shard.index not in self.router.quarantined
        ]
        if len(candidates) <= 1:
            return None
        return max(candidates, key=lambda shard: shard.index)

    def _spawn_shard(self, now: float) -> None:
        index = self._next_index
        self._next_index += 1
        shard = self.cluster.new_shard(index)
        self._pending_spawns += 1
        self.spawns += 1
        # The cluster owns the runtime from this instant (close() must
        # reach it even if the run ends mid-bring-up); the ledger entry
        # charges provisioning from the decision, creation included.
        self.cluster.shards.append(shard)
        created = creation_cycles(shard.enclave.heap_bytes) + (
            shard.enclave._epc_penalty_cycles
        )
        self.cluster.lifecycle.append(
            {
                "shard": index,
                "servers": shard.n_servers,
                "spawned_at": now,
                "retired_at": None,
                "creation_cycles": created,
                "destruction_cycles": 0.0,
            }
        )
        self._emit(
            "autoscale.spawn",
            shard=index,
            creation_cycles=created,
            tenant="",
            request_id="",
        )

        def bring_up() -> Program:
            yield from create_enclave(shard.runtime.enclave)
            yield from shard.start_program()
            self._pending_spawns -= 1
            self.router.add_shard(shard)

        self.kernel.spawn(
            bring_up(),
            name=f"autoscale-spawn{index}",
            kind="autoscale",
            daemon=True,
        )

    def _retire_shard(self, shard: "EnclaveShard", now: float) -> None:
        self.retires += 1
        drained = self.router.retire_shard(shard)
        destroyed = destruction_cycles(shard.enclave.heap_bytes)
        for entry in self.cluster.lifecycle:
            if entry["shard"] == shard.index and entry["retired_at"] is None:
                entry["retired_at"] = now
                entry["destruction_cycles"] = destroyed
                break
        self._emit(
            "autoscale.retire",
            shard=shard.index,
            drained=len(drained),
            destruction_cycles=destroyed,
            tenant="",
            request_id="",
        )

        def tear_down() -> Program:
            yield from destroy_enclave(shard.runtime.enclave)

        self.kernel.spawn(
            tear_down(),
            name=f"autoscale-retire{shard.index}",
            kind="autoscale",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """The artifact's ``autoscale`` section."""
        return {
            "windows": len(self.decisions),
            "spawns": self.spawns,
            "retires": self.retires,
            "suppressed_spawns": self.suppressed_spawns,
            "forecast_shed": self.router.forecast_shed,
            "service_cycles_estimate": self._service,
            "final_shards": self._live_shards(),
            "final_cap": self.arbiter.cap,
            "decisions": self.decisions,
        }

    def _emit(self, name: str, **fields: Any) -> None:
        bus = self.kernel.bus
        if bus is not None:
            bus.emit(name, **fields)
