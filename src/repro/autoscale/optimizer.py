"""The fleet-level wasted-cycle argmin (§IV-A, one level up).

The paper's scheduler probes worker counts inside one enclave and picks
``argmin U_i`` where ``U = F·T_es + M·T``.  The fleet optimizer applies
the same shape one level up: for a forecast arrival count it sweeps
every candidate (shards × per-shard workers × batching degree)
configuration and scores each with a wasted-cycle objective built from
the same ingredients —

- **fallback waste** (``F·T_es``): switchless-worker undersupply sends
  ocalls down the switched path, one full enclave crossing each;
- **provisioned idleness** (``M·T``): worker budget and server threads
  beyond what the forecast needs spin/idle for the whole window;
- **overload**: forecast arrivals beyond the fleet's service capacity
  queue or shed — weighted above idleness because queueing is what
  blows p99 (shedding capacity is cheaper to add than tail latency is
  to claw back);
- **scaling cost**: moving between fleet sizes is charged the modeled
  enclave create/teardown price (:mod:`repro.sgx.lifecycle`), which is
  exactly what damps flapping — a one-window blip never pays for an
  enclave build.

Everything here is pure arithmetic over the inputs: same demand in,
same plan out, no RNG, no clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sgx.costmodel import SgxCostModel

#: Relative weight of overloaded (queued/shed) work vs idle provisioned
#: cycles.  Overload shows up as p99 inflation and shed requests; the
#: acceptance gate holds p99 at equal-or-better, so the optimizer must
#: prefer a little idleness over any overload.
OVERLOAD_WEIGHT = 4.0

#: Default per-request switchless-worker demand (cycles) before the
#: controller has measured anything: one WAL-append ocall's worth of
#: worker-side service.
DEFAULT_OCALL_CYCLES = 1_500.0


@dataclass(frozen=True)
class FleetDemand:
    """One control window's forecast demand and measured costs.

    Attributes:
        arrivals: Forecast request arrivals in the window.
        window_cycles: Control-window width in cycles (the ``T`` of
            ``M·T``).
        service_cycles: Measured per-request in-enclave service cost.
        ocall_cycles: Per-request switchless-worker demand.
        dispatch_cycles: Untrusted dispatch cost charged per drain burst
            (batching amortises it).
        servers_per_shard: Server threads each shard runs.
    """

    arrivals: float
    window_cycles: float
    service_cycles: float
    ocall_cycles: float = DEFAULT_OCALL_CYCLES
    dispatch_cycles: float = 0.0
    servers_per_shard: int = 2

    def __post_init__(self) -> None:
        if self.arrivals < 0:
            raise ValueError("arrivals must be >= 0")
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be > 0")
        if self.service_cycles <= 0:
            raise ValueError("service_cycles must be > 0")
        if self.ocall_cycles < 0 or self.dispatch_cycles < 0:
            raise ValueError("cycle costs must be >= 0")
        if self.servers_per_shard < 1:
            raise ValueError("servers_per_shard must be >= 1")


@dataclass(frozen=True)
class FleetPlan:
    """The argmin configuration and its objective value."""

    shards: int
    workers: int
    batch: int
    u_cycles: float

    def capacity_requests(self, demand: FleetDemand) -> float:
        """Requests this plan can serve in one window of ``demand``."""
        per_request = demand.service_cycles + demand.dispatch_cycles / self.batch
        return (
            self.shards
            * demand.servers_per_shard
            * demand.window_cycles
            / per_request
        )


def fleet_objective(
    demand: FleetDemand,
    shards: int,
    workers: int,
    batch: int,
    *,
    live_shards: int,
    creation_cycles: float,
    destruction_cycles: float,
    t_es: float | None = None,
) -> float:
    """Wasted cycles of running (``shards``, ``workers``, ``batch``).

    See the module docstring for the four terms.  ``live_shards`` is the
    current fleet size; the lifecycle terms charge the transition.
    """
    if shards < 1 or workers < 1 or batch < 1:
        raise ValueError("shards, workers and batch must be >= 1")
    if t_es is None:
        t_es = SgxCostModel().t_es
    window = demand.window_cycles
    per_request = demand.service_cycles + demand.dispatch_cycles / batch
    capacity = shards * demand.servers_per_shard * window / per_request
    overload = max(0.0, demand.arrivals - capacity) * demand.service_cycles
    server_idle = max(
        0.0,
        shards * demand.servers_per_shard * window
        - demand.arrivals * per_request,
    )
    # Worker supply vs switchless demand, per shard: undersupply falls
    # back to switched ocalls (one T_es each), oversupply spins.
    ocall_demand = demand.arrivals * demand.ocall_cycles / shards
    workers_needed = ocall_demand / window
    worker_idle = max(0.0, workers - workers_needed) * window * shards
    if workers < workers_needed and workers_needed > 0:
        shortfall = (workers_needed - workers) / workers_needed
        fallback = shortfall * demand.arrivals * t_es
    else:
        fallback = 0.0
    dispatch = demand.arrivals * demand.dispatch_cycles / batch
    scaling = creation_cycles * max(0, shards - live_shards) + (
        destruction_cycles * max(0, live_shards - shards)
    )
    return (
        OVERLOAD_WEIGHT * overload
        + server_idle
        + worker_idle
        + fallback
        + dispatch
        + scaling
    )


def fleet_argmin(
    demand: FleetDemand,
    *,
    live_shards: int,
    min_shards: int,
    max_shards: int,
    worker_options: tuple[int, ...],
    batch_options: tuple[int, ...],
    creation_cycles: float,
    destruction_cycles: float,
    t_es: float | None = None,
) -> FleetPlan:
    """Sweep the full candidate grid; return the argmin plan.

    Deterministic tie-breaking: candidates are enumerated in ascending
    (shards, workers, batch) order and only a *strictly* smaller ``U``
    displaces the incumbent — equal-cost plans resolve to the smallest
    configuration.
    """
    if not min_shards <= live_shards or min_shards > max_shards:
        raise ValueError("need min_shards <= max_shards and live >= min")
    best: FleetPlan | None = None
    for shards in range(min_shards, max_shards + 1):
        for workers in worker_options:
            for batch in batch_options:
                u = fleet_objective(
                    demand,
                    shards,
                    workers,
                    batch,
                    live_shards=live_shards,
                    creation_cycles=creation_cycles,
                    destruction_cycles=destruction_cycles,
                    t_es=t_es,
                )
                if best is None or u < best.u_cycles:
                    best = FleetPlan(
                        shards=shards, workers=workers, batch=batch, u_cycles=u
                    )
    assert best is not None  # grid is never empty (validated options)
    return best
