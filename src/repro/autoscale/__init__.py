"""Elastic autoscaling control plane over :mod:`repro.serve`.

The paper's §IV-A argmin scheduler adapts *worker counts* inside one
enclave.  This package lifts the same wasted-cycle objective ``U`` one
level up: a controller on the :mod:`repro.obs` window stream forecasts
per-lane arrivals (EWMA), sweeps (shards × per-shard workers × batching
degree) with :func:`repro.autoscale.optimizer.fleet_argmin`, and acts —
spawning/retiring :class:`repro.serve.shard.EnclaveShard`\\ s at the
modeled enclave-lifecycle price (:mod:`repro.sgx.lifecycle`), retuning
the worker-budget arbiter's cap, and gating admission predictively so
the router sheds *before* queues blow p99.

Configure it with :class:`repro.api.AutoscaleSpec` on a
:class:`repro.api.ServeSpec`; run the diurnal acceptance sweep with
:func:`repro.autoscale.bench.run_autoscale_sweep` (``repro autoscale
sweep`` on the CLI).
"""

from repro.autoscale.controller import AutoscaleController
from repro.autoscale.forecast import EwmaForecaster
from repro.autoscale.optimizer import FleetDemand, FleetPlan, fleet_argmin

__all__ = [
    "AutoscaleController",
    "EwmaForecaster",
    "FleetDemand",
    "FleetPlan",
    "fleet_argmin",
]
