"""Cycle-cost constants of the simulated SGX runtime.

All constants are calibrated against the paper's own measurements on a
Xeon E3-1275 v6 @ 3.8 GHz with SGX SDK v2.14:

- a full enclave round trip (EEXIT + EENTER) costs ~13,500 cycles (§IV-A);
- one ``asm("pause")`` costs ~140 cycles on Skylake (§III-C);
- a regular syscall costs ~250 cycles (§I);
- the Intel SDK defaults both ``retries_before_fallback`` and
  ``retries_before_sleep`` to 20,000 retries (§III-C), i.e. a worst-case
  busy wait of 2.8 M cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SgxCostModel:
    """Cycle costs of SGX transitions and switchless-call plumbing.

    Attributes:
        eexit_cycles / eenter_cycles: One-way enclave crossing costs; the
            sum is the paper's ``T_es`` (~13,500 cycles for a full regular
            ocall round trip).
        pause_cycles: Latency of one ``asm("pause")`` retry.
        ocall_bookkeeping_cycles: Trusted-runtime argument setup performed
            on every ocall regardless of execution path (edger8r glue).
        switchless_enqueue_cycles: Caller-side cost to publish a request
            into the Intel SDK task pool (atomic slot claim + store).
        switchless_dispatch_cycles: Caller-side cost of ZC-SWITCHLESS's
            worker reservation (scan + CAS + request copy into the worker
            buffer).
        worker_pickup_cycles: Worker-side cost to claim and decode one
            switchless request.
        worker_complete_cycles: Worker-side cost to publish results and
            return the slot.
        worker_wake_cycles: Latency for a sleeping worker to be woken
            (futex wake + scheduling), charged to the woken worker.
        pool_realloc_host_cycles: Host-side work to free and reallocate a
            full untrusted memory pool (ZC §IV-B); charged on top of a full
            regular-ocall transition.
        ecall_entry_cycles / ecall_exit_cycles: Enclave entry/exit for
            ecalls (same hardware path as ocall returns).
    """

    eexit_cycles: float = 6_750.0
    eenter_cycles: float = 6_750.0
    pause_cycles: float = 140.0
    syscall_cycles: float = 250.0
    ocall_bookkeeping_cycles: float = 300.0
    switchless_enqueue_cycles: float = 300.0
    switchless_dispatch_cycles: float = 250.0
    worker_pickup_cycles: float = 200.0
    worker_complete_cycles: float = 150.0
    worker_wake_cycles: float = 20_000.0
    pool_realloc_host_cycles: float = 4_000.0
    ecall_entry_cycles: float = 6_750.0
    ecall_exit_cycles: float = 6_750.0

    def __post_init__(self) -> None:
        for field_name in self.__dataclass_fields__:
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    @property
    def t_es(self) -> float:
        """The paper's ``T_es``: cycles wasted by one full enclave switch."""
        return self.eexit_cycles + self.eenter_cycles

    def pause_loop_cycles(self, retries: int) -> float:
        """Cycles burnt by a busy-wait loop of ``retries`` pause retries."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        return retries * self.pause_cycles

    def with_transition_factor(self, factor: float) -> "SgxCostModel":
        """A copy with every enclave-crossing cost scaled by ``factor``.

        Models EPC-pressure paging storms: when the working set exceeds
        the EPC, each EENTER/EEXIT can trigger encrypted page eviction and
        reload, inflating transition latency while leaving in-enclave
        compute costs untouched.  Used by the fault injector's
        ``epc-pressure`` fault (see :mod:`repro.faults`).
        """
        if factor <= 0:
            raise ValueError("factor must be > 0")
        import dataclasses

        return dataclasses.replace(
            self,
            eexit_cycles=self.eexit_cycles * factor,
            eenter_cycles=self.eenter_cycles * factor,
            ecall_entry_cycles=self.ecall_entry_cycles * factor,
            ecall_exit_cycles=self.ecall_exit_cycles * factor,
        )
