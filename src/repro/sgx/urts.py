"""The untrusted runtime: the host-side ocall dispatch table.

Handlers are generator coroutines (they may yield ``Compute`` etc. to model
host-side work) registered by name.  Both the regular transition path and
every switchless backend route requests through :meth:`execute`, so the
host function runs identically regardless of how the call crossed the
enclave boundary — exactly as in the SDK, where the same edger8r-generated
bridge is invoked by the transition path and by worker threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import OcallRequest

OcallHandler = Callable[..., Program]


class UnknownOcallError(KeyError):
    """Raised when an ocall targets a name with no registered handler."""


class HostFault:
    """An exception captured on the host side of an ocall.

    Host handlers may run on switchless worker threads; letting an
    exception unwind there would kill the worker instead of failing the
    call.  ``execute`` therefore captures handler exceptions into a
    ``HostFault`` result, and the enclave's ocall path re-raises it on
    the *calling* thread — mirroring how real ocalls return error codes
    across the boundary.
    """

    __slots__ = ("exception",)

    def __init__(self, exception: BaseException) -> None:
        self.exception = exception

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostFault {self.exception!r}>"


class UntrustedRuntime:
    """Holds the registered ocall handlers of one host process."""

    def __init__(self) -> None:
        self._handlers: dict[str, OcallHandler] = {}

    def register(self, name: str, handler: OcallHandler) -> None:
        """Register ``handler`` for ocalls named ``name``.

        Re-registering a name replaces the previous handler (useful for
        fault-injection tests).
        """
        self._handlers[name] = handler

    def register_many(self, handlers: dict[str, OcallHandler]) -> None:
        """Register a batch of handlers."""
        for name, handler in handlers.items():
            self.register(name, handler)

    def registered(self, name: str) -> bool:
        """Whether an ocall handler exists for ``name``."""
        return name in self._handlers

    def execute(self, request: "OcallRequest") -> Program:
        """Run the handler for ``request`` (a simulated sub-program).

        Handler exceptions — including a missing handler — are captured
        into a :class:`HostFault` result rather than raised, so that
        worker threads survive failing calls; the enclave ocall path
        re-raises the fault on the calling thread.
        """
        handler = self._handlers.get(request.name)
        if handler is None:
            return HostFault(
                UnknownOcallError(f"no handler registered for ocall {request.name!r}")
            )
        try:
            result = yield from handler(*request.args)
        except Exception as exc:  # noqa: BLE001 - transported to the caller
            return HostFault(exc)
        return result

    def execute_timed(self, request: "OcallRequest", kernel) -> Program:
        """:meth:`execute` that also stamps ``request.host_cycles``.

        A mirror rather than a wrapper: the call tracer substitutes this
        for ``execute`` directly, because a delegating wrapper generator
        would add a frame traversal to every instruction the handler
        yields.  Keep the dispatch logic in sync with :meth:`execute`.
        """
        start = kernel.now
        handler = self._handlers.get(request.name)
        if handler is None:
            return HostFault(
                UnknownOcallError(f"no handler registered for ocall {request.name!r}")
            )
        try:
            result = yield from handler(*request.args)
        except Exception as exc:  # noqa: BLE001 - transported to the caller
            request.host_cycles = kernel.now - start
            return HostFault(exc)
        request.host_cycles = kernel.now - start
        return result
