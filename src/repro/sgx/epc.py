"""Enclave page cache (EPC) bookkeeping.

The paper's platform has a 128 MB EPC of which 93.5 MB is usable by
enclaves; enclaves exceeding it trigger expensive paging.  The evaluation
workloads stay well inside the EPC, so this model only tracks usage and
charges a paging penalty if a simulated enclave ever oversteps — enough to
keep the substrate honest without a full paging simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PAGE_SIZE = 4096


@dataclass
class EpcModel:
    """Tracks EPC page allocation for one machine.

    Attributes:
        usable_bytes: EPC capacity available to enclaves (93.5 MB on the
            paper's machine).
        page_fault_cycles: Cost of evicting+loading one EPC page once the
            working set exceeds the EPC.
    """

    usable_bytes: int = int(93.5 * 1024 * 1024)
    page_fault_cycles: float = 40_000.0
    allocated_bytes: int = 0
    peak_bytes: int = 0
    faults: int = 0
    _allocations: dict[str, int] = field(default_factory=dict)

    def allocate(self, owner: str, nbytes: int) -> float:
        """Allocate ``nbytes`` for ``owner``; returns extra paging cycles.

        Allocation is rounded up to whole EPC pages.  If the allocation
        pushes usage past the usable EPC, each overflowing page costs
        ``page_fault_cycles`` (a coarse paging penalty).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        rounded = ((nbytes + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE
        before = self.allocated_bytes
        self.allocated_bytes += rounded
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        self._allocations[owner] = self._allocations.get(owner, 0) + rounded
        overflow = max(self.allocated_bytes - self.usable_bytes, 0) - max(
            before - self.usable_bytes, 0
        )
        if overflow > 0:
            pages = overflow // PAGE_SIZE
            self.faults += pages
            return pages * self.page_fault_cycles
        return 0.0

    def free(self, owner: str, nbytes: int) -> None:
        """Release ``nbytes`` previously allocated by ``owner``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        rounded = ((nbytes + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE
        held = self._allocations.get(owner, 0)
        if rounded > held:
            raise ValueError(f"{owner} frees {rounded} B but holds {held} B")
        self._allocations[owner] = held - rounded
        self.allocated_bytes -= rounded

    def usage_fraction(self) -> float:
        """Current EPC occupancy as a fraction of usable capacity."""
        return self.allocated_bytes / self.usable_bytes
