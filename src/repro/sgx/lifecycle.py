"""Enclave lifecycle: creation and destruction cost model.

Enclave creation is expensive — every EPC page is added with ``EADD`` +
``EEXTEND`` (measurement covers the page), and ``EINIT`` finalises the
measurement.  The paper's related work cites SGXPool [13] precisely
because creation latency is large enough to pool enclaves in the cloud.

This module prices the lifecycle against the EPC model so experiments can
include realistic startup costs (an enclave with a 64 MB heap takes tens
of milliseconds to create), and releases EPC on destruction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sgx.epc import PAGE_SIZE
from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave


#: ECREATE: SECS setup.
ECREATE_CYCLES = 20_000.0
#: Per EPC page: EADD plus EEXTEND over the 4 kB page (measurement
#: hashing dominates; ~1.5 cycles/byte plus instruction overhead).
PER_PAGE_ADD_CYCLES = 9_000.0
#: EINIT: launch-token checks and measurement finalisation.
EINIT_CYCLES = 60_000.0
#: EREMOVE per page at destruction.
PER_PAGE_REMOVE_CYCLES = 1_200.0


def creation_cycles(heap_bytes: int) -> float:
    """Cycles to build and initialise an enclave with ``heap_bytes``."""
    if heap_bytes < 0:
        raise ValueError("heap_bytes must be >= 0")
    pages = (heap_bytes + PAGE_SIZE - 1) // PAGE_SIZE
    return ECREATE_CYCLES + pages * PER_PAGE_ADD_CYCLES + EINIT_CYCLES


def destruction_cycles(heap_bytes: int) -> float:
    """Cycles to tear an enclave down (EREMOVE per page)."""
    if heap_bytes < 0:
        raise ValueError("heap_bytes must be >= 0")
    pages = (heap_bytes + PAGE_SIZE - 1) // PAGE_SIZE
    return pages * PER_PAGE_REMOVE_CYCLES


def recreate_cycles(heap_bytes: int) -> float:
    """Cycles to recover a lost enclave: tear-down plus full rebuild.

    ``SGX_ERROR_ENCLAVE_LOST`` recovery (power transition, AEX storm,
    microcode update) must destroy the dead enclave and re-create it from
    scratch — state inside is gone.  Used by
    :class:`repro.faults.recovery.EnclaveRecovery`.
    """
    return destruction_cycles(heap_bytes) + creation_cycles(heap_bytes)


def create_enclave(enclave: "Enclave") -> Program:
    """Simulated program charging the creation of ``enclave``.

    Run this from the launching (untrusted) thread before using the
    enclave; the EPC reservation itself happened at construction.
    """
    yield Compute(
        creation_cycles(enclave.heap_bytes) + enclave._epc_penalty_cycles,
        tag="enclave-create",
    )
    return None


def destroy_enclave(enclave: "Enclave") -> Program:
    """Simulated program tearing ``enclave`` down and freeing its EPC."""
    yield Compute(destruction_cycles(enclave.heap_bytes), tag="enclave-destroy")
    enclave.epc.free(enclave.name, enclave.heap_bytes)
    return None


def pooled_acquire_cycles() -> float:
    """Cost of taking a pre-created enclave from a pool (SGXPool [13]):
    bookkeeping only — the motivation for pooling, in one number."""
    return 3_000.0
