"""Pluggable ocall-execution backends.

An SGX application's ocalls can be executed three ways in this library:

- :class:`RegularBackend` — every ocall performs a full enclave transition
  (the ``no_sl`` mode of the paper's evaluation);
- :class:`repro.switchless.IntelSwitchlessBackend` — the Intel SGX SDK's
  statically-configured switchless mechanism;
- :class:`repro.core.ZcSwitchlessBackend` — ZC-SWITCHLESS.

A backend receives fully-marshalled :class:`repro.sgx.enclave.OcallRequest`
objects from the enclave and must set ``request.mode`` to how the call was
ultimately executed (``"regular"``, ``"switchless"`` or ``"fallback"``).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest


class CallBackend(abc.ABC):
    """Executes ocall requests on behalf of an enclave."""

    #: Human-readable backend name used in experiment reports.
    name: str = "abstract"

    @abc.abstractmethod
    def invoke(self, request: "OcallRequest") -> Program:
        """Simulated program (run on the caller thread) executing the call."""

    def attach(self, enclave: "Enclave") -> None:
        """Called when the backend is installed on an enclave.

        Backends that need threads (worker pools, schedulers) spawn them
        here.  The default does nothing.
        """

    def stop(self) -> None:
        """Request shutdown of any backend threads (workers, scheduler)."""


class RegularBackend(CallBackend):
    """Every ocall pays a full EEXIT + host execution + EENTER transition."""

    name = "regular"

    def __init__(self) -> None:
        self._enclave: "Enclave | None" = None

    def attach(self, enclave: "Enclave") -> None:
        """Install this backend on ``enclave`` (spawns its threads)."""
        self._enclave = enclave

    def invoke(self, request: "OcallRequest") -> Program:
        """Execute one call request (simulated program on the caller thread)."""
        enclave = self._enclave
        if enclave is None:
            raise RuntimeError("backend not attached to an enclave")
        cost = enclave.cost
        yield Compute(cost.eexit_cycles, tag="eexit")
        result = yield from enclave.urts.execute(request)
        yield Compute(cost.eenter_cycles, tag="eenter")
        request.mode = "regular"
        return result
