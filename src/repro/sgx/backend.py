"""Pluggable ocall-execution backends.

An SGX application's ocalls can be executed three ways in this library:

- :class:`RegularBackend` — every ocall performs a full enclave transition
  (the ``no_sl`` mode of the paper's evaluation);
- :class:`repro.switchless.backend.IntelSwitchlessBackend` — the Intel SGX
  SDK's statically-configured switchless mechanism;
- :class:`repro.core.backend.ZcSwitchlessBackend` — ZC-SWITCHLESS.

A backend receives fully-marshalled :class:`repro.sgx.enclave.OcallRequest`
objects from the enclave and must set ``request.mode`` to how the call was
ultimately executed (``"regular"``, ``"switchless"`` or ``"fallback"``).

All three share one lifecycle protocol, defined here once:

- ``open(enclave)`` installs the backend (spawning worker/scheduler
  threads as needed) and returns it; opening an already-open backend is
  an error — backends are single-enclave objects.
- ``close()`` requests shutdown of any backend threads; it is idempotent,
  so teardown paths may call it defensively.
- Backends are context managers: ``with make_backend("zc") as backend:``
  closes on exit.

``attach``/``stop`` remain the subclass *hooks* the protocol drives;
callers should prefer ``open``/``close`` (or, better, let
:func:`repro.api.Runtime.create` own the whole lifecycle).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.sim.instructions import Compute
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest


class CallBackend(abc.ABC):
    """Executes ocall requests on behalf of an enclave."""

    #: Human-readable backend name used in experiment reports.
    name: str = "abstract"

    # Lifecycle state, tracked by the base class so every subclass gets
    # idempotent close for free (subclasses don't call super().__init__).
    _opened: bool = False
    _closed: bool = False

    @abc.abstractmethod
    def invoke(self, request: "OcallRequest") -> Program:
        """Simulated program (run on the caller thread) executing the call."""

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def attach(self, enclave: "Enclave") -> None:
        """Called when the backend is installed on an enclave.

        Backends that need threads (worker pools, schedulers) spawn them
        here.  The default does nothing.
        """

    def stop(self) -> None:
        """Request shutdown of any backend threads (workers, scheduler)."""

    # ------------------------------------------------------------------
    # Unified lifecycle protocol
    # ------------------------------------------------------------------
    def open(self, enclave: "Enclave") -> "CallBackend":
        """Install this backend on ``enclave``; returns ``self``.

        A backend binds to exactly one enclave for its lifetime:
        re-opening (even on the same enclave) raises.
        """
        if self._opened:
            raise RuntimeError(f"backend {self.name!r} is already open")
        self._opened = True
        self._closed = False
        self.attach(enclave)
        return self

    def close(self) -> None:
        """Stop backend threads.  Idempotent: later calls are no-ops."""
        if self._closed:
            return
        self._closed = True
        self.stop()

    def __enter__(self) -> "CallBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Fault supervision (active only while a fault injector is attached)
    # ------------------------------------------------------------------
    def respawn_worker(self, index: int, target: str | None = None) -> bool:
        """Supervise a crashed worker slot back to life.

        ``target`` names the worker pool (``None`` = the backend's
        default pool).  Returns True when a fresh thread was spawned for
        the slot.  The default backend has no workers, so there is never
        anything to respawn.
        """
        return False


class RegularBackend(CallBackend):
    """Every ocall pays a full EEXIT + host execution + EENTER transition."""

    name = "regular"

    def __init__(self) -> None:
        self._enclave: "Enclave | None" = None

    def attach(self, enclave: "Enclave") -> None:
        """Install this backend on ``enclave`` (spawns its threads)."""
        self._enclave = enclave

    def invoke(self, request: "OcallRequest") -> Program:
        """Execute one call request (simulated program on the caller thread)."""
        enclave = self._enclave
        if enclave is None:
            raise RuntimeError("backend not attached to an enclave")
        cost = enclave.cost
        yield Compute(cost.eexit_cycles, tag="eexit")
        result = yield from enclave.urts.execute(request)
        yield Compute(cost.eenter_cycles, tag="eenter")
        request.mode = "regular"
        return result
