"""The enclave object and the ocall invocation path.

``Enclave.ocall`` is the single entry point the applications use.  It
models what the trusted runtime does on every ocall irrespective of the
execution backend:

1. edger8r bookkeeping (argument frame setup);
2. marshalling the input buffer from trusted to untrusted memory with the
   enclave's tlibc ``memcpy`` (this is where the vanilla-vs-zc memcpy
   difference enters every call);
3. dispatch through the installed :class:`repro.sgx.backend.CallBackend`;
4. marshalling the results back into trusted memory.

Per-call statistics (counts by execution mode, latency sums) are recorded
in :class:`CallStats`, which the experiments and the ZC scheduler's
fallback accounting read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sgx.backend import CallBackend, RegularBackend
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.epc import EpcModel
from repro.sgx.memcpy import MemcpyModel, VanillaMemcpy
from repro.sgx.trts import TrustedRuntime
from repro.sgx.urts import HostFault, UntrustedRuntime
from repro.sim.instructions import Compute
from repro.sim.kernel import Kernel, Program


class EnclaveLostError(RuntimeError):
    """The enclave aborted (``SGX_ERROR_ENCLAVE_LOST``) and could not be
    recovered.

    Raised by enclave entry points when the enclave is marked lost and
    either no recovery manager is installed or recovery exhausted its
    retry budget.  Mirrors the SDK contract: on ``SGX_ERROR_ENCLAVE_LOST``
    the application must destroy and re-create the enclave before any
    further ecall/ocall can succeed.
    """

    #: The SDK status code this models.
    sgx_status = "SGX_ERROR_ENCLAVE_LOST"


@dataclass
class OcallRequest:
    """One marshalled ocall crossing the enclave boundary.

    Attributes:
        name: Registered ocall name (e.g. ``"fwrite"``).
        args: Positional arguments passed to the host handler (real
            payloads — the applications move actual bytes).
        in_bytes / out_bytes: Sizes of the marshalled input and output
            buffers (price of the memcpy each way).
        aligned: Whether source and destination buffers are congruent
            modulo 8 (drives the tlibc memcpy cost).
        issued_at: Simulated cycle at which the caller issued the call.
        dispatched_at: Simulated cycle at which the call reached its
            backend (after setup and input marshalling).  The zc backend
            stamps its ``zc.fallback`` events with ``now - dispatched_at``
            — the paper's immediate-fallback invariant (§IV-C) says that
            difference is exactly zero, and the invariant auditor checks
            it.
        mode: How the call was eventually executed; set by the backend to
            ``"regular"``, ``"switchless"`` or ``"fallback"``.
        host_cycles: Simulated cycles the host handler took in isolation;
            written by :class:`repro.profiler.tracer.CallTracer` when one
            is installed, 0.0 otherwise.
    """

    name: str
    args: tuple[Any, ...] = ()
    in_bytes: int = 0
    out_bytes: int = 0
    aligned: bool = True
    issued_at: float = 0.0
    dispatched_at: float = 0.0
    mode: str = "unset"
    host_cycles: float = 0.0


@dataclass
class CallSiteStats:
    """Aggregated statistics for one ocall name."""

    calls: int = 0
    regular: int = 0
    switchless: int = 0
    fallback: int = 0
    total_latency_cycles: float = 0.0
    max_latency_cycles: float = 0.0

    @property
    def mean_latency_cycles(self) -> float:
        """Mean latency across the site's calls."""
        return self.total_latency_cycles / self.calls if self.calls else 0.0


class CallStats:
    """Per-ocall-name statistics for one enclave."""

    def __init__(self) -> None:
        self.by_name: dict[str, CallSiteStats] = {}

    def record(self, request: OcallRequest, completed_at: float) -> None:
        """Record one sample/event."""
        site = self.by_name.setdefault(request.name, CallSiteStats())
        site.calls += 1
        latency = completed_at - request.issued_at
        site.total_latency_cycles += latency
        site.max_latency_cycles = max(site.max_latency_cycles, latency)
        if request.mode == "regular":
            site.regular += 1
        elif request.mode == "switchless":
            site.switchless += 1
        elif request.mode == "fallback":
            site.fallback += 1
        else:
            raise ValueError(f"backend left request mode unset: {request!r}")

    @property
    def total_calls(self) -> int:
        """Total calls recorded."""
        return sum(site.calls for site in self.by_name.values())

    @property
    def total_switchless(self) -> int:
        """Calls executed switchlessly."""
        return sum(site.switchless for site in self.by_name.values())

    @property
    def total_fallback(self) -> int:
        """Calls that fell back to a regular transition."""
        return sum(site.fallback for site in self.by_name.values())

    @property
    def total_regular(self) -> int:
        """Calls that always transitioned."""
        return sum(site.regular for site in self.by_name.values())

    def switchless_fraction(self) -> float:
        """Fraction of all ocalls that executed without a transition."""
        total = self.total_calls
        return self.total_switchless / total if total else 0.0

    def summary(self) -> dict[str, dict[str, float]]:
        """Plain-dict summary suitable for experiment reports."""
        return {
            name: {
                "calls": site.calls,
                "regular": site.regular,
                "switchless": site.switchless,
                "fallback": site.fallback,
                "mean_latency_cycles": site.mean_latency_cycles,
            }
            for name, site in sorted(self.by_name.items())
        }


class Enclave:
    """One SGX enclave instance bound to a kernel and an untrusted runtime.

    Args:
        kernel: The simulation kernel the enclave's threads run on.
        urts: Host-side dispatch table for ocalls.
        cost: SGX cycle-cost constants.
        memcpy_model: The tlibc memcpy used for ocall marshalling; Intel's
            :class:`VanillaMemcpy` by default, replaced with
            :class:`repro.sgx.memcpy.ZcMemcpy` by the ZC runtime.
        epc: Optional EPC bookkeeping shared across enclaves.
        heap_bytes: Reserved enclave heap (the paper configures 1 GB max
            heap; the evaluation apps use far less).
    """

    def __init__(
        self,
        kernel: Kernel,
        urts: UntrustedRuntime,
        cost: SgxCostModel | None = None,
        memcpy_model: MemcpyModel | None = None,
        epc: EpcModel | None = None,
        heap_bytes: int = 8 * 1024 * 1024,
        name: str = "enclave",
    ) -> None:
        self.kernel = kernel
        self.urts = urts
        self.cost = cost if cost is not None else SgxCostModel()
        self.memcpy_model: MemcpyModel = (
            memcpy_model if memcpy_model is not None else VanillaMemcpy()
        )
        self.epc = epc if epc is not None else EpcModel()
        self.heap_bytes = heap_bytes
        self.name = name
        self.stats = CallStats()
        #: Ecall surface: trusted handler table, its own statistics, and
        #: an optional switchless dispatcher (Intel trusted workers or
        #: :class:`repro.core.ecalls.ZcEcallRuntime`).
        self.trts = TrustedRuntime()
        self.ecall_stats = CallStats()
        self.ecall_dispatcher: Any = None
        #: Called as ``hook(request, completed_at_cycles)`` after every
        #: ocall completes; used by the profiler's CallTracer.
        self.completion_hooks: list[Any] = []
        self.backend: CallBackend = RegularBackend()
        self.backend.open(self)
        self._epc_penalty_cycles = self.epc.allocate(name, heap_bytes)
        #: True after an SGX_ERROR_ENCLAVE_LOST-style abort: every entry
        #: point first runs recovery (or raises EnclaveLostError if no
        #: recovery manager is installed).  Set by the fault injector.
        self.lost = False
        #: Incremented on each successful re-creation after loss.
        self.generation = 0
        #: Optional :class:`repro.faults.recovery.EnclaveRecovery`; its
        #: ``recover()`` program re-creates the enclave with capped
        #: exponential backoff.  Installed by the fault injector.
        self.recovery: Any = None

    def _recover_lost(self) -> Program:
        """Bring a lost enclave back before an entry point proceeds.

        With no recovery manager installed, a lost enclave is fatal —
        exactly the SDK's contract for ``SGX_ERROR_ENCLAVE_LOST`` when the
        application has no re-create logic.
        """
        if self.recovery is None:
            raise EnclaveLostError(
                f"enclave {self.name!r} is lost and has no recovery manager"
            )
        yield from self.recovery.recover()
        return None

    def set_backend(self, backend: CallBackend) -> None:
        """Install a call-execution backend (regular, Intel, or ZC).

        Replacing an installed backend stops its worker threads first, so
        swapping backends mid-experiment never leaks spinning workers.
        Re-installing the currently-installed backend is a no-op.
        """
        if backend is self.backend:
            return
        self.backend.close()
        self.backend = backend
        backend.open(self)

    # ------------------------------------------------------------------
    # Call paths (simulated programs)
    # ------------------------------------------------------------------
    def ocall(
        self,
        name: str,
        *args: Any,
        in_bytes: int = 0,
        out_bytes: int = 0,
        aligned: bool = True,
    ) -> Program:
        """Issue one ocall from the calling enclave thread.

        Yields the simulated work of marshalling, backend dispatch and
        unmarshalling; returns the host handler's result.
        """
        request = OcallRequest(
            name=name,
            args=args,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
            aligned=aligned,
            issued_at=self.kernel.now,
        )
        if self.lost:
            yield from self._recover_lost()
        yield Compute(self.cost.ocall_bookkeeping_cycles, tag="ocall-setup")
        if in_bytes:
            yield Compute(
                self.memcpy_model.cycles(in_bytes, aligned), tag="marshal-in"
            )
        request.dispatched_at = self.kernel.now
        result = yield from self.backend.invoke(request)
        if out_bytes:
            yield Compute(
                self.memcpy_model.cycles(out_bytes, aligned), tag="marshal-out"
            )
        self.stats.record(request, self.kernel.now)
        for hook in self.completion_hooks:
            hook(request, self.kernel.now)
        # Per-call completions go on the bus only when explicitly asked
        # for: the call tracer records every call anyway, and an emit per
        # ocall is the single largest host-time cost of telemetry.
        bus = self.kernel.bus
        if bus is not None and bus.capture_calls:
            bus.emit(
                "ocall.complete",
                name=request.name,
                mode=request.mode,
                latency_cycles=self.kernel.now - request.issued_at,
                in_bytes=request.in_bytes,
                out_bytes=request.out_bytes,
            )
        if isinstance(result, HostFault):
            raise result.exception
        return result

    def regular_ocall(
        self,
        name: str,
        *args: Any,
        in_bytes: int = 0,
        out_bytes: int = 0,
        aligned: bool = True,
    ) -> Program:
        """Issue an ocall that always transitions (bypasses the backend).

        Used internally by ZC-SWITCHLESS for its memory-pool reallocation
        ocalls, which must not recurse into the switchless machinery.
        """
        request = OcallRequest(
            name=name,
            args=args,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
            aligned=aligned,
            issued_at=self.kernel.now,
        )
        if self.lost:
            yield from self._recover_lost()
        yield Compute(self.cost.ocall_bookkeeping_cycles, tag="ocall-setup")
        if in_bytes:
            yield Compute(self.memcpy_model.cycles(in_bytes, aligned), tag="marshal-in")
        yield Compute(self.cost.eexit_cycles, tag="eexit")
        result = yield from self.urts.execute(request)
        yield Compute(self.cost.eenter_cycles, tag="eenter")
        request.mode = "regular"
        if out_bytes:
            yield Compute(self.memcpy_model.cycles(out_bytes, aligned), tag="marshal-out")
        self.stats.record(request, self.kernel.now)
        for hook in self.completion_hooks:
            hook(request, self.kernel.now)
        # See ocall(): per-call bus events are opt-in via capture_calls.
        bus = self.kernel.bus
        if bus is not None and bus.capture_calls:
            bus.emit(
                "ocall.complete",
                name=request.name,
                mode=request.mode,
                latency_cycles=self.kernel.now - request.issued_at,
                in_bytes=request.in_bytes,
                out_bytes=request.out_bytes,
            )
        if isinstance(result, HostFault):
            raise result.exception
        return result

    def ecall(self, program: Program) -> Program:
        """Run ``program`` inside the enclave via an ecall.

        Charges enclave entry before and enclave exit after the trusted
        program; returns the program's result.
        """
        if self.lost:
            yield from self._recover_lost()
        yield Compute(self.cost.ecall_entry_cycles, tag="ecall-enter")
        result = yield from program
        yield Compute(self.cost.ecall_exit_cycles, tag="ecall-exit")
        return result

    def ecall_named(
        self,
        name: str,
        *args: Any,
        in_bytes: int = 0,
        out_bytes: int = 0,
        aligned: bool = True,
    ) -> Program:
        """Issue a named ecall from an *untrusted* application thread.

        The handler must be registered in :attr:`trts`.  With no
        switchless ecall dispatcher installed the call pays a full
        EENTER/EEXIT transition; otherwise the dispatcher may hand it to
        a trusted worker thread without a transition.
        """
        request = OcallRequest(
            name=name,
            args=args,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
            aligned=aligned,
            issued_at=self.kernel.now,
        )
        if self.lost:
            yield from self._recover_lost()
        yield Compute(self.cost.ocall_bookkeeping_cycles, tag="ecall-setup")
        if in_bytes:
            yield Compute(self.memcpy_model.cycles(in_bytes, aligned), tag="marshal-in")
        if self.ecall_dispatcher is not None:
            request.dispatched_at = self.kernel.now
            result = yield from self.ecall_dispatcher.invoke_ecall(request)
        else:
            yield Compute(self.cost.ecall_entry_cycles, tag="eenter")
            result = yield from self.trts.execute(request)
            yield Compute(self.cost.ecall_exit_cycles, tag="eexit")
            request.mode = "regular"
        if out_bytes:
            yield Compute(self.memcpy_model.cycles(out_bytes, aligned), tag="marshal-out")
        self.ecall_stats.record(request, self.kernel.now)
        bus = self.kernel.bus
        if bus is not None:
            bus.emit(
                "ecall.complete",
                name=request.name,
                mode=request.mode,
                latency_cycles=self.kernel.now - request.issued_at,
            )
        if isinstance(result, HostFault):
            raise result.exception
        return result

    def stop_backend(self) -> None:
        """Ask the installed backend and ecall dispatcher to shut down.

        Idempotent: the backend's unified ``close()`` protocol makes
        repeated teardown calls no-ops.
        """
        self.backend.close()
        if self.ecall_dispatcher is not None and self.ecall_dispatcher is not self.backend:
            self.ecall_dispatcher.stop()
