"""SGX substrate: enclaves, transition costs and trusted-libc models.

This package models the SGX-specific machinery the paper's systems sit on:

- :mod:`repro.sgx.costmodel` — every cycle constant of the SGX runtime
  (transition costs, pause latency, switchless handshake costs), calibrated
  to the numbers the paper reports for its Xeon E3-1275 v6.
- :mod:`repro.sgx.memcpy` — cost models for the trusted libc ``memcpy``:
  Intel's software word/byte copy and the paper's ``rep movsb`` version.
- :mod:`repro.sgx.enclave` — the enclave object and the ocall invocation
  path (argument marshalling, backend dispatch, per-call statistics).
- :mod:`repro.sgx.urts` — the untrusted runtime holding registered ocall
  handlers.
- :mod:`repro.sgx.backend` — the pluggable call-execution backend
  interface; the regular (always-transition) backend lives here, the Intel
  switchless backend in :mod:`repro.switchless` and ZC-SWITCHLESS in
  :mod:`repro.core`.
- :mod:`repro.sgx.epc` — enclave page cache bookkeeping.
"""

from repro.sgx.backend import CallBackend, RegularBackend
from repro.sgx.batching import OcallBatcher
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.edl import EnclaveInterface
from repro.sgx.enclave import CallStats, Enclave, EnclaveLostError, OcallRequest
from repro.sgx.epc import EpcModel
from repro.sgx.memcpy import MemcpyModel, VanillaMemcpy, ZcMemcpy
from repro.sgx.trts import TrustedRuntime
from repro.sgx.urts import HostFault, UntrustedRuntime

__all__ = [
    "CallBackend",
    "CallStats",
    "Enclave",
    "EnclaveInterface",
    "EnclaveLostError",
    "EpcModel",
    "HostFault",
    "MemcpyModel",
    "OcallBatcher",
    "OcallRequest",
    "RegularBackend",
    "SgxCostModel",
    "TrustedRuntime",
    "UntrustedRuntime",
    "VanillaMemcpy",
    "ZcMemcpy",
]
