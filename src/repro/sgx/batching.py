"""Ocall batching: amortising transitions over multiple calls.

The paper's related work (§VI) notes that sgx-perf [32] recommends
*batching* calls as an alternative way to reduce enclave-transition
overhead: instead of one ocall per operation, the enclave queues several
operations and crosses the boundary once, executing them back-to-back on
the host side.

Batching is complementary to switchless calls — a batched ocall still
goes through whatever backend is installed, so a batch can itself execute
switchlessly.  Its costs are different, though: batching adds *latency*
(operations wait for the batch to fill) and only helps when operations
have no data dependencies; switchless calls keep per-operation latency
but burn worker CPU.  ``bench_batching`` quantifies the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave

#: Ocall name under which batches are dispatched.
BATCH_OCALL = "ocall_batch"

#: Host-side dispatch overhead per batched operation (argument decode +
#: indirect call), on top of each operation's own handler cost.
PER_OP_DISPATCH_CYCLES = 120.0


@dataclass
class _QueuedOp:
    name: str
    args: tuple[Any, ...]
    in_bytes: int
    out_bytes: int


@dataclass
class OcallBatcher:
    """Queues ocalls inside the enclave and flushes them as one ocall.

    Args:
        enclave: The enclave whose backend dispatches the batch.
        max_batch: Flush automatically once this many operations queue.

    Usage (inside a simulated enclave thread)::

        batcher = OcallBatcher(enclave, max_batch=16)
        yield from batcher.add("fwrite", fd, data, in_bytes=len(data))
        ...
        results = yield from batcher.flush()

    Results are returned in queue order.  Faults raised by individual
    handlers are re-raised at flush time, after the whole batch executed —
    the semantics real batching frameworks provide.
    """

    enclave: "Enclave"
    max_batch: int = 16
    _queue: list[_QueuedOp] = field(default_factory=list)
    batches_flushed: int = 0
    ops_batched: int = 0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        urts = self.enclave.urts
        if not urts.registered(BATCH_OCALL):
            urts.register(BATCH_OCALL, self._host_execute_batch)

    @property
    def pending(self) -> int:
        """Operations currently queued for the next flush."""
        return len(self._queue)

    def add(
        self,
        name: str,
        *args: Any,
        in_bytes: int = 0,
        out_bytes: int = 0,
    ) -> Program:
        """Queue one operation; flushes automatically at ``max_batch``.

        Returns the batch's results when it triggered a flush, else None.
        """
        self._queue.append(_QueuedOp(name, args, in_bytes, out_bytes))
        if len(self._queue) >= self.max_batch:
            results = yield from self.flush()
            return results
        return None

    def flush(self) -> Program:
        """Dispatch the queued operations as a single ocall."""
        if not self._queue:
            return []
        batch, self._queue = self._queue, []
        in_bytes = sum(op.in_bytes for op in batch)
        out_bytes = sum(op.out_bytes for op in batch)
        results = yield from self.enclave.ocall(
            BATCH_OCALL,
            tuple((op.name, op.args) for op in batch),
            in_bytes=in_bytes,
            out_bytes=out_bytes,
        )
        self.batches_flushed += 1
        self.ops_batched += len(batch)
        # Re-raise the first captured per-op fault, preserving batch
        # completion semantics.
        from repro.sgx.urts import HostFault

        for result in results:
            if isinstance(result, HostFault):
                raise result.exception
        return results

    def _host_execute_batch(self, ops: tuple[tuple[str, tuple], ...]) -> Program:
        """Host side: run every queued handler back-to-back."""
        from repro.sgx.enclave import OcallRequest
        from repro.sim.instructions import Compute

        results = []
        for name, args in ops:
            yield Compute(PER_OP_DISPATCH_CYCLES, tag="batch-dispatch")
            sub_request = OcallRequest(name=name, args=args)
            result = yield from self.enclave.urts.execute(sub_request)
            results.append(result)
        return results
