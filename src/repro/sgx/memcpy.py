"""Cost models for the trusted libc ``memcpy`` implementations.

The Intel SDK's tlibc ``memcpy`` copies word-by-word when source and
destination are congruent modulo 8 and *byte-by-byte* otherwise (§IV-F).
The paper replaces it with the hardware ``rep movsb`` string copy, which is
alignment-insensitive and far faster for large buffers.

The per-byte constants are calibrated so that the end-to-end ``write``
ocall benchmark (Fig. 7 / Fig. 13) reproduces the paper's curves at
3.8 GHz:

- vanilla unaligned throughput plateaus around 0.4 GB/s;
- vanilla aligned reaches ~1.7 GB/s at 32 kB;
- zc-memcpy yields ~3.6x (aligned) and ~15x (unaligned) speedups for
  32 kB buffers once the ~14 k-cycle ocall overhead is included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


class MemcpyModel(Protocol):
    """Anything that can price a memcpy of ``nbytes``."""

    def cycles(self, nbytes: int, aligned: bool = True) -> float:
        """Cycles to copy ``nbytes`` with the given mutual alignment."""
        ...


def _check_size(nbytes: int) -> None:
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")


@dataclass(frozen=True)
class VanillaMemcpy:
    """Intel SDK tlibc memcpy: software word copy, byte copy if unaligned.

    Attributes:
        startup_cycles: Fixed call/dispatch overhead.
        cycles_per_byte_aligned: Per-byte cost of the word-by-word loop
            (8 bytes per iteration, expressed per byte).
        cycles_per_byte_unaligned: Per-byte cost of the byte-by-byte loop.
    """

    startup_cycles: float = 15.0
    cycles_per_byte_aligned: float = 1.84
    cycles_per_byte_unaligned: float = 9.5

    def cycles(self, nbytes: int, aligned: bool = True) -> float:
        """Cycles to copy ``nbytes`` with the given mutual alignment."""
        _check_size(nbytes)
        if nbytes == 0:
            return 0.0
        per_byte = self.cycles_per_byte_aligned if aligned else self.cycles_per_byte_unaligned
        return self.startup_cycles + nbytes * per_byte


@dataclass(frozen=True)
class ZcMemcpy:
    """The paper's optimised memcpy built on ``rep movsb`` (Listing 1).

    ``rep movsb`` has a higher fixed startup cost than a software loop
    (microcode setup) but a much lower per-byte cost, and is insensitive to
    mutual misalignment.  A mild penalty applies to unaligned destinations,
    reflecting the fast-string behaviour described in Intel's optimisation
    manual.
    """

    startup_cycles: float = 40.0
    cycles_per_byte: float = 0.20
    unaligned_penalty: float = 1.15

    def cycles(self, nbytes: int, aligned: bool = True) -> float:
        """Cycles to copy ``nbytes`` with the given mutual alignment."""
        _check_size(nbytes)
        if nbytes == 0:
            return 0.0
        per_byte = self.cycles_per_byte if aligned else self.cycles_per_byte * self.unaligned_penalty
        return self.startup_cycles + nbytes * per_byte


def speedup(
    vanilla: VanillaMemcpy,
    zc: ZcMemcpy,
    nbytes: int,
    aligned: bool,
    fixed_overhead_cycles: float = 0.0,
) -> float:
    """End-to-end speedup of zc over vanilla for one op moving ``nbytes``.

    ``fixed_overhead_cycles`` is the per-op cost that is identical in both
    modes (e.g. the ocall transition), which damps the raw copy speedup the
    way Fig. 13 reports it.
    """
    base = fixed_overhead_cycles + vanilla.cycles(nbytes, aligned)
    improved = fixed_overhead_cycles + zc.cycles(nbytes, aligned)
    if improved <= 0:
        raise ValueError("improved path has non-positive cost")
    return base / improved
