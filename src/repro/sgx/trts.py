"""The trusted runtime: the enclave-side ecall dispatch table.

Mirror of :class:`repro.sgx.urts.UntrustedRuntime` for the opposite call
direction: *untrusted* application threads invoke named functions that
execute *inside* the enclave.  Handlers are generator coroutines; their
exceptions are captured into :class:`repro.sgx.urts.HostFault` results
(the class is direction-agnostic: a fault transported across the boundary)
so that trusted switchless workers survive failing calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sgx.urts import HostFault, UnknownOcallError
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import OcallRequest

EcallHandler = Callable[..., Program]


class UnknownEcallError(UnknownOcallError):
    """Raised when an ecall targets a name with no registered handler."""


class TrustedRuntime:
    """Holds the registered ecall handlers of one enclave."""

    def __init__(self) -> None:
        self._handlers: dict[str, EcallHandler] = {}

    def register(self, name: str, handler: EcallHandler) -> None:
        """Register ``handler`` for ecalls named ``name``."""
        self._handlers[name] = handler

    def register_many(self, handlers: dict[str, EcallHandler]) -> None:
        """Register a batch of handlers."""
        for name, handler in handlers.items():
            self.register(name, handler)

    def registered(self, name: str) -> bool:
        """Whether a handler exists for ``name``."""
        return name in self._handlers

    def execute(self, request: "OcallRequest") -> Program:
        """Run the trusted handler for ``request``; faults are captured."""
        handler = self._handlers.get(request.name)
        if handler is None:
            return HostFault(
                UnknownEcallError(f"no handler registered for ecall {request.name!r}")
            )
        try:
            result = yield from handler(*request.args)
        except Exception as exc:  # noqa: BLE001 - transported to the caller
            return HostFault(exc)
        return result
