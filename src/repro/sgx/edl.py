"""EDL-style enclave interface definitions.

The Intel SDK defines an enclave's boundary in an ``.edl`` file: trusted
(ecall) and untrusted (ocall) functions, with switchless execution opted
in per function via ``transition_using_threads`` — fixed when edger8r
generates the bridges, i.e. at build time.  That static opt-in is the
paper's core pain point (§III-A).

This module reproduces that workflow declaratively: an
:class:`EnclaveInterface` lists the boundary functions with their
attributes, validates the definition, and "generates the bridges" —
registering handlers into the trusted/untrusted runtimes and deriving the
:class:`repro.switchless.SwitchlessConfig` for the Intel backend.  The zc
backends ignore the switchless flags entirely, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.switchless.config import SwitchlessConfig

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave


class EdlError(ValueError):
    """Raised for invalid interface definitions."""


@dataclass(frozen=True)
class BoundaryFunction:
    """One function crossing the enclave boundary.

    Attributes:
        name: The ocall/ecall name.
        handler: Generator coroutine implementing it (host side for
            untrusted functions, enclave side for trusted ones).
        switchless: The EDL ``transition_using_threads`` attribute.
    """

    name: str
    handler: Callable
    switchless: bool = False


@dataclass
class EnclaveInterface:
    """A declarative enclave boundary (the ``.edl`` file equivalent).

    Example::

        interface = EnclaveInterface(name="storage")
        interface.untrusted("fwrite", fwrite_handler, switchless=True)
        interface.trusted("seal", seal_handler)
        interface.bind(enclave)   # registers handlers
        backend = make_backend("intel", interface.switchless_config())
    """

    name: str
    trusted_functions: list[BoundaryFunction] = field(default_factory=list)
    untrusted_functions: list[BoundaryFunction] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def trusted(
        self, name: str, handler: Callable, switchless: bool = False
    ) -> "EnclaveInterface":
        """Declare an ecall (returns self for chaining)."""
        self._check_fresh(name)
        self.trusted_functions.append(BoundaryFunction(name, handler, switchless))
        return self

    def untrusted(
        self, name: str, handler: Callable, switchless: bool = False
    ) -> "EnclaveInterface":
        """Declare an ocall (returns self for chaining)."""
        self._check_fresh(name)
        self.untrusted_functions.append(BoundaryFunction(name, handler, switchless))
        return self

    def _check_fresh(self, name: str) -> None:
        if not name or not name.isidentifier():
            raise EdlError(f"function name {name!r} is not a valid identifier")
        if name in self.names():
            raise EdlError(f"duplicate boundary function {name!r}")

    def names(self) -> set[str]:
        """Every declared boundary-function name."""
        return {f.name for f in self.trusted_functions} | {
            f.name for f in self.untrusted_functions
        }

    # ------------------------------------------------------------------
    # "edger8r": bridge generation
    # ------------------------------------------------------------------
    def bind(self, enclave: "Enclave") -> "EnclaveInterface":
        """Register every handler into the enclave's runtimes."""
        for function in self.untrusted_functions:
            enclave.urts.register(function.name, function.handler)
        for function in self.trusted_functions:
            enclave.trts.register(function.name, function.handler)
        return self

    def switchless_config(self, **config_kwargs) -> SwitchlessConfig:
        """Derive the Intel SDK configuration from the EDL attributes."""
        return SwitchlessConfig(
            switchless_ocalls=frozenset(
                f.name for f in self.untrusted_functions if f.switchless
            ),
            switchless_ecalls=frozenset(
                f.name for f in self.trusted_functions if f.switchless
            ),
            **config_kwargs,
        )

    def describe(self) -> str:
        """A human-readable rendering, in loose ``.edl`` syntax."""
        lines = [f"enclave {self.name} {{"]
        lines.append("    trusted {")
        for function in self.trusted_functions:
            attr = " transition_using_threads" if function.switchless else ""
            lines.append(f"        public void {function.name}(){attr};")
        lines.append("    };")
        lines.append("    untrusted {")
        for function in self.untrusted_functions:
            attr = " transition_using_threads" if function.switchless else ""
            lines.append(f"        void {function.name}(){attr};")
        lines.append("    };")
        lines.append("};")
        return "\n".join(lines)
