"""The Intel SDK switchless call backend.

Caller-side protocol (matching ``sgx_uswitchless``):

1. If the ocall is not statically marked switchless → regular transition.
2. Publish a task into the untrusted pool; a full pool → immediate
   fallback.
3. Busy-wait up to ``retries_before_fallback`` pause instructions for a
   worker to *claim* the task.  On timeout, withdraw the task and fall
   back to a regular ocall (the retry cycles are burnt either way — this
   is the waste Take-away 7 is about).
4. Once claimed, busy-wait for completion (the caller thread has nothing
   else to do; this pins one logical CPU per in-flight switchless call,
   the "exactly one thread busy-waiting per active worker" of §IV-A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sgx.backend import CallBackend
from repro.sim.instructions import Compute, Spin
from repro.sim.kernel import Program, SimThread, ThreadState
from repro.switchless.config import SwitchlessConfig
from repro.switchless.taskpool import SwitchlessTask, TaskPool
from repro.switchless.worker import IntelWorkerStats, intel_worker_loop

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest

#: Chunk size (cycles) for the unbounded wait-for-completion spin.
_COMPLETION_SPIN_CHUNK = 5_000_000.0


class IntelSwitchlessBackend(CallBackend):
    """Statically-configured switchless calls, as shipped in the SDK."""

    name = "intel-switchless"

    def __init__(self, config: SwitchlessConfig | None = None) -> None:
        # Defaulted, mirroring ZcSwitchlessBackend: both backends can be
        # constructed bare and configured by their config dataclasses.
        self.config = config if config is not None else SwitchlessConfig()
        self._enclave: "Enclave | None" = None
        self.pool: TaskPool | None = None
        self.ecall_pool: TaskPool | None = None
        self.worker_threads: list[SimThread] = []
        self.worker_stats: list[IntelWorkerStats] = []
        self.tworker_threads: list[SimThread] = []
        self.tworker_stats: list[IntelWorkerStats] = []
        #: Threads of crashed-and-respawned workers (fault layer).
        self.retired_threads: list[SimThread] = []
        self.worker_respawns = 0
        self._stop_flag = [False]
        self.fallback_count = 0
        self.switchless_count = 0
        self.ecall_fallback_count = 0
        self.ecall_switchless_count = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, enclave: "Enclave") -> None:
        """Install this backend on ``enclave`` (spawns its threads)."""
        self._enclave = enclave
        self.pool = TaskPool(enclave.kernel, self.config.effective_pool_capacity)
        for i in range(self.config.num_uworkers):
            stats = IntelWorkerStats()
            self.worker_stats.append(stats)
            thread = enclave.kernel.spawn(
                intel_worker_loop(
                    enclave, self.pool, self.config, stats, self._stop_flag, index=i
                ),
                name=f"intel-worker-{i}",
                kind="intel-worker",
                daemon=True,
            )
            self.worker_threads.append(thread)
        if self.config.switchless_ecalls:
            # Trusted worker threads serving switchless ecalls.
            self.ecall_pool = TaskPool(
                enclave.kernel, 2 * self.config.num_tworkers
            )
            for i in range(self.config.num_tworkers):
                stats = IntelWorkerStats()
                self.tworker_stats.append(stats)
                thread = enclave.kernel.spawn(
                    intel_worker_loop(
                        enclave,
                        self.ecall_pool,
                        self.config,
                        stats,
                        self._stop_flag,
                        executor=enclave.trts.execute,
                        index=i,
                        target="intel-tworker",
                    ),
                    name=f"intel-tworker-{i}",
                    kind="intel-tworker",
                    daemon=True,
                )
                self.tworker_threads.append(thread)
            enclave.ecall_dispatcher = self

    def stop(self) -> None:
        """Terminate the worker pools (process teardown)."""
        self._stop_flag[0] = True
        if self.pool is not None:
            self.pool.wake_all()
        if self.ecall_pool is not None:
            self.ecall_pool.wake_all()

    # ------------------------------------------------------------------
    # Fault supervision (active only while a fault injector is attached)
    # ------------------------------------------------------------------
    def respawn_worker(self, index: int, target: str | None = None) -> bool:
        """Supervise a crashed worker slot back to life.

        Restarts the worker loop on a fresh thread, reusing the slot's
        accumulated statistics.  Returns False when the respawn is moot
        (runtime shutting down, bad slot, or the thread is still alive).
        """
        if target is None:
            target = "intel-worker"
        enclave = self._enclave
        if enclave is None or self._stop_flag[0]:
            return False
        if target == "intel-worker":
            threads, stats_list, pool, executor = (
                self.worker_threads,
                self.worker_stats,
                self.pool,
                None,
            )
        elif target == "intel-tworker":
            threads, stats_list, pool, executor = (
                self.tworker_threads,
                self.tworker_stats,
                self.ecall_pool,
                enclave.trts.execute,
            )
        else:
            return False
        if pool is None or not 0 <= index < len(threads):
            return False
        old = threads[index]
        if old.state is not ThreadState.DONE:
            return False
        self.retired_threads.append(old)
        self.worker_respawns += 1
        thread = enclave.kernel.spawn(
            intel_worker_loop(
                enclave,
                pool,
                self.config,
                stats_list[index],
                self._stop_flag,
                executor=executor,
                index=index,
                target=target,
            ),
            name=f"{target}-{index}-r{self.worker_respawns}",
            kind=target,
            daemon=True,
        )
        threads[index] = thread
        return True

    # ------------------------------------------------------------------
    # Call path
    # ------------------------------------------------------------------
    def invoke(self, request: "OcallRequest") -> Program:
        """Execute one call request (simulated program on the caller thread)."""
        enclave = self._enclave
        pool = self.pool
        if enclave is None or pool is None:
            raise RuntimeError("backend not attached to an enclave")
        cost = enclave.cost
        if not self.config.is_switchless(request.name):
            result = yield from self._regular(request)
            request.mode = "regular"
            return result

        bus = enclave.kernel.bus
        yield Compute(cost.switchless_enqueue_cycles, tag="sl-enqueue")
        task = SwitchlessTask(enclave.kernel, request)
        if not pool.try_enqueue(task):
            self.fallback_count += 1
            if bus is not None:
                bus.emit("intel.fallback", name=request.name, reason="pool-full")
            result = yield from self._regular(request)
            request.mode = "fallback"
            return result

        rbf_budget = cost.pause_loop_cycles(self.config.retries_before_fallback)
        picked = yield Spin(task.picked, rbf_budget, tag="sl-wait-pickup")
        if not picked and pool.try_cancel(task):
            # Retry budget exhausted and nobody claimed the task.
            self.fallback_count += 1
            if bus is not None:
                bus.emit("intel.fallback", name=request.name, reason="retry-timeout")
            result = yield from self._regular(request)
            request.mode = "fallback"
            return result

        # Claimed (possibly at the last instant): busy-wait for completion.
        # Under fault injection the wait is bounded: if the claiming
        # worker crashed, the task is abandoned and the call recovers via
        # a regular fallback.  Healthy runs never consult the timeout.
        waited = 0.0
        while not task.done.fired:
            fired = yield Spin(task.done, _COMPLETION_SPIN_CHUNK, tag="sl-wait-done")
            if fired or task.done.fired:
                break
            faults = enclave.kernel.faults
            if faults is None:
                continue
            waited += _COMPLETION_SPIN_CHUNK
            if waited < faults.caller_timeout_cycles(self.config.completion_timeout_cycles):
                continue
            task.abandoned = True
            self.fallback_count += 1
            if bus is not None:
                bus.emit(
                    "intel.fallback", name=request.name, reason="completion-timeout"
                )
            faults.emit(
                "fault.caller.timeout", name=request.name, waited_cycles=waited
            )
            result = yield from self._regular(request)
            request.mode = "fallback"
            return result
        self.switchless_count += 1
        # No per-success emit — ``ocall.complete`` carries the chosen mode;
        # only fallbacks (the exceptional path) are bus events.
        request.mode = "switchless"
        return task.done.value

    def _regular(self, request: "OcallRequest") -> Program:
        enclave = self._enclave
        assert enclave is not None
        cost = enclave.cost
        yield Compute(cost.eexit_cycles, tag="eexit")
        result = yield from enclave.urts.execute(request)
        yield Compute(cost.eenter_cycles, tag="eenter")
        return result

    # ------------------------------------------------------------------
    # Ecall path (installed as the enclave's ecall dispatcher when the
    # configuration marks any ecall switchless)
    # ------------------------------------------------------------------
    def invoke_ecall(self, request: "OcallRequest") -> Program:
        """Switchless-or-fallback execution of a named ecall.

        Same protocol as the ocall path, with the directions flipped: the
        untrusted caller publishes into the trusted pool and trusted
        workers execute; the fallback is a regular EENTER/EEXIT ecall.
        """
        enclave = self._enclave
        pool = self.ecall_pool
        if enclave is None or pool is None:
            raise RuntimeError("ecall dispatch not configured")
        cost = enclave.cost
        if not self.config.is_switchless_ecall(request.name):
            result = yield from self._regular_ecall(request)
            request.mode = "regular"
            return result

        bus = enclave.kernel.bus
        yield Compute(cost.switchless_enqueue_cycles, tag="sl-ecall-enqueue")
        task = SwitchlessTask(enclave.kernel, request)
        if not pool.try_enqueue(task):
            self.ecall_fallback_count += 1
            if bus is not None:
                bus.emit(
                    "intel.fallback", name=request.name, reason="pool-full", path="ecall"
                )
            result = yield from self._regular_ecall(request)
            request.mode = "fallback"
            return result

        rbf_budget = cost.pause_loop_cycles(self.config.retries_before_fallback)
        picked = yield Spin(task.picked, rbf_budget, tag="sl-ecall-wait-pickup")
        if not picked and pool.try_cancel(task):
            self.ecall_fallback_count += 1
            if bus is not None:
                bus.emit(
                    "intel.fallback", name=request.name, reason="retry-timeout", path="ecall"
                )
            result = yield from self._regular_ecall(request)
            request.mode = "fallback"
            return result

        # Bounded under fault injection, exactly as the ocall path above.
        waited = 0.0
        while not task.done.fired:
            fired = yield Spin(task.done, _COMPLETION_SPIN_CHUNK, tag="sl-ecall-wait-done")
            if fired or task.done.fired:
                break
            faults = enclave.kernel.faults
            if faults is None:
                continue
            waited += _COMPLETION_SPIN_CHUNK
            if waited < faults.caller_timeout_cycles(self.config.completion_timeout_cycles):
                continue
            task.abandoned = True
            self.ecall_fallback_count += 1
            if bus is not None:
                bus.emit(
                    "intel.fallback",
                    name=request.name,
                    reason="completion-timeout",
                    path="ecall",
                )
            faults.emit(
                "fault.caller.timeout", name=request.name, waited_cycles=waited
            )
            result = yield from self._regular_ecall(request)
            request.mode = "fallback"
            return result
        self.ecall_switchless_count += 1
        request.mode = "switchless"
        return task.done.value

    def _regular_ecall(self, request: "OcallRequest") -> Program:
        enclave = self._enclave
        assert enclave is not None
        cost = enclave.cost
        yield Compute(cost.ecall_entry_cycles, tag="eenter")
        result = yield from enclave.trts.execute(request)
        yield Compute(cost.ecall_exit_cycles, tag="eexit")
        return result
