"""Reimplementation of the Intel SGX SDK switchless-call mechanism.

This is the *baseline* the paper compares against (§II, §III).  Its three
defining properties — all faithfully reproduced — are exactly the ones the
paper criticises:

1. **Static selection** (§III-A): only ocalls listed in
   :class:`SwitchlessConfig.switchless_ocalls` (fixed at "build time") may
   run switchlessly; everything else always transitions.
2. **Static worker pool** (§III-B): ``num_uworkers`` untrusted worker
   threads are created at startup and kept for the process lifetime.
3. **Pause-loop parameterisation** (§III-C): a caller busy-waits up to
   ``retries_before_fallback`` pause instructions for a worker to pick its
   task up before falling back to a regular ocall, and an idle worker
   busy-waits ``retries_before_sleep`` pauses before going to sleep.  Both
   default to 20,000 retries ≈ 2.8 M cycles, the value the paper calls
   abnormal.
"""

from typing import Any

from repro.switchless.config import SwitchlessConfig
from repro.switchless.hotcalls import HotCallsBackend, HotCallsConfig
from repro.switchless.taskpool import SwitchlessTask, TaskPool


def __getattr__(name: str) -> Any:
    # Deprecated construction path: backends are built by repro.api.
    if name == "IntelSwitchlessBackend":
        import warnings

        warnings.warn(
            "importing IntelSwitchlessBackend from repro.switchless is "
            "deprecated; construct backends via repro.api (Runtime.create or "
            "make_backend('intel'))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.switchless.backend import IntelSwitchlessBackend

        return IntelSwitchlessBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "HotCallsBackend",
    "HotCallsConfig",
    "IntelSwitchlessBackend",
    "SwitchlessConfig",
    "SwitchlessTask",
    "TaskPool",
]
