"""Static build-time configuration of the Intel switchless mechanism.

This mirrors ``sgx_uswitchless_config_t`` of the SDK: the worker counts and
retry parameters are fixed when the enclave is created, and the set of
switchless routines is fixed when the EDL file is compiled — the core
inflexibility ZC-SWITCHLESS removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: SDK default for both retry knobs (Intel SGX SDK v2.14).
SDK_DEFAULT_RETRIES = 20_000


@dataclass(frozen=True)
class SwitchlessConfig:
    """Build-time configuration of the SDK switchless-call library.

    Attributes:
        switchless_ocalls: Names of the ocalls marked ``transition_using_
            threads`` in the EDL file.  Only these may execute
            switchlessly.
        switchless_ecalls: Names of the ecalls marked switchless; served
            by *trusted* worker threads inside the enclave.
        num_uworkers: Untrusted worker threads serving switchless ocalls.
        num_tworkers: Trusted worker threads serving switchless ecalls.
        retries_before_fallback: Pause retries a caller performs waiting
            for a worker to *start* its request before falling back to a
            regular call.
        retries_before_sleep: Pause retries an idle worker performs
            waiting for a request before going to sleep.
        pool_capacity: Task-pool slots; a full pool causes immediate
            fallback.  Defaults to twice the worker count.
        completion_timeout_cycles: Bound on the caller's wait for a
            *claimed* task to complete, enforced **only while a fault
            injector is attached** (``kernel.faults`` set): on expiry the
            task is abandoned and the call recovers via a regular
            fallback ocall.  The SDK has no such bound — a crashed worker
            would hang the caller forever; healthy runs never consult it.
    """

    switchless_ocalls: frozenset[str] = field(default_factory=frozenset)
    switchless_ecalls: frozenset[str] = field(default_factory=frozenset)
    num_uworkers: int = 2
    num_tworkers: int = 2
    retries_before_fallback: int = SDK_DEFAULT_RETRIES
    retries_before_sleep: int = SDK_DEFAULT_RETRIES
    pool_capacity: int | None = None
    completion_timeout_cycles: float = 100_000_000.0

    def __post_init__(self) -> None:
        if self.num_uworkers < 1:
            raise ValueError("num_uworkers must be >= 1")
        if self.num_tworkers < 1:
            raise ValueError("num_tworkers must be >= 1")
        if self.retries_before_fallback < 0:
            raise ValueError("retries_before_fallback must be >= 0")
        if self.retries_before_sleep < 0:
            raise ValueError("retries_before_sleep must be >= 0")
        if self.pool_capacity is not None and self.pool_capacity < 1:
            raise ValueError("pool_capacity must be >= 1")
        if self.completion_timeout_cycles <= 0:
            raise ValueError("completion_timeout_cycles must be positive")
        if not isinstance(self.switchless_ocalls, frozenset):
            object.__setattr__(self, "switchless_ocalls", frozenset(self.switchless_ocalls))
        if not isinstance(self.switchless_ecalls, frozenset):
            object.__setattr__(self, "switchless_ecalls", frozenset(self.switchless_ecalls))

    @property
    def effective_pool_capacity(self) -> int:
        """Task-pool slots actually allocated."""
        if self.pool_capacity is not None:
            return self.pool_capacity
        return 2 * self.num_uworkers

    def is_switchless(self, ocall_name: str) -> bool:
        """Whether ``ocall_name`` was statically marked switchless."""
        return ocall_name in self.switchless_ocalls

    def is_switchless_ecall(self, ecall_name: str) -> bool:
        """Whether ``ecall_name`` was statically marked switchless."""
        return ecall_name in self.switchless_ecalls
