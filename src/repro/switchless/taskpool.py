"""The untrusted task pool shared by callers and Intel switchless workers.

In the SDK, in-enclave callers publish switchless requests into a lock-free
pool in untrusted memory and worker threads race to claim them (Fig. 1 of
the paper).  In the simulation, code between two yields is atomic, so the
pool can use plain Python structures while modelling exactly the SDK's
claim/cancel semantics:

- a caller may *cancel* a still-pending task when its retry budget runs
  out (falling back to a regular ocall);
- a worker may *claim* a pending task, after which cancellation fails and
  the caller must wait for completion;
- a full pool rejects new tasks (immediate fallback).

Under fault injection (:mod:`repro.faults`) two more things can happen:
the submit path's futex wake may be dropped or delayed by an active
``handoff`` fault window, and a claimed task whose worker crashed may be
*abandoned* by its caller (completion timeout → fallback recovery).
Neither path exists on healthy runs (``kernel.faults is None``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sim.kernel import Kernel
from repro.sim.primitives import Event

if TYPE_CHECKING:
    from repro.sgx.enclave import OcallRequest


class SwitchlessTask:
    """One switchless ocall request published to the pool."""

    __slots__ = ("request", "picked", "done", "cancelled", "abandoned")

    def __init__(self, kernel: Kernel, request: "OcallRequest") -> None:
        self.request = request
        #: Fired by the worker that claims the task.
        self.picked: Event = kernel.event(f"picked:{request.name}")
        #: Fired (with the handler's result) when execution completes.
        self.done: Event = kernel.event(f"done:{request.name}")
        self.cancelled = False
        #: Set when the caller's completion wait timed out under fault
        #: injection and the call was recovered via a fallback ocall; a
        #: worker holding the task drops it instead of executing.
        self.abandoned = False


class TaskPool:
    """Bounded FIFO pool of pending switchless tasks."""

    def __init__(self, kernel: Kernel, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self._pending: deque[SwitchlessTask] = deque()
        self._task_signals: list[Event] = []
        self._sleeping: deque[Event] = deque()
        self.enqueued_total = 0
        self.rejected_full = 0
        self.cancelled_total = 0

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------
    def try_enqueue(self, task: SwitchlessTask) -> bool:
        """Publish ``task``; returns False (fallback) when the pool is full.

        Enqueueing signals every armed worker and wakes one sleeping worker,
        matching the SDK's submit path.
        """
        if len(self._pending) >= self.capacity:
            self.rejected_full += 1
            return False
        self._pending.append(task)
        self.enqueued_total += 1
        signals, self._task_signals = self._task_signals, []
        for signal in signals:
            signal.fire_if_unfired()
        self._wake_one()
        return True

    def try_cancel(self, task: SwitchlessTask) -> bool:
        """Withdraw a still-pending task (caller retry budget exhausted).

        Returns False if a worker already claimed it, in which case the
        caller must wait for completion instead.
        """
        try:
            self._pending.remove(task)
        except ValueError:
            return False
        task.cancelled = True
        self.cancelled_total += 1
        return True

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def try_claim(self) -> SwitchlessTask | None:
        """Claim the oldest pending task, or None when the pool is empty."""
        if not self._pending:
            return None
        return self._pending.popleft()

    def has_pending(self) -> bool:
        """Whether any task is waiting in the pool."""
        return bool(self._pending)

    def arm_task_signal(self) -> Event:
        """One-shot event fired at the next enqueue (worker idle wait)."""
        signal = self.kernel.event("taskpool-signal")
        if self._pending:
            signal.fire()
            return signal
        self._task_signals.append(signal)
        return signal

    def register_sleeper(self) -> Event:
        """Park a worker; returns the wake event the pool will fire."""
        wake = self.kernel.event("worker-wake")
        self._sleeping.append(wake)
        return wake

    def sleeping_count(self) -> int:
        """Number of workers currently parked asleep."""
        return len(self._sleeping)

    def wake_all(self) -> None:
        """Wake every sleeping worker (used at shutdown)."""
        while self._sleeping:
            self._sleeping.popleft().fire_if_unfired()
        signals, self._task_signals = self._task_signals, []
        for signal in signals:
            signal.fire_if_unfired()

    def _wake_one(self) -> None:
        # The submit path's futex wake.  Under an active ``handoff``
        # fault window the injector may drop it (re-delivering after its
        # modelled futex-timeout latency) or delay it.
        if self._sleeping:
            wake = self._sleeping.popleft()
            faults = self.kernel.faults
            if faults is not None and faults.perturb_handoff(wake.fire_if_unfired):
                return
            wake.fire_if_unfired()
