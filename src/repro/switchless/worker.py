"""Intel switchless worker threads.

Each untrusted worker loops forever: claim a task, execute the host
handler, publish the result; when the pool is empty, busy-wait up to
``retries_before_sleep`` pause instructions for new work, then go to sleep
until the submit path wakes it (with a futex-wake latency).

Workers are daemon threads with accounting kind ``"intel-worker"`` so the
CPU-usage figures can attribute their (considerable) busy-wait time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.instructions import Block, Compute, Spin
from repro.sim.kernel import Program

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave
    from repro.switchless.config import SwitchlessConfig
    from repro.switchless.taskpool import TaskPool


class IntelWorkerStats:
    """Counters one worker accumulates over its lifetime."""

    __slots__ = ("tasks_executed", "sleeps", "wakes")

    def __init__(self) -> None:
        self.tasks_executed = 0
        self.sleeps = 0
        self.wakes = 0


def intel_worker_loop(
    enclave: "Enclave",
    pool: "TaskPool",
    config: "SwitchlessConfig",
    stats: IntelWorkerStats,
    stop_flag: list[bool],
    executor=None,
    index: int = 0,
    target: str = "intel-worker",
) -> Program:
    """Simulated program of one switchless worker thread.

    ``executor`` selects the handler table: the untrusted runtime for
    ocall workers (default) or the trusted runtime for ecall workers —
    the loop itself is identical in both directions, as in the SDK.
    ``index`` and ``target`` identify this worker to the fault injector
    (see :mod:`repro.faults`): stalls and slowdowns addressed to
    ``(target, index)`` are consumed at the loop's dispatch points.
    """
    cost = enclave.cost
    if executor is None:
        executor = enclave.urts.execute
    rbs_budget = cost.pause_loop_cycles(config.retries_before_sleep)
    while not stop_flag[0]:
        faults = enclave.kernel.faults
        if faults is not None:
            stall = faults.take_stall(target, index)
            if stall:
                yield Compute(stall, tag="fault-stall")
                continue
        task = pool.try_claim()
        if task is not None:
            factor = 1.0 if faults is None else faults.cost_factor(target, index)
            yield Compute(cost.worker_pickup_cycles * factor, tag="worker-pickup")
            if task.abandoned:
                # The caller timed out and recovered via fallback while
                # the task sat claimed; executing it now would be pure
                # duplicate work with nobody reading the result.
                continue
            task.picked.fire()
            result = yield from executor(task.request)
            yield Compute(cost.worker_complete_cycles * factor, tag="worker-complete")
            stats.tasks_executed += 1
            task.done.fire(result)
            continue
        # Idle: busy-wait for new work before sleeping (retries_before_sleep).
        signal = pool.arm_task_signal()
        got_work = yield Spin(signal, rbs_budget, tag="worker-idle-spin")
        if got_work:
            continue
        # Retry budget exhausted: sleep until the submit path wakes us.
        stats.sleeps += 1
        bus = enclave.kernel.bus
        if bus is not None:
            bus.emit("intel.worker.sleep", sleeps=stats.sleeps)
        wake = pool.register_sleeper()
        yield Block(wake)
        if stop_flag[0]:
            break
        stats.wakes += 1
        if bus is not None:
            bus.emit("intel.worker.wake", wakes=stats.wakes)
        yield Compute(cost.worker_wake_cycles, tag="worker-wake")
