"""HotCalls: the always-spinning switchless baseline (Weisse et al.,
ISCA'17 — the paper's reference [33]).

HotCalls predates the SDK's switchless library and sits at the opposite
end of the CPU-waste spectrum from ZC-SWITCHLESS:

- a *fixed* set of functions is marked hot at build time;
- dedicated *responder* threads busy-wait forever on shared-memory call
  slots — they never sleep and are never reclaimed;
- a caller acquires a slot, publishes the request and spins until the
  responder completes it; there is **no fallback path** — a hot call
  waits however long it takes.

This gives the lowest possible per-call latency (no enqueue/pool
machinery, no transition ever) at the price of permanently burning one
CPU per responder.  The ``bench_baselines`` benchmark positions it
against Intel switchless and zc on the same workload.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sgx.backend import CallBackend
from repro.sim.instructions import Compute, Spin
from repro.sim.kernel import Program, SimThread
from repro.sim.primitives import Event

if TYPE_CHECKING:
    from repro.sgx.enclave import Enclave, OcallRequest

#: Responders re-arm their idle spin at this granularity (pure busy-wait;
#: the chunking only bounds simulator event sizes, not CPU cost).
_IDLE_SPIN_CHUNK = 1_000_000.0
#: Chunk size for the caller's unbounded wait-for-completion spin.
_COMPLETION_SPIN_CHUNK = 5_000_000.0


class HotCallsConfig:
    """Build-time HotCalls configuration.

    Args:
        hot_ocalls: Function names served by responders; everything else
            performs a regular transition.
        n_responders: Dedicated untrusted responder threads.
    """

    def __init__(self, hot_ocalls: frozenset[str] | set[str], n_responders: int = 1) -> None:
        if n_responders < 1:
            raise ValueError("n_responders must be >= 1")
        self.hot_ocalls = frozenset(hot_ocalls)
        self.n_responders = n_responders

    def is_hot(self, name: str) -> bool:
        """Whether the function was statically marked hot."""
        return name in self.hot_ocalls


class _HotCall:
    """One in-flight hot call: request plus its completion event."""

    __slots__ = ("request", "done")

    def __init__(self, request: "OcallRequest", done: Event) -> None:
        self.request = request
        self.done = done


class HotCallsBackend(CallBackend):
    """Dedicated spinning responders; hot calls never transition, never
    fall back."""

    name = "hotcalls"

    def __init__(self, config: HotCallsConfig) -> None:
        self.config = config
        self._enclave: "Enclave | None" = None
        self._pending: deque[_HotCall] = deque()
        self._signals: list[Event] = []
        self._stop = False
        self.responder_threads: list[SimThread] = []
        self.hot_count = 0
        self.regular_count = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, enclave: "Enclave") -> None:
        """Install this backend on ``enclave`` (spawns its threads)."""
        self._enclave = enclave
        for i in range(self.config.n_responders):
            thread = enclave.kernel.spawn(
                self._responder_loop(),
                name=f"hotcalls-responder-{i}",
                kind="hotcalls-responder",
                daemon=True,
            )
            self.responder_threads.append(thread)

    def stop(self) -> None:
        """Request shutdown of this component's threads."""
        self._stop = True
        signals, self._signals = self._signals, []
        for signal in signals:
            signal.fire_if_unfired()

    # ------------------------------------------------------------------
    # Call path
    # ------------------------------------------------------------------
    def invoke(self, request: "OcallRequest") -> Program:
        """Execute one call request (simulated program on the caller thread)."""
        enclave = self._enclave
        if enclave is None:
            raise RuntimeError("backend not attached to an enclave")
        cost = enclave.cost
        if not self.config.is_hot(request.name):
            yield Compute(cost.eexit_cycles, tag="eexit")
            result = yield from enclave.urts.execute(request)
            yield Compute(cost.eenter_cycles, tag="eenter")
            request.mode = "regular"
            self.regular_count += 1
            return result

        # Publish the request (lock + shared-buffer write in the original;
        # atomic within one simulated step here) and kick a responder.
        yield Compute(cost.switchless_dispatch_cycles, tag="hotcall-publish")
        call = _HotCall(request, enclave.kernel.event(f"hot:{request.name}"))
        self._pending.append(call)
        signals, self._signals = self._signals, []
        for signal in signals:
            signal.fire_if_unfired()
        # Spin until completion: HotCalls has no fallback whatsoever.
        while not call.done.fired:
            yield Spin(call.done, _COMPLETION_SPIN_CHUNK, tag="hotcall-wait")
        request.mode = "switchless"
        self.hot_count += 1
        return call.done.value

    def _responder_loop(self) -> Program:
        enclave = self._enclave
        assert enclave is not None
        cost = enclave.cost
        while not self._stop:
            if self._pending:
                call = self._pending.popleft()
                yield Compute(cost.worker_pickup_cycles, tag="hotcall-pickup")
                result = yield from enclave.urts.execute(call.request)
                yield Compute(cost.worker_complete_cycles, tag="hotcall-complete")
                call.done.fire(result)
                continue
            # Busy-wait forever: the defining HotCalls trait.
            signal = enclave.kernel.event("hotcalls-signal")
            self._signals.append(signal)
            yield Spin(signal, _IDLE_SPIN_CHUNK, tag="hotcall-idle")
