"""Measurement and reporting utilities for the experiments."""

from repro.analysis.metrics import LatencyRecorder, PeriodResult, summarize
from repro.analysis.report import format_series, format_table, to_csv

__all__ = [
    "LatencyRecorder",
    "PeriodResult",
    "format_series",
    "format_table",
    "summarize",
    "to_csv",
]
