"""Latency and throughput measurement helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies (in cycles) from workload threads."""

    samples_cycles: list[float] = field(default_factory=list)

    def record(self, latency_cycles: float) -> None:
        """Record one sample/event."""
        if latency_cycles < 0:
            raise ValueError("latency must be >= 0")
        self.samples_cycles.append(latency_cycles)

    def record_many(self, latencies_cycles: list[float]) -> None:
        """Bulk-record samples (one validation pass, one extend)."""
        if latencies_cycles and min(latencies_cycles) < 0:
            raise ValueError("latency must be >= 0")
        self.samples_cycles.extend(latencies_cycles)

    @property
    def count(self) -> int:
        """Number of recorded entries."""
        return len(self.samples_cycles)

    def mean(self) -> float:
        """Arithmetic mean of the recorded samples."""
        if not self.samples_cycles:
            return 0.0
        return sum(self.samples_cycles) / len(self.samples_cycles)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self.samples_cycles:
            return 0.0
        ordered = sorted(self.samples_cycles)
        rank = max(1, math.ceil(q / 100 * len(ordered)))
        return ordered[rank - 1]

    def max(self) -> float:
        """Largest recorded sample."""
        return max(self.samples_cycles) if self.samples_cycles else 0.0

    def summary(self) -> dict[str, float]:
        """count/mean/p50/p95/p99/max convenience summary."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }


@dataclass(frozen=True)
class PeriodResult:
    """Outcome of one paced workload period."""

    t_end_cycles: float
    target_ops: int
    completed_ops: int
    duration_cycles: float

    def throughput_ops_per_s(self, freq_hz: float) -> float:
        """Burst throughput over the time actually spent (ops/s)."""
        if self.duration_cycles <= 0:
            return 0.0
        return self.completed_ops / (self.duration_cycles / freq_hz)

    def sustained_ops_per_s(self, freq_hz: float, tau_cycles: float) -> float:
        """Throughput normalised over at least one full period.

        For saturated periods (the batch spilling past τ) this equals the
        burst rate; for unsaturated periods it is the offered load — i.e.
        what an external observer sampling every τ would measure.
        """
        denominator = max(self.duration_cycles, tau_cycles)
        if denominator <= 0:
            return 0.0
        return self.completed_ops / (denominator / freq_hz)


def summarize(values: list[float]) -> dict[str, float]:
    """Mean/min/max summary of a numeric series."""
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }
