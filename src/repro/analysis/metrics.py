"""Latency and throughput measurement helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LatencyRecorder:
    """Collects per-operation latencies (in cycles) from workload threads."""

    samples_cycles: list[float] = field(default_factory=list)

    def record(self, latency_cycles: float) -> None:
        """Record one sample/event."""
        if latency_cycles < 0:
            raise ValueError("latency must be >= 0")
        self.samples_cycles.append(latency_cycles)

    def record_many(self, latencies_cycles: list[float]) -> None:
        """Bulk-record samples (one validation pass, one extend)."""
        if latencies_cycles and min(latencies_cycles) < 0:
            raise ValueError("latency must be >= 0")
        self.samples_cycles.extend(latencies_cycles)

    @property
    def count(self) -> int:
        """Number of recorded entries."""
        return len(self.samples_cycles)

    def mean(self) -> float:
        """Arithmetic mean of the recorded samples."""
        if not self.samples_cycles:
            return 0.0
        return sum(self.samples_cycles) / len(self.samples_cycles)

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile, q in [0, 100].

        Interpolates between closest ranks (the ``numpy`` default).  The
        old nearest-rank rule silently clamped high quantiles to the max
        on small samples — p99 of 50 samples *was* the max, which made
        tail-latency gates on short runs meaningless.  Interpolation
        still converges to the max, but gradually, and
        :meth:`confident` reports whether the sample count actually
        supports reading the quantile at all.
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self.samples_cycles:
            return 0.0
        ordered = sorted(self.samples_cycles)
        position = (len(ordered) - 1) * q / 100.0
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            return ordered[lower]
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    @staticmethod
    def sample_floor(q: float) -> int:
        """Samples needed before quantile ``q`` stops being tail guesswork.

        ``ceil(100 / (100 - q))`` — the count at which at least one
        sample sits strictly beyond the quantile (100 for p99, 1000 for
        p99.9).  Below it, any estimator is extrapolating from the max.
        """
        if not 0 <= q < 100:
            return 1
        # round() guards against float residue: 100 - 99.9 = 0.0999...,
        # whose reciprocal ceils to 1001 instead of 1000.
        return math.ceil(round(100.0 / (100.0 - q), 9))

    def confident(self, q: float) -> bool:
        """Whether the sample count reaches :meth:`sample_floor` for ``q``."""
        return self.count >= self.sample_floor(q)

    def diagnostics(self, quantiles: tuple[float, ...] = (99.0, 99.9)) -> list[str]:
        """Low-confidence notes for the requested quantiles (may be empty)."""
        return [
            f"p{q:g} read from {self.count} sample(s); needs >= "
            f"{self.sample_floor(q)} for a confident tail estimate"
            for q in quantiles
            if self.count and not self.confident(q)
        ]

    def max(self) -> float:
        """Largest recorded sample."""
        return max(self.samples_cycles) if self.samples_cycles else 0.0

    def summary(self) -> dict[str, float]:
        """count/mean/p50/p95/p99/p999/max convenience summary."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.max(),
        }


@dataclass(frozen=True)
class PeriodResult:
    """Outcome of one paced workload period."""

    t_end_cycles: float
    target_ops: int
    completed_ops: int
    duration_cycles: float

    def throughput_ops_per_s(self, freq_hz: float) -> float:
        """Burst throughput over the time actually spent (ops/s)."""
        if self.duration_cycles <= 0:
            return 0.0
        return self.completed_ops / (self.duration_cycles / freq_hz)

    def sustained_ops_per_s(self, freq_hz: float, tau_cycles: float) -> float:
        """Throughput normalised over at least one full period.

        For saturated periods (the batch spilling past τ) this equals the
        burst rate; for unsaturated periods it is the offered load — i.e.
        what an external observer sampling every τ would measure.
        """
        denominator = max(self.duration_cycles, tau_cycles)
        if denominator <= 0:
            return 0.0
        return self.completed_ops / (denominator / freq_hz)


def summarize(values: list[float]) -> dict[str, float]:
    """Mean/min/max summary of a numeric series."""
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }
