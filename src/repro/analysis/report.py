"""Plain-text table/series formatting for experiment reports.

The benchmark harness prints the same rows/series the paper's figures
plot, in aligned monospace tables that read well in CI logs and in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned monospace table."""
    rendered = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_cycle_budget(
    rows: Sequence[tuple[str, dict[str, float]]],
    categories: Sequence[str],
    title: str = "Cycle budget (Mcycles)",
    scale: float = 1e-6,
    precision: int = 2,
) -> str:
    """Render per-cell cycle totals as one table row per configuration.

    ``rows`` pairs a cell label with its category → cycles mapping (e.g.
    a :class:`repro.telemetry.ledger.LedgerSnapshot`'s
    ``wall_by_category``); a trailing ``total`` column sums the listed
    categories so conservation can be eyeballed against capacity.
    """
    headers = ["cell", *categories, "total"]
    table_rows = []
    for label, by_category in rows:
        cells = [by_category.get(cat, 0.0) * scale for cat in categories]
        table_rows.append([label, *cells, sum(cells)])
    return format_table(headers, table_rows, title=title, precision=precision)


def format_series(
    name: str,
    points: Sequence[tuple[Any, Any]],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 3,
) -> str:
    """Render one figure series as an x/y table."""
    return format_table(
        [x_label, y_label],
        [list(p) for p in points],
        title=name,
        precision=precision,
    )


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render rows as RFC-4180-ish CSV (for external plotting tools).

    Cells containing commas, quotes or newlines are quoted; floats keep
    full precision (plotting tools do their own rounding).
    """

    def cell(value: Any) -> str:
        text = repr(value) if isinstance(value, float) else str(value)
        if any(ch in text for ch in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        lines.append(",".join(cell(c) for c in row))
    return "\n".join(lines) + "\n"
