"""Deterministic simulated annealing over switchless configurations.

Standard Metropolis acceptance with a geometric cooling schedule.  The
evaluator is any ``ConfigGenome -> cost`` callable — in the benchmarks it
runs a full simulated workload, which is exactly the expense SGXTuner-
style approaches pay per probe and zc avoids entirely.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.tuner.space import ConfigGenome, TuningSpace

Evaluator = Callable[[ConfigGenome], float]


@dataclass
class AnnealingResult:
    """Outcome of one tuning run."""

    best: ConfigGenome
    best_cost: float
    evaluations: int
    cache_hits: int
    history: list[tuple[int, float]] = field(default_factory=list)

    def improvement_over(self, reference_cost: float) -> float:
        """Speedup of the tuned config over a reference cost."""
        if self.best_cost <= 0:
            raise ValueError("best_cost must be positive")
        return reference_cost / self.best_cost


class SimulatedAnnealingTuner:
    """Anneals a :class:`TuningSpace` against an evaluator.

    Args:
        space: The configuration space (owns the seeded RNG).
        initial_temperature: Start temperature, in the evaluator's cost
            units (relative acceptance of worse moves).
        cooling: Geometric cooling factor per step.
    """

    def __init__(
        self,
        space: TuningSpace,
        initial_temperature: float = 0.3,
        cooling: float = 0.92,
        rng: random.Random | None = None,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self.space = space
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.rng = rng if rng is not None else random.Random(1)
        self._cache: dict[ConfigGenome, float] = {}
        self.cache_hits = 0

    def _evaluate(self, genome: ConfigGenome, evaluator: Evaluator) -> float:
        if genome in self._cache:
            self.cache_hits += 1
            return self._cache[genome]
        cost = evaluator(genome)
        if cost <= 0:
            raise ValueError(f"evaluator returned non-positive cost {cost}")
        self._cache[genome] = cost
        return cost

    def tune(
        self,
        evaluator: Evaluator,
        budget: int = 40,
        start: ConfigGenome | None = None,
    ) -> AnnealingResult:
        """Run annealing for ``budget`` evaluations; returns the best."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        current = start if start is not None else self.space.default_genome()
        current_cost = self._evaluate(current, evaluator)
        best, best_cost = current, current_cost
        history = [(1, best_cost)]
        temperature = self.initial_temperature
        evaluations = 1
        while evaluations < budget:
            candidate = self.space.mutate(current)
            candidate_cost = self._evaluate(candidate, evaluator)
            evaluations += 1
            # Metropolis on *relative* cost change: scale-free acceptance.
            delta = (candidate_cost - current_cost) / current_cost
            if delta <= 0 or self.rng.random() < math.exp(-delta / temperature):
                current, current_cost = candidate, candidate_cost
            if candidate_cost < best_cost:
                best, best_cost = candidate, candidate_cost
                history.append((evaluations, best_cost))
            temperature *= self.cooling
        return AnnealingResult(
            best=best,
            best_cost=best_cost,
            evaluations=evaluations,
            cache_hits=self.cache_hits,
            history=history,
        )
