"""Stochastic auto-tuning of static switchless configurations.

The paper's related work (§VI) cites SGXTuner [18], which tunes SGX
application parameters by stochastic optimisation.  This package provides
the equivalent for the Intel switchless configuration space — the very
space ZC-SWITCHLESS removes the need to search:

- :mod:`repro.tuner.space` — the configuration genome (switchless ocall
  subset, worker count, retry budgets) and its seeded mutations;
- :mod:`repro.tuner.anneal` — a deterministic simulated-annealing loop
  over any ``config -> cost`` evaluator, with memoisation.

The ``bench_tuner`` benchmark uses the simulator itself as the evaluator
and contrasts the tuned configuration (after N evaluations, each a full
workload run) with zc's out-of-the-box behaviour.
"""

from repro.tuner.anneal import AnnealingResult, SimulatedAnnealingTuner
from repro.tuner.space import ConfigGenome, TuningSpace

__all__ = [
    "AnnealingResult",
    "ConfigGenome",
    "SimulatedAnnealingTuner",
    "TuningSpace",
]
