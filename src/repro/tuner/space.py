"""The Intel switchless configuration search space."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.switchless.config import SwitchlessConfig

#: Retry budgets explored (log-spaced; 20,000 is the SDK default).
RETRY_CHOICES = (0, 100, 1_000, 5_000, 20_000)


@dataclass(frozen=True)
class ConfigGenome:
    """One point in the search space (hashable for memoisation)."""

    switchless: frozenset[str]
    workers: int
    retries_before_fallback: int

    def to_config(self) -> SwitchlessConfig:
        """Materialise this genome as a SwitchlessConfig."""
        return SwitchlessConfig(
            switchless_ocalls=self.switchless,
            num_uworkers=self.workers,
            retries_before_fallback=self.retries_before_fallback,
        )

    def describe(self) -> str:
        """Compact human-readable rendering."""
        names = ",".join(sorted(self.switchless)) or "(none)"
        return f"[{names}] workers={self.workers} rbf={self.retries_before_fallback}"


class TuningSpace:
    """Candidate ocalls plus bounds, with seeded mutation/sampling.

    Args:
        candidate_ocalls: Names eligible for switchless selection.
        max_workers: Upper bound on the worker count.
        rng: Seeded random source (determinism is on the caller).
    """

    def __init__(
        self,
        candidate_ocalls: frozenset[str] | set[str],
        max_workers: int = 4,
        rng: random.Random | None = None,
    ) -> None:
        if not candidate_ocalls:
            raise ValueError("candidate_ocalls must be non-empty")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.candidates = sorted(candidate_ocalls)
        self.max_workers = max_workers
        self.rng = rng if rng is not None else random.Random(0)

    def random_genome(self) -> ConfigGenome:
        """A uniformly random point (annealing start)."""
        chosen = frozenset(
            name for name in self.candidates if self.rng.random() < 0.5
        )
        return ConfigGenome(
            switchless=chosen,
            workers=self.rng.randint(1, self.max_workers),
            retries_before_fallback=self.rng.choice(RETRY_CHOICES),
        )

    def default_genome(self) -> ConfigGenome:
        """What a developer gets without tuning: everything switchless,
        2 workers, SDK-default retries."""
        return ConfigGenome(
            switchless=frozenset(self.candidates),
            workers=2,
            retries_before_fallback=20_000,
        )

    def mutate(self, genome: ConfigGenome) -> ConfigGenome:
        """One local move: flip an ocall, step workers, or jump rbf."""
        move = self.rng.randrange(3)
        if move == 0:
            name = self.rng.choice(self.candidates)
            switchless = set(genome.switchless)
            if name in switchless:
                switchless.remove(name)
            else:
                switchless.add(name)
            return ConfigGenome(
                frozenset(switchless), genome.workers, genome.retries_before_fallback
            )
        if move == 1:
            step = self.rng.choice((-1, 1))
            workers = min(max(genome.workers + step, 1), self.max_workers)
            return ConfigGenome(
                genome.switchless, workers, genome.retries_before_fallback
            )
        return ConfigGenome(
            genome.switchless, genome.workers, self.rng.choice(RETRY_CHOICES)
        )
