"""Run experiment suites and render a combined markdown report.

``python -m repro report --quick --out report.md`` regenerates an
EXPERIMENTS.md-style document from live runs: one section per experiment
with its data table (as markdown) and its shape-check verdict.  Useful
for verifying a changed cost model or scheduler against every figure at
once.

Experiments that expose their grid as data (``cells()`` / ``run_cell()``
/ ``assemble()`` — all of them, see ``docs/extending.md``) are executed
through :class:`repro.parallel.CellRunner`, which adds ``jobs=N``
process-level parallelism and content-addressed result caching while
keeping rows bit-identical to a serial run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.experiments import EXPERIMENTS
from repro.parallel import CellRunner, ResultCache, resolve_jobs


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's run, table and verdict."""

    exp_id: str
    headers: list[str]
    rows: list[list[Any]]
    violations: list[str]
    wall_seconds: float
    #: Wall seconds per cell, in cell order (0.0 for cache hits); empty
    #: for experiments run through the legacy whole-run path.
    cell_seconds: tuple[float, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    @property
    def ok(self) -> bool:
        """Whether the shape check passed."""
        return not self.violations


def run_suite(
    experiment_ids: Sequence[str] | None = None,
    overrides: dict[str, dict[str, Any]] | None = None,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> list[ExperimentOutcome]:
    """Run the given experiments (all by default) and collect outcomes.

    ``overrides`` maps experiment id to run() kwargs (e.g. the CLI's
    quick presets).  ``jobs`` fans each experiment's cells over a process
    pool (``"auto"`` = host CPU count); ``cache`` serves already-computed
    cells.  Both leave the rows bit-identical to the serial, uncached
    run.
    """
    ids = list(experiment_ids) if experiment_ids is not None else list(EXPERIMENTS)
    overrides = overrides or {}
    resolved_jobs = resolve_jobs(jobs)
    outcomes = []
    for exp_id in ids:
        module = EXPERIMENTS[exp_id]
        kwargs = overrides.get(exp_id, {})
        started = time.monotonic()
        if hasattr(module, "cells"):
            runner = CellRunner(jobs=resolved_jobs, cache=cache)
            cell_outcomes = runner.run(module.cells(**kwargs))
            result = module.assemble([o.row for o in cell_outcomes], **kwargs)
            cell_seconds = tuple(o.wall_seconds for o in cell_outcomes)
            cache_hits = sum(1 for o in cell_outcomes if o.cached)
            cache_misses = len(cell_outcomes) - cache_hits
        else:
            result = module.run(**kwargs)
            cell_seconds = ()
            cache_hits = cache_misses = 0
        wall = time.monotonic() - started
        headers, rows = module.table(result)
        outcomes.append(
            ExperimentOutcome(
                exp_id=exp_id,
                headers=headers,
                rows=rows,
                violations=module.check_shape(result),
                wall_seconds=wall,
                cell_seconds=cell_seconds,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                jobs=resolved_jobs,
            )
        )
    return outcomes


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


def render_markdown(outcomes: list[ExperimentOutcome]) -> str:
    """Render a combined markdown report."""
    passed = sum(1 for outcome in outcomes if outcome.ok)
    lines = [
        "# Reproduction report",
        "",
        f"{passed}/{len(outcomes)} experiments match the paper's shape.",
        "",
    ]
    for outcome in outcomes:
        module = EXPERIMENTS[outcome.exp_id]
        first_doc_line = (module.__doc__ or "").strip().splitlines()[0]
        verdict = "OK" if outcome.ok else f"{len(outcome.violations)} violation(s)"
        lines.append(f"## {outcome.exp_id} — {first_doc_line}")
        lines.append("")
        lines.append(f"Shape check: **{verdict}** ({outcome.wall_seconds:.1f}s wall)")
        if outcome.cell_seconds:
            executed = [s for s in outcome.cell_seconds if s > 0.0]
            slowest = max(outcome.cell_seconds)
            lines.append(
                f"Cells: {len(outcome.cell_seconds)} "
                f"({outcome.cache_hits} cached, {outcome.cache_misses} run) · "
                f"jobs {outcome.jobs} · "
                f"cell wall {sum(executed):.2f}s total, {slowest:.2f}s max"
            )
        lines.append("")
        lines.append(_markdown_table(outcome.headers, outcome.rows))
        lines.append("")
        for violation in outcome.violations:
            lines.append(f"- VIOLATION: {violation}")
        if outcome.violations:
            lines.append("")
    return "\n".join(lines)
