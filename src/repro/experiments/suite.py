"""Run experiment suites and render a combined markdown report.

``python -m repro report --quick --out report.md`` regenerates an
EXPERIMENTS.md-style document from live runs: one section per experiment
with its data table (as markdown) and its shape-check verdict.  Useful
for verifying a changed cost model or scheduler against every figure at
once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.experiments import EXPERIMENTS


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's run, table and verdict."""

    exp_id: str
    headers: list[str]
    rows: list[list[Any]]
    violations: list[str]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        """Whether the shape check passed."""
        return not self.violations


def run_suite(
    experiment_ids: Sequence[str] | None = None,
    overrides: dict[str, dict[str, Any]] | None = None,
) -> list[ExperimentOutcome]:
    """Run the given experiments (all by default) and collect outcomes.

    ``overrides`` maps experiment id to run() kwargs (e.g. the CLI's
    quick presets).
    """
    ids = list(experiment_ids) if experiment_ids is not None else list(EXPERIMENTS)
    overrides = overrides or {}
    outcomes = []
    for exp_id in ids:
        module = EXPERIMENTS[exp_id]
        started = time.monotonic()
        result = module.run(**overrides.get(exp_id, {}))
        wall = time.monotonic() - started
        headers, rows = module.table(result)
        outcomes.append(
            ExperimentOutcome(
                exp_id=exp_id,
                headers=headers,
                rows=rows,
                violations=module.check_shape(result),
                wall_seconds=wall,
            )
        )
    return outcomes


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


def render_markdown(outcomes: list[ExperimentOutcome]) -> str:
    """Render a combined markdown report."""
    passed = sum(1 for outcome in outcomes if outcome.ok)
    lines = [
        "# Reproduction report",
        "",
        f"{passed}/{len(outcomes)} experiments match the paper's shape.",
        "",
    ]
    for outcome in outcomes:
        module = EXPERIMENTS[outcome.exp_id]
        first_doc_line = (module.__doc__ or "").strip().splitlines()[0]
        verdict = "OK" if outcome.ok else f"{len(outcome.violations)} violation(s)"
        lines.append(f"## {outcome.exp_id} — {first_doc_line}")
        lines.append("")
        lines.append(f"Shape check: **{verdict}** ({outcome.wall_seconds:.1f}s wall)")
        lines.append("")
        lines.append(_markdown_table(outcome.headers, outcome.rows))
        lines.append("")
        for violation in outcome.violations:
            lines.append(f"- VIOLATION: {violation}")
        if outcome.violations:
            lines.append("")
    return "\n".join(lines)
