"""§III-A inline numbers: runtime of configurations C1–C5.

The paper reports, for 100,000 ocalls (75k to the empty ``f``, 25k to the
pause-loop ``g``): C1 fastest at 0.9 s; C2 worst at 1.6 s (≈1.8x C1);
C3 and C4 at 1.3 s; C5 at 1.0 s.

Shape requirements: C1 < C5 < C3 ≈ C4 < C2, with C2/C1 ≈ 1.8x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.parallel import CellSpec, ResultCache, cell, run_cells
from repro.workloads.synthetic import SyntheticResult, SyntheticSpec, run_synthetic

#: The paper's reported runtimes (seconds), for reference in reports.
PAPER_RUNTIMES = {"C1": 0.9, "C2": 1.6, "C3": 1.3, "C4": 1.3, "C5": 1.0}

CONFIGS = ("C1", "C2", "C3", "C4", "C5")


@dataclass
class Sec3aResult:
    """Structured result of this experiment."""
    rows: list[SyntheticResult]
    spec: SyntheticSpec

    def runtime(self, config: str) -> float:
        """Elapsed seconds for the given configuration cell."""
        for row in self.rows:
            if row.config == config:
                return row.elapsed_seconds
        raise KeyError(config)


def cells(
    total_calls: int = 20_000,
    workers: int = 2,
    g_pauses: int = 500,
) -> list[CellSpec]:
    """The experiment's grid as data: one cell per configuration."""
    return [
        cell(
            "sec3a",
            index,
            config=config,
            workers=workers,
            total_calls=total_calls,
            g_pauses=g_pauses,
        )
        for index, config in enumerate(CONFIGS)
    ]


def run_cell(spec: CellSpec) -> SyntheticResult:
    """Execute one cell of the grid."""
    kw = spec.kwargs
    synthetic = SyntheticSpec(total_calls=kw["total_calls"], g_pauses=kw["g_pauses"])
    return run_synthetic(kw["config"], kw["workers"], synthetic)


def assemble(
    rows: list[SyntheticResult],
    total_calls: int = 20_000,
    workers: int = 2,
    g_pauses: int = 500,
) -> Sec3aResult:
    """Build the structured result from rows in ``cells()`` order."""
    return Sec3aResult(
        rows=list(rows),
        spec=SyntheticSpec(total_calls=total_calls, g_pauses=g_pauses),
    )


def run(
    total_calls: int = 20_000,
    workers: int = 2,
    g_pauses: int = 500,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Sec3aResult:
    """Run C1–C5 once each (scaled to ``total_calls``)."""
    rows = run_cells(cells(total_calls, workers, g_pauses), jobs=jobs, cache=cache)
    return assemble(rows, total_calls=total_calls, workers=workers, g_pauses=g_pauses)


def table(result: Sec3aResult) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    scale = result.spec.total_calls / 100_000
    rows = [
        [
            row.config,
            row.elapsed_seconds,
            PAPER_RUNTIMES[row.config] * scale,
            row.switchless_calls,
            row.fallback_calls,
            row.regular_calls,
        ]
        for row in result.rows
    ]
    headers = ["config", "measured_s", "paper_scaled_s", "switchless", "fallback", "regular"]
    return headers, rows


def report(result: Sec3aResult) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=(
            f"§III-A synthetic benchmark: {result.spec.total_calls} ocalls "
            f"(75% f, 25% g of {result.spec.g_pauses} pauses), "
            f"{result.rows[0].workers} workers"
        ),
    )


def check_shape(result: Sec3aResult) -> list[str]:
    """The paper's qualitative ordering: C1 < C5 < C3,C4 < C2."""
    violations = []
    c = {config: result.runtime(config) for config in CONFIGS}
    if not c["C1"] < c["C5"]:
        violations.append(f"expected C1 < C5, got {c['C1']:.3f} vs {c['C5']:.3f}")
    if not c["C5"] < c["C2"]:
        violations.append(f"expected C5 < C2, got {c['C5']:.3f} vs {c['C2']:.3f}")
    if not c["C1"] < c["C3"]:
        violations.append(f"expected C1 < C3, got {c['C1']:.3f} vs {c['C3']:.3f}")
    if not c["C1"] < c["C4"]:
        violations.append(f"expected C1 < C4, got {c['C1']:.3f} vs {c['C4']:.3f}")
    ratio = c["C2"] / c["C1"]
    if not 1.3 < ratio < 2.6:
        violations.append(f"expected C2/C1 near 1.8x, got {ratio:.2f}x")
    return violations
