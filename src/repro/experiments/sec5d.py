"""§V-D impact study: zc-memcpy on inter-enclave SSL transfers.

The paper reports that plugging zc-memcpy into the confidential-serverless
system of [14] sped up inter-enclave SSL transfers by 7–15%.  The
mechanism: two enclaves exchange SSL records through untrusted shared
memory, so every record is copied out of the sender enclave and into the
receiver enclave with the tlibc memcpy, sandwiched between SSL record
processing (cipher + MAC + framing) on both sides.

This experiment reproduces that pipeline: a sender enclave thread
serialises records into a shared ring, a receiver enclave thread consumes
them; both charge SSL processing plus the marshalling memcpy.  The
expected shape: swapping vanilla for zc-memcpy yields a modest
(single-digit to ~20%) end-to-end speedup because record processing, not
copying, dominates — matching the paper's 7–15% band for typical record
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.parallel import CellSpec, ResultCache, cell, run_cells
from repro.sgx import Enclave, UntrustedRuntime
from repro.sgx.memcpy import MemcpyModel, VanillaMemcpy, ZcMemcpy
from repro.sim import Block, Compute, Kernel, paper_machine
from repro.sim.kernel import Program

#: SSL record processing cost (cipher + HMAC + framing) per byte; full
#: TLS record processing costs roughly an order of magnitude more than
#: raw AES-NI, which is what keeps the memcpy share — and therefore the
#: zc-memcpy speedup — in the paper's 7-15% band.
SSL_CYCLES_PER_BYTE = 12.0
SSL_RECORD_OVERHEAD_CYCLES = 3_000.0

RECORD_SIZES = (2_048, 4_096, 8_192, 16_384)


@dataclass(frozen=True)
class TransferPoint:
    """One data point of the figure."""
    record_bytes: int
    vanilla_gbps: float
    zc_gbps: float

    @property
    def speedup(self) -> float:
        """Speedup of the improved variant over the baseline."""
        return self.zc_gbps / self.vanilla_gbps


@dataclass
class Sec5dResult:
    """Structured result of this experiment."""
    points: list[TransferPoint]
    records: int

    def speedup(self, record_bytes: int) -> float:
        """Speedup of the improved variant over the baseline."""
        for point in self.points:
            if point.record_bytes == record_bytes:
                return point.speedup
        raise KeyError(record_bytes)


def _ssl_cycles(nbytes: int) -> float:
    return SSL_RECORD_OVERHEAD_CYCLES + nbytes * SSL_CYCLES_PER_BYTE


def measure_transfer(
    record_bytes: int, memcpy_model: MemcpyModel, records: int = 200
) -> float:
    """GB/s of an inter-enclave record stream with the given memcpy."""
    kernel = Kernel(paper_machine())
    urts = UntrustedRuntime()
    sender = Enclave(kernel, urts, memcpy_model=memcpy_model, name="sender")
    receiver = Enclave(kernel, urts, memcpy_model=memcpy_model, name="receiver")

    # A one-slot shared ring in untrusted memory: sender blocks when the
    # slot is full, receiver blocks when it is empty.
    slot: list[bytes | None] = [None]
    space_free = [kernel.event("space")]
    data_ready = [kernel.event("data")]
    space_free[0].fire()

    def send() -> Program:
        for i in range(records):
            yield Compute(_ssl_cycles(record_bytes), tag="ssl-encrypt")
            if slot[0] is not None:
                yield Block(space_free[0])
            space_free[0] = kernel.event("space")
            # Copy the record out of the enclave into shared memory.
            yield Compute(
                sender.memcpy_model.cycles(record_bytes, aligned=True),
                tag="copy-out",
            )
            slot[0] = bytes(8)  # token standing in for the record
            data_ready[0].fire_if_unfired()
        return records

    def receive() -> Program:
        for i in range(records):
            if slot[0] is None:
                yield Block(data_ready[0])
            data_ready[0] = kernel.event("data")
            yield Compute(
                receiver.memcpy_model.cycles(record_bytes, aligned=True),
                tag="copy-in",
            )
            slot[0] = None
            space_free[0].fire_if_unfired()
            yield Compute(_ssl_cycles(record_bytes), tag="ssl-decrypt")
        return records

    threads = [
        kernel.spawn(send(), name="sender", kind="app"),
        kernel.spawn(receive(), name="receiver", kind="app"),
    ]
    kernel.join(*threads)
    elapsed_s = kernel.seconds(kernel.now)
    return record_bytes * records / elapsed_s / 1e9


def cells(
    record_sizes: tuple[int, ...] = RECORD_SIZES, records: int = 200
) -> list[CellSpec]:
    """The grid as data: a (vanilla, zc) cell pair per record size."""
    return [
        cell("sec5d", index, record_bytes=size, memcpy_model=model, records=records)
        for index, (size, model) in enumerate(
            (size, model)
            for size in record_sizes
            for model in (VanillaMemcpy(), ZcMemcpy())
        )
    ]


def run_cell(spec: CellSpec) -> float:
    """Execute one cell of the grid; returns GB/s."""
    kw = spec.kwargs
    return measure_transfer(kw["record_bytes"], kw["memcpy_model"], kw["records"])


def assemble(
    rows: list[float],
    record_sizes: tuple[int, ...] = RECORD_SIZES,
    records: int = 200,
) -> Sec5dResult:
    """Build the structured result from rows in ``cells()`` order."""
    points = [
        TransferPoint(
            record_bytes=size,
            vanilla_gbps=rows[2 * i],
            zc_gbps=rows[2 * i + 1],
        )
        for i, size in enumerate(record_sizes)
    ]
    return Sec5dResult(points=points, records=records)


def run(
    record_sizes: tuple[int, ...] = RECORD_SIZES,
    records: int = 200,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Sec5dResult:
    """Execute the experiment and return its structured result."""
    rows = run_cells(cells(record_sizes, records), jobs=jobs, cache=cache)
    return assemble(rows, record_sizes=record_sizes, records=records)


def table(result: Sec5dResult) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    rows = [
        [p.record_bytes, p.vanilla_gbps, p.zc_gbps, (p.speedup - 1) * 100]
        for p in result.points
    ]
    return ["record_B", "vanilla_GBps", "zc_GBps", "speedup_pct"], rows


def report(result: Sec5dResult) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=(
            "§V-D: inter-enclave SSL transfers, vanilla vs zc memcpy "
            "(paper: 7-15% speedup)"
        ),
    )


def check_shape(result: Sec5dResult) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    for point in result.points:
        gain_pct = (point.speedup - 1) * 100
        if not 3.0 < gain_pct < 25.0:
            violations.append(
                f"expected a 7-15%-band speedup at {point.record_bytes} B, "
                f"got {gain_pct:.1f}%"
            )
    speedups = [p.speedup for p in result.points]
    if not all(a <= b * 1.02 for a, b in zip(speedups, speedups[1:])):
        violations.append("expected the gain to grow with record size")
    return violations
