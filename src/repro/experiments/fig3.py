"""Fig. 3: runtime vs. duration of ``g``, for worker counts 1–5.

The paper runs 100,000 ocalls from 8 in-enclave threads while sweeping the
duration of ``g`` from 0 to 500 pause instructions, for configurations
C1, C2, C4 and C5 (C3 omitted, as in the paper).

Shape requirements:

- for very short ``g`` (0 pauses), running everything switchlessly (C4)
  beats running everything regularly (C5) — Take-away 2;
- for long ``g`` (>= ~200 pauses), C1 (f switchless, g regular) is best;
- C5 beats C2 and C4 for long g at low worker counts (the crossover the
  figure shows): long calls are not worth executing switchlessly when
  workers are scarce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.parallel import CellSpec, ResultCache, cell, run_cells
from repro.workloads.synthetic import SyntheticResult, SyntheticSpec, run_synthetic

CONFIGS = ("C1", "C2", "C4", "C5")
WORKER_COUNTS = (1, 2, 3, 4, 5)
G_PAUSES = (0, 100, 200, 300, 400, 500)


@dataclass
class Fig3Result:
    """Structured result of this experiment."""
    rows: list[SyntheticResult]
    g_sweep: tuple[int, ...]
    total_calls: int
    #: g duration is carried per row via the spec used for it.
    g_of_row: dict[int, int] = None  # type: ignore[assignment]

    def runtime(self, config: str, workers: int, g_pauses: int) -> float:
        """Elapsed seconds for the given configuration cell."""
        for i, row in enumerate(self.rows):
            if (
                row.config == config
                and row.workers == workers
                and self.g_of_row[i] == g_pauses
            ):
                return row.elapsed_seconds
        raise KeyError((config, workers, g_pauses))


def cells(
    total_calls: int = 6_000,
    workers: tuple[int, ...] = (1, 3, 5),
    configs: tuple[str, ...] = CONFIGS,
    g_sweep: tuple[int, ...] = G_PAUSES,
) -> list[CellSpec]:
    """The experiment's grid as data: one cell per (g, config, workers)."""
    return [
        cell(
            "fig3",
            index,
            config=config,
            workers=w,
            total_calls=total_calls,
            g_pauses=g_pauses,
        )
        for index, (g_pauses, config, w) in enumerate(
            (g, c, w) for g in g_sweep for c in configs for w in workers
        )
    ]


def run_cell(spec: CellSpec) -> SyntheticResult:
    """Execute one cell of the grid."""
    kw = spec.kwargs
    synthetic = SyntheticSpec(total_calls=kw["total_calls"], g_pauses=kw["g_pauses"])
    return run_synthetic(kw["config"], kw["workers"], synthetic)


def assemble(
    rows: list[SyntheticResult],
    total_calls: int = 6_000,
    workers: tuple[int, ...] = (1, 3, 5),
    configs: tuple[str, ...] = CONFIGS,
    g_sweep: tuple[int, ...] = G_PAUSES,
) -> Fig3Result:
    """Build the structured result from rows in ``cells()`` order."""
    g_of_row: dict[int, int] = {}
    index = 0
    for g_pauses in g_sweep:
        for _config in configs:
            for _w in workers:
                g_of_row[index] = g_pauses
                index += 1
    return Fig3Result(
        rows=list(rows), g_sweep=g_sweep, total_calls=total_calls, g_of_row=g_of_row
    )


def run(
    total_calls: int = 6_000,
    workers: tuple[int, ...] = (1, 3, 5),
    configs: tuple[str, ...] = CONFIGS,
    g_sweep: tuple[int, ...] = G_PAUSES,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig3Result:
    """Execute the experiment and return its structured result."""
    rows = run_cells(
        cells(total_calls, workers, configs, g_sweep), jobs=jobs, cache=cache
    )
    return assemble(
        rows,
        total_calls=total_calls,
        workers=workers,
        configs=configs,
        g_sweep=g_sweep,
    )


def table(result: Fig3Result) -> tuple[list[str], list[list]]:
    """(headers, rows): one flat row per (config, workers) combination."""
    workers = sorted({row.workers for row in result.rows})
    configs = [c for c in CONFIGS if any(r.config == c for r in result.rows)]
    rows = [
        [config, w] + [result.runtime(config, w, g) for g in result.g_sweep]
        for w in workers
        for config in configs
    ]
    headers = ["config", "workers"] + [f"g={g}p (s)" for g in result.g_sweep]
    return headers, rows


def report(result: Fig3Result) -> str:
    """Render the figure's series as an aligned text table."""
    workers = sorted({row.workers for row in result.rows})
    configs = [c for c in CONFIGS if any(r.config == c for r in result.rows)]
    lines = []
    for w in workers:
        per_worker_rows = [
            [config]
            + [result.runtime(config, w, g) for g in result.g_sweep]
            for config in configs
        ]
        lines.append(
            format_table(
                ["config"] + [f"g={g}p (s)" for g in result.g_sweep],
                per_worker_rows,
                title=f"Fig. 3: runtime of {result.total_calls} ocalls, {w} worker(s)",
            )
        )
    return "\n\n".join(lines)


def check_shape(result: Fig3Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    workers = sorted({row.workers for row in result.rows})
    low_w = workers[0]
    g_short = result.g_sweep[0]
    g_long = result.g_sweep[-1]
    # Take-away 2: short calls favour switchless (C4 <= C5 at g=0).
    for w in workers:
        c4 = result.runtime("C4", w, g_short)
        c5 = result.runtime("C5", w, g_short)
        if not c4 < c5 * 1.05:
            violations.append(
                f"expected C4 <= C5 for short g at {w} workers "
                f"({c4:.3f} vs {c5:.3f})"
            )
    # Long g: C1 is best at scarce workers; at every worker count C1
    # beats the configurations that run g switchlessly (C2, C4), since a
    # long g call wastes a spinning caller+worker pair.
    c1_low = result.runtime("C1", low_w, g_long)
    for config in ("C2", "C4", "C5"):
        other = result.runtime(config, low_w, g_long)
        if not c1_low < other * 1.05:
            violations.append(
                f"expected C1 best for long g at {low_w} worker(s), "
                f"but {config} = {other:.3f} < C1 = {c1_low:.3f}"
            )
    for w in workers:
        c1 = result.runtime("C1", w, g_long)
        for config in ("C2", "C4"):
            other = result.runtime(config, w, g_long)
            if not c1 < other * 1.05:
                violations.append(
                    f"expected C1 < {config} for long g at {w} workers "
                    f"({c1:.3f} vs {other:.3f})"
                )
    # Long g at scarce workers: regular beats switchless-g configs.
    c5 = result.runtime("C5", low_w, g_long)
    for config in ("C2", "C4"):
        other = result.runtime(config, low_w, g_long)
        if not c5 < other * 1.05:
            violations.append(
                f"expected C5 < {config} for long g at {low_w} worker(s) "
                f"({c5:.3f} vs {other:.3f})"
            )
    return violations
