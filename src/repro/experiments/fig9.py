"""Fig. 9: kissdb — average %CPU during the SET workload.

Same runs as Fig. 8, reporting the ``/proc/stat``-style CPU utilisation.
The paper observes: no_sl lowest; Intel-2 configs ~55%; zc ~60%
(between); Intel-4 configs ~80% — i.e. Intel burns CPU in proportion to
its static worker count while zc scales workers with the workload
(Take-away 6).

Shape requirements:

- no_sl has the lowest CPU usage;
- every Intel-4 config uses more CPU than its Intel-2 counterpart;
- zc sits between no_sl and the Intel-4 configs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments import fig8 as _fig8
from repro.experiments.fig8 import Fig8Result, Fig8Row
from repro.parallel import CellSpec, ResultCache, run_cells


@dataclass
class Fig9Result:
    """Structured result of this experiment."""
    base: Fig8Result


def cells(
    n_keys_sweep: tuple[int, ...] = _fig8.DEFAULT_N_KEYS,
    worker_counts: tuple[int, ...] = (2, 4),
    n_threads: int = _fig8.DEFAULT_THREADS,
) -> list[CellSpec]:
    """Fig. 8's cells verbatim: the same runs feed both figures.

    The specs carry ``exp_id="fig8"``, so the runner dispatches to
    Fig. 8's ``run_cell`` and the cache shares one entry per cell across
    both figures.
    """
    return _fig8.cells(n_keys_sweep, worker_counts, n_threads)


def run_cell(spec: CellSpec) -> Fig8Row:
    """Execute one cell of the grid (delegates to Fig. 8)."""
    return _fig8.run_cell(spec)


def assemble(
    rows: list[Fig8Row],
    n_keys_sweep: tuple[int, ...] = _fig8.DEFAULT_N_KEYS,
    worker_counts: tuple[int, ...] = (2, 4),
    n_threads: int = _fig8.DEFAULT_THREADS,
) -> Fig9Result:
    """Build the structured result from rows in ``cells()`` order."""
    return Fig9Result(base=_fig8.assemble(rows, n_threads=n_threads))


def run(
    n_keys_sweep: tuple[int, ...] = _fig8.DEFAULT_N_KEYS,
    worker_counts: tuple[int, ...] = (2, 4),
    n_threads: int = _fig8.DEFAULT_THREADS,
    base: Fig8Result | None = None,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig9Result:
    """Reuses a Fig. 8 result when provided (same runs feed both figures)."""
    if base is not None:
        return Fig9Result(base=base)
    rows = run_cells(
        cells(n_keys_sweep, worker_counts, n_threads), jobs=jobs, cache=cache
    )
    return assemble(rows, n_threads=n_threads)


def table(result: Fig9Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    base = result.base
    rows = [[label, base.mean_cpu(label)] for label in base.labels]
    return ["config", "mean_cpu_pct"], rows


def report(result: Fig9Result) -> str:
    """Render the figure's series as an aligned text table."""
    base = result.base
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=f"Fig. 9: kissdb mean CPU usage, {base.n_threads} client threads",
        precision=1,
    )


def check_shape(result: Fig9Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    base = result.base
    violations = []
    no_sl_cpu = base.mean_cpu("no_sl")
    zc_cpu = base.mean_cpu("zc")
    for label in base.labels:
        if label == "no_sl":
            continue
        if not no_sl_cpu < base.mean_cpu(label):
            violations.append(
                f"expected no_sl to use the least CPU, but {label} uses "
                f"{base.mean_cpu(label):.1f}% vs {no_sl_cpu:.1f}%"
            )
    for tag in _fig8.KISSDB_OCALL_SETS:
        two = f"i-{tag}-2"
        four = f"i-{tag}-4"
        if two in base.labels and four in base.labels:
            if not base.mean_cpu(four) > base.mean_cpu(two):
                violations.append(
                    f"expected {four} to use more CPU than {two} "
                    f"({base.mean_cpu(four):.1f}% vs {base.mean_cpu(two):.1f}%)"
                )
    max_intel4 = max(
        (base.mean_cpu(lbl) for lbl in base.labels if lbl.endswith("-4")),
        default=None,
    )
    if max_intel4 is not None and not zc_cpu < max_intel4:
        violations.append(
            f"expected zc CPU below the Intel-4 configs "
            f"({zc_cpu:.1f}% vs {max_intel4:.1f}%)"
        )
    return violations
