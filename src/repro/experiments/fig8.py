"""Fig. 8: kissdb — average latency of key/value SET commands.

A varying number of 8-byte key / 8-byte value SETs are issued by client
threads inside the enclave (each client owns its own database file, as
KISSDB is not thread-safe).  The three most frequent ocalls are
``fseeko``, ``fwrite`` and ``fread``; Intel switchless is evaluated in the
paper's ten static configurations (five ocall subsets x {2, 4} workers)
against ``no_sl`` and ``zc``.

Shape requirements (Take-aways 4 & 5):

- zc is faster than no_sl (paper: ~1.22x);
- zc beats every *misconfigured* Intel config (single-ocall subsets);
- a fully-configured Intel (i-all) is at least competitive with zc;
- the zc latency curve shows occasional pool-reallocation spikes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import LatencyRecorder
from repro.analysis.report import format_table
from repro.apps import KissDB
from repro.experiments.common import (
    BackendSpec,
    Stack,
    build_stack,
    intel_spec,
    no_sl_spec,
    zc_spec,
)
from repro.parallel import CellSpec, ResultCache, cell, run_cells

#: The paper's Intel configuration tags and their switchless ocall sets.
KISSDB_OCALL_SETS: dict[str, frozenset[str]] = {
    "fseeko": frozenset({"fseeko"}),
    "fwrite": frozenset({"fwrite"}),
    "fread": frozenset({"fread"}),
    "frw": frozenset({"fread", "fwrite"}),
    "all": frozenset({"fseeko", "fread", "fwrite"}),
}

DEFAULT_N_KEYS = (1000, 2000, 3000)
#: Enclave client threads.  Two reproduces the paper's CPU-usage ladder
#: (no_sl ~25% < Intel-2 ~50% < zc ~60-75% < Intel-4 ~75-80%) and its
#: latency ordering including Take-away 5 (i-all-2 slightly ahead of zc).
DEFAULT_THREADS = 2


def backend_specs(worker_counts: tuple[int, ...] = (2, 4)) -> list[BackendSpec]:
    """no_sl, zc, and the ten Intel configurations of the paper."""
    specs = [no_sl_spec(), zc_spec()]
    for workers in worker_counts:
        for tag, names in KISSDB_OCALL_SETS.items():
            specs.append(intel_spec(tag, names, workers))
    return specs


@dataclass(frozen=True)
class Fig8Row:
    """One configuration cell of the figure."""
    label: str
    n_keys: int
    mean_latency_us: float
    p99_latency_us: float
    max_latency_us: float
    cpu_pct: float
    switchless_fraction: float
    pool_reallocs: int


@dataclass
class Fig8Result:
    """Structured result of this experiment."""
    rows: list[Fig8Row]
    n_threads: int

    def latency(self, label: str, n_keys: int) -> float:
        """Latency for the given configuration cell."""
        for row in self.rows:
            if row.label == label and row.n_keys == n_keys:
                return row.mean_latency_us
        raise KeyError((label, n_keys))

    def mean_latency(self, label: str) -> float:
        """Mean latency across the sweep for one configuration."""
        values = [r.mean_latency_us for r in self.rows if r.label == label]
        if not values:
            raise KeyError(label)
        return sum(values) / len(values)

    def mean_cpu(self, label: str) -> float:
        """Mean CPU usage across the sweep for one configuration."""
        values = [r.cpu_pct for r in self.rows if r.label == label]
        return sum(values) / len(values)

    @property
    def labels(self) -> list[str]:
        """Configuration labels, in run order."""
        seen: list[str] = []
        for row in self.rows:
            if row.label not in seen:
                seen.append(row.label)
        return seen

    @property
    def key_counts(self) -> list[int]:
        """The swept key counts, ascending."""
        return sorted({row.n_keys for row in self.rows})


def run_one(spec: BackendSpec, n_keys: int, n_threads: int = DEFAULT_THREADS) -> Fig8Row:
    """One (configuration, key count) cell of Fig. 8."""
    stack: Stack = build_stack(spec)
    kernel = stack.kernel
    enclave = stack.enclave
    recorder = LatencyRecorder()
    keys_per_thread = n_keys // n_threads

    def client(index: int):
        db = KissDB(enclave, f"/db-{index}", hash_table_size=256)
        yield from db.open()
        base = index * keys_per_thread
        for i in range(keys_per_thread):
            key = (base + i).to_bytes(8, "big")
            value = (base + i).to_bytes(8, "little")
            t0 = kernel.now
            yield from db.put(key, value)
            recorder.record(kernel.now - t0)
        yield from db.close()

    stack.start_measuring()
    threads = [
        kernel.spawn(client(i), name=f"kissdb-client-{i}", kind="app")
        for i in range(n_threads)
    ]
    kernel.join(*threads)
    cpu = stack.cpu_usage_pct()
    to_us = 1e6 / kernel.spec.freq_hz

    switchless_fraction = enclave.stats.switchless_fraction()
    pool_reallocs = 0
    backend = enclave.backend
    if hasattr(backend, "stats") and hasattr(backend.stats, "pool_reallocs"):
        pool_reallocs = backend.stats.pool_reallocs
    stack.finish()
    return Fig8Row(
        label=spec.label,
        n_keys=n_keys,
        mean_latency_us=recorder.mean() * to_us,
        p99_latency_us=recorder.percentile(99) * to_us,
        max_latency_us=recorder.max() * to_us,
        cpu_pct=cpu,
        switchless_fraction=switchless_fraction,
        pool_reallocs=pool_reallocs,
    )


def cells(
    n_keys_sweep: tuple[int, ...] = DEFAULT_N_KEYS,
    worker_counts: tuple[int, ...] = (2, 4),
    n_threads: int = DEFAULT_THREADS,
) -> list[CellSpec]:
    """The experiment's grid as data: one cell per (backend, key count).

    Fig. 9 reuses these cells verbatim — the same runs feed both figures,
    so one cache entry serves both.
    """
    return [
        cell("fig8", index, spec=backend, n_keys=n_keys, n_threads=n_threads)
        for index, (backend, n_keys) in enumerate(
            (backend, n_keys)
            for backend in backend_specs(worker_counts)
            for n_keys in n_keys_sweep
        )
    ]


def run_cell(spec: CellSpec) -> Fig8Row:
    """Execute one cell of the grid."""
    kw = spec.kwargs
    return run_one(kw["spec"], kw["n_keys"], kw["n_threads"])


def assemble(
    rows: list[Fig8Row],
    n_keys_sweep: tuple[int, ...] = DEFAULT_N_KEYS,
    worker_counts: tuple[int, ...] = (2, 4),
    n_threads: int = DEFAULT_THREADS,
) -> Fig8Result:
    """Build the structured result from rows in ``cells()`` order."""
    return Fig8Result(rows=list(rows), n_threads=n_threads)


def run(
    n_keys_sweep: tuple[int, ...] = DEFAULT_N_KEYS,
    worker_counts: tuple[int, ...] = (2, 4),
    n_threads: int = DEFAULT_THREADS,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig8Result:
    """Execute the experiment and return its structured result."""
    rows = run_cells(
        cells(n_keys_sweep, worker_counts, n_threads), jobs=jobs, cache=cache
    )
    return assemble(rows, n_threads=n_threads)


def table(result: Fig8Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    key_counts = result.key_counts
    rows = [
        [label] + [result.latency(label, n) for n in key_counts]
        for label in result.labels
    ]
    return ["config"] + [f"{n} keys (us)" for n in key_counts], rows


def report(result: Fig8Result) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 8: kissdb mean SET latency, {result.n_threads} client threads"
        ),
        precision=1,
    )


def check_shape(result: Fig8Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    zc = result.mean_latency("zc")
    no_sl = result.mean_latency("no_sl")
    if not zc < no_sl:
        violations.append(f"expected zc faster than no_sl ({zc:.1f} vs {no_sl:.1f} us)")
    ratio = no_sl / zc
    if not 1.05 < ratio < 3.0:
        violations.append(f"expected no_sl/zc near the paper's 1.22x, got {ratio:.2f}x")
    for label in result.labels:
        if label.startswith("i-") and not label.startswith("i-all"):
            misconfigured = result.mean_latency(label)
            if not zc < misconfigured * 1.02:
                violations.append(
                    f"expected zc faster than misconfigured {label} "
                    f"({zc:.1f} vs {misconfigured:.1f} us)"
                )
    # A well-configured Intel is at least competitive with zc (paper has
    # it ahead; our scheduler closes most of the gap, so allow a band).
    for label in ("i-all-2", "i-all-4"):
        if label in result.labels:
            well_configured = result.mean_latency(label)
            if not well_configured < zc * 1.4:
                violations.append(
                    f"expected {label} competitive with zc "
                    f"({well_configured:.1f} vs {zc:.1f} us)"
                )
    # zc pool reallocation spikes (only observable once the workload is
    # large enough to fill a 256 kB per-worker pool: >= ~2000 keys).
    zc_rows = [r for r in result.rows if r.label == "zc"]
    large_enough = any(r.n_keys >= 2000 for r in zc_rows)
    if large_enough and not any(r.pool_reallocs > 0 for r in zc_rows):
        violations.append("expected zc memory-pool reallocations to occur")
    return violations
