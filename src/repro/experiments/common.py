"""Shared system-under-test builders for the experiments.

An experiment run builds one full simulated machine per (configuration,
parameter) cell: kernel, host filesystem with devices, POSIX ocall
handlers, one enclave, and the call backend named by a
:class:`BackendSpec` — exactly the three modes the paper evaluates
(``no_sl``, Intel switchless with a static configuration, and zc).

Construction is delegated to :func:`repro.api.Runtime.create`;
:class:`Stack` survives as a thin experiment-facing wrapper that keeps
the historical attribute names (``stack.finish()`` etc.) used throughout
:mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Runtime, SwitchlessConfig, ZcConfig
from repro.faults import FaultInjector
from repro.hostos import CpuUsageMonitor, HostFileSystem, ProcStat, SyscallCostModel
from repro.sgx import Enclave, SgxCostModel
from repro.sim import Kernel, MachineSpec
from repro.telemetry.session import CellCapture


@dataclass(frozen=True)
class BackendSpec:
    """Names one of the paper's execution modes.

    ``label`` follows the paper's legend conventions, e.g. ``no_sl``,
    ``zc``, ``i-fseeko-2``, ``i-frwoc-4``.
    """

    label: str
    kind: str  # "no_sl" | "intel" | "zc"
    switchless: frozenset[str] = frozenset()
    workers: int = 2
    zc_config: ZcConfig | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("no_sl", "intel", "zc"):
            raise ValueError(f"unknown backend kind {self.kind!r}")

    def backend_config(self) -> ZcConfig | SwitchlessConfig | None:
        """The :func:`repro.api.make_backend` config for this spec."""
        if self.kind == "intel":
            return SwitchlessConfig(
                switchless_ocalls=self.switchless, num_uworkers=self.workers
            )
        if self.kind == "zc":
            return self.zc_config  # None → configless defaults
        return None


def no_sl_spec() -> BackendSpec:
    """The paper's ``no_sl`` mode: every ocall transitions."""
    return BackendSpec(label="no_sl", kind="no_sl")


def intel_spec(tag: str, names: frozenset[str] | set[str], workers: int) -> BackendSpec:
    """An Intel switchless configuration, labelled ``i-<tag>-<workers>``."""
    return BackendSpec(
        label=f"i-{tag}-{workers}",
        kind="intel",
        switchless=frozenset(names),
        workers=workers,
    )


def zc_spec(config: ZcConfig | None = None) -> BackendSpec:
    """ZC-SWITCHLESS with its default (configless) runtime parameters."""
    return BackendSpec(label="zc", kind="zc", zc_config=config)


@dataclass
class Stack:
    """One fully-built system under test (wraps a :class:`repro.api.Runtime`)."""

    spec: BackendSpec
    runtime: Runtime = field(repr=False)

    @property
    def kernel(self) -> Kernel:
        return self.runtime.kernel

    @property
    def fs(self) -> HostFileSystem:
        return self.runtime.fs

    @property
    def enclave(self) -> Enclave:
        return self.runtime.enclave

    @property
    def procstat(self) -> ProcStat:
        return self.runtime.procstat

    @property
    def monitor(self) -> CpuUsageMonitor | None:
        return self.runtime.monitor

    @property
    def telemetry(self) -> CellCapture | None:
        return self.runtime.telemetry

    @property
    def faults(self) -> FaultInjector | None:
        return self.runtime.faults

    def start_measuring(self) -> None:
        """Snapshot CPU counters; usage is measured from here."""
        self.runtime.start_measuring()

    def cpu_usage_pct(self) -> float:
        """Mean CPU usage since :meth:`start_measuring`."""
        return self.runtime.cpu_usage_pct()

    def finish(self) -> None:
        """Stop backend threads and the monitor, drain remaining events."""
        self.runtime.close()


def build_stack(
    spec: BackendSpec,
    machine: MachineSpec | None = None,
    cost: SgxCostModel | None = None,
    syscall_costs: SyscallCostModel | None = None,
    files: dict[str, bytes] | None = None,
    monitor_interval_s: float | None = None,
    memcpy_model: object | None = None,
) -> Stack:
    """Build a machine + enclave + backend for one experiment cell.

    ``memcpy_model`` overrides the enclave's marshalling memcpy (used by
    the Fig. 7 / Fig. 13 experiments); note the zc backend installs its
    own ``rep movsb`` model on attach regardless.
    """
    runtime = Runtime.create(
        backend=spec.kind,
        config=spec.backend_config(),
        machine=machine,
        cost=cost,
        syscall_costs=syscall_costs,
        files=files,
        monitor_interval_s=monitor_interval_s,
        memcpy_model=memcpy_model,
        label=spec.label,
    )
    return Stack(spec=spec, runtime=runtime)
