"""Shared system-under-test builders for the experiments.

An experiment run builds one full simulated machine per (configuration,
parameter) cell: kernel, host filesystem with devices, POSIX ocall
handlers, one enclave, and the call backend named by a
:class:`BackendSpec` — exactly the three modes the paper evaluates
(``no_sl``, Intel switchless with a static configuration, and zc).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ZcConfig, ZcSwitchlessBackend
from repro.faults import FaultInjector, active_fault_plan
from repro.hostos import (
    CpuUsageMonitor,
    DevNull,
    DevZero,
    HostFileSystem,
    PosixHost,
    ProcStat,
    SyscallCostModel,
)
from repro.sgx import Enclave, SgxCostModel, UntrustedRuntime
from repro.sim import Kernel, MachineSpec, paper_machine
from repro.switchless import IntelSwitchlessBackend, SwitchlessConfig
from repro.telemetry.session import CellCapture, active_session


@dataclass(frozen=True)
class BackendSpec:
    """Names one of the paper's execution modes.

    ``label`` follows the paper's legend conventions, e.g. ``no_sl``,
    ``zc``, ``i-fseeko-2``, ``i-frwoc-4``.
    """

    label: str
    kind: str  # "no_sl" | "intel" | "zc"
    switchless: frozenset[str] = frozenset()
    workers: int = 2
    zc_config: ZcConfig | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("no_sl", "intel", "zc"):
            raise ValueError(f"unknown backend kind {self.kind!r}")


def no_sl_spec() -> BackendSpec:
    """The paper's ``no_sl`` mode: every ocall transitions."""
    return BackendSpec(label="no_sl", kind="no_sl")


def intel_spec(tag: str, names: frozenset[str] | set[str], workers: int) -> BackendSpec:
    """An Intel switchless configuration, labelled ``i-<tag>-<workers>``."""
    return BackendSpec(
        label=f"i-{tag}-{workers}",
        kind="intel",
        switchless=frozenset(names),
        workers=workers,
    )


def zc_spec(config: ZcConfig | None = None) -> BackendSpec:
    """ZC-SWITCHLESS with its default (configless) runtime parameters."""
    return BackendSpec(label="zc", kind="zc", zc_config=config)


@dataclass
class Stack:
    """One fully-built system under test."""

    spec: BackendSpec
    kernel: Kernel
    fs: HostFileSystem
    enclave: Enclave
    procstat: ProcStat
    monitor: CpuUsageMonitor | None = None
    telemetry: CellCapture | None = None
    faults: FaultInjector | None = None
    _start_sample: object = None

    def start_measuring(self) -> None:
        """Snapshot CPU counters; usage is measured from here."""
        self._start_sample = self.procstat.sample()

    def cpu_usage_pct(self) -> float:
        """Mean CPU usage since :meth:`start_measuring`."""
        if self._start_sample is None:
            raise RuntimeError("start_measuring() was not called")
        end = self.procstat.sample()
        return self.procstat.usage_between(self._start_sample, end).usage_pct

    def finish(self) -> None:
        """Stop backend threads and the monitor, drain remaining events."""
        if self.faults is not None:
            # Before the drain: cancels not-yet-fired fault (and respawn /
            # redelivery) timers so the teardown never advances simulated
            # time to a future fault instant.
            self.faults.detach()
        if self.monitor is not None:
            self.monitor.stop()
        self.enclave.stop_backend()
        self.kernel.run()
        if self.telemetry is not None:
            # After the drain, so worker exit-cleanup cycles are attributed.
            self.telemetry.finalize()


def build_stack(
    spec: BackendSpec,
    machine: MachineSpec | None = None,
    cost: SgxCostModel | None = None,
    syscall_costs: SyscallCostModel | None = None,
    files: dict[str, bytes] | None = None,
    monitor_interval_s: float | None = None,
    memcpy_model: object | None = None,
) -> Stack:
    """Build a machine + enclave + backend for one experiment cell.

    ``memcpy_model`` overrides the enclave's marshalling memcpy (used by
    the Fig. 7 / Fig. 13 experiments); note the zc backend installs its
    own ``rep movsb`` model on attach regardless.
    """
    machine = machine if machine is not None else paper_machine()
    kernel = Kernel(machine)
    session = active_session()
    capture = session.attach(kernel, label=spec.label) if session is not None else None
    fs = HostFileSystem()
    fs.mount_device("/dev/null", DevNull())
    fs.mount_device("/dev/zero", DevZero())
    if files:
        for path, data in files.items():
            fs.create(path, data)
    urts = UntrustedRuntime()
    PosixHost(fs, syscall_costs, kernel=kernel).install(urts)
    enclave = Enclave(kernel, urts, cost=cost, memcpy_model=memcpy_model)

    if spec.kind == "intel":
        backend = IntelSwitchlessBackend(
            SwitchlessConfig(
                switchless_ocalls=spec.switchless, num_uworkers=spec.workers
            )
        )
        enclave.set_backend(backend)
    elif spec.kind == "zc":
        config = spec.zc_config if spec.zc_config is not None else ZcConfig()
        enclave.set_backend(ZcSwitchlessBackend(config))
    # "no_sl" keeps the default RegularBackend.

    monitor = None
    if monitor_interval_s is not None:
        monitor = CpuUsageMonitor(kernel, kernel.cycles(monitor_interval_s)).start()
    if capture is not None:
        capture.bind_enclave(enclave)
    plan = active_fault_plan()
    faults = FaultInjector(plan).attach(kernel, enclave) if plan is not None else None
    return Stack(
        spec=spec,
        kernel=kernel,
        fs=fs,
        enclave=enclave,
        procstat=ProcStat(kernel),
        monitor=monitor,
        telemetry=capture,
        faults=faults,
    )
