"""Fig. 2: synthetic-benchmark runtime vs. Intel worker count, C1–C5.

The paper plots runtime for 75,000 switchless-candidate ocalls to ``f``
and 25,000 to ``g`` as the number of Intel switchless workers varies from
1 to 5, one line per configuration C1–C5.

Shape requirements encoded in :func:`check_shape`:

- C1 (only f switchless) is the best configuration overall, and — as the
  paper notes for its best case — "the fewer the workers, the better";
- C5 (no switchless) is flat in the worker count and beats C2 at low
  worker counts;
- the g-switchless configurations (C2, C4) are strongly sensitive to the
  worker count (the long calls are worker-bound), unlike C5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.parallel import CellSpec, ResultCache, cell, run_cells
from repro.workloads.synthetic import SyntheticResult, SyntheticSpec, run_synthetic

CONFIGS = ("C1", "C2", "C3", "C4", "C5")
WORKER_COUNTS = (1, 2, 3, 4, 5)


@dataclass
class Fig2Result:
    """Structured result of this experiment."""
    rows: list[SyntheticResult]
    spec: SyntheticSpec

    def runtime(self, config: str, workers: int) -> float:
        """Elapsed seconds for the given configuration cell."""
        for row in self.rows:
            if row.config == config and row.workers == workers:
                return row.elapsed_seconds
        raise KeyError((config, workers))

    def series(self, config: str) -> list[tuple[int, float]]:
        """The (x, y) series for one configuration line."""
        return [
            (row.workers, row.elapsed_seconds)
            for row in self.rows
            if row.config == config
        ]


def cells(
    total_calls: int = 10_000,
    workers: tuple[int, ...] = WORKER_COUNTS,
    configs: tuple[str, ...] = CONFIGS,
    g_pauses: int = 500,
) -> list[CellSpec]:
    """The experiment's grid as data: one cell per (config, workers)."""
    return [
        cell(
            "fig2",
            index,
            config=config,
            workers=w,
            total_calls=total_calls,
            g_pauses=g_pauses,
        )
        for index, (config, w) in enumerate(
            (config, w) for config in configs for w in workers
        )
    ]


def run_cell(spec: CellSpec) -> SyntheticResult:
    """Execute one cell of the grid."""
    kw = spec.kwargs
    synthetic = SyntheticSpec(total_calls=kw["total_calls"], g_pauses=kw["g_pauses"])
    return run_synthetic(kw["config"], kw["workers"], synthetic)


def assemble(
    rows: list[SyntheticResult],
    total_calls: int = 10_000,
    workers: tuple[int, ...] = WORKER_COUNTS,
    configs: tuple[str, ...] = CONFIGS,
    g_pauses: int = 500,
) -> Fig2Result:
    """Build the structured result from rows in ``cells()`` order."""
    return Fig2Result(
        rows=list(rows),
        spec=SyntheticSpec(total_calls=total_calls, g_pauses=g_pauses),
    )


def run(
    total_calls: int = 10_000,
    workers: tuple[int, ...] = WORKER_COUNTS,
    configs: tuple[str, ...] = CONFIGS,
    g_pauses: int = 500,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig2Result:
    """Sweep (config x workers); scaled by ``total_calls``."""
    rows = run_cells(
        cells(total_calls, workers, configs, g_pauses), jobs=jobs, cache=cache
    )
    return assemble(rows, total_calls=total_calls, g_pauses=g_pauses)


def table(result: Fig2Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    workers = sorted({row.workers for row in result.rows})
    configs = [c for c in CONFIGS if any(r.config == c for r in result.rows)]
    rows = [
        [config] + [result.runtime(config, w) for w in workers] for config in configs
    ]
    return ["config"] + [f"{w}w (s)" for w in workers], rows


def report(result: Fig2Result) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 2: runtime of {result.spec.total_calls} ocalls "
            f"(75% f / 25% g@{result.spec.g_pauses} pauses) vs worker count"
        ),
    )


def check_shape(result: Fig2Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    workers = sorted({row.workers for row in result.rows})
    low_w = workers[0]
    high_w = workers[-1]
    best_c1 = min(t for _, t in result.series("C1"))
    for config in ("C2", "C3", "C4", "C5"):
        best_other = min(t for _, t in result.series(config))
        if best_c1 > best_other * 1.05:
            violations.append(
                f"expected C1 to be the best config, but {config} beats it "
                f"({best_c1:.3f} vs {best_other:.3f})"
            )
    if not result.runtime("C5", low_w) < result.runtime("C2", low_w):
        violations.append("expected C5 < C2 at low worker counts")
    # C5 never uses workers: flat in the worker count.
    c5 = [t for _, t in result.series("C5")]
    if max(c5) > min(c5) * 1.10:
        violations.append(f"expected C5 flat across workers, got {c5}")
    # C1: the fewer the workers, the better (paper's observation).
    if not result.runtime("C1", low_w) <= result.runtime("C1", high_w) * 1.05:
        violations.append("expected C1 best at the lowest worker count")
    # The g-switchless configs are worker-bound: strongly worker-sensitive.
    for config in ("C2", "C4"):
        series = [t for _, t in result.series(config)]
        if max(series) < 1.15 * min(series):
            violations.append(
                f"expected {config} to be sensitive to the worker count, got {series}"
            )
    return violations
