"""Fig. 7: write-ocall throughput, aligned vs unaligned (vanilla memcpy).

100,000 ``write`` syscalls to ``/dev/null`` from the enclave, each
marshalling a buffer of 512 B..32 kB through the SDK's tlibc ``memcpy``.
The paper observes aligned buffers consistently faster and the unaligned
curve plateauing around 0.4 GB/s (the byte-by-byte copy path).

Shape requirements:

- aligned > unaligned at every size;
- unaligned throughput plateaus in the 0.3-0.5 GB/s band at 32 kB;
- throughput grows with buffer size (the per-op transition amortises).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments.common import build_stack, no_sl_spec
from repro.parallel import CellSpec, ResultCache, cell, run_cells
from repro.sgx.memcpy import MemcpyModel, VanillaMemcpy

SIZES = (512, 1024, 2048, 4096, 8192, 16_384, 32_768)


@dataclass(frozen=True)
class ThroughputPoint:
    """One data point of the figure."""
    size_bytes: int
    aligned: bool
    gbps: float


@dataclass
class Fig7Result:
    """Structured result of this experiment."""
    points: list[ThroughputPoint]
    ops: int

    def gbps(self, size: int, aligned: bool) -> float:
        """Throughput in GB/s for the given cell."""
        for p in self.points:
            if p.size_bytes == size and p.aligned == aligned:
                return p.gbps
        raise KeyError((size, aligned))

    def series(self, aligned: bool) -> list[tuple[int, float]]:
        """The (x, y) series for one configuration line."""
        return [
            (p.size_bytes, p.gbps) for p in self.points if p.aligned == aligned
        ]


def measure_write_throughput(
    size: int,
    aligned: bool,
    memcpy_model: MemcpyModel,
    ops: int = 300,
) -> float:
    """GB/s of ``ops`` write ocalls of ``size`` bytes to /dev/null."""
    stack = build_stack(no_sl_spec(), memcpy_model=memcpy_model)
    enclave = stack.enclave
    kernel = stack.kernel
    payload = bytes(size)

    def app():
        fd = yield from enclave.ocall("open", "/dev/null", "w")
        for _ in range(ops):
            yield from enclave.ocall(
                "write", fd, payload, in_bytes=size, aligned=aligned
            )
        yield from enclave.ocall("close", fd)

    start = kernel.now
    thread = kernel.spawn(app(), name="writer")
    kernel.join(thread)
    elapsed_s = kernel.seconds(kernel.now - start)
    stack.finish()
    return size * ops / elapsed_s / 1e9


def cells(
    sizes: tuple[int, ...] = SIZES,
    ops: int = 300,
    memcpy_model: MemcpyModel | None = None,
) -> list[CellSpec]:
    """The experiment's grid as data: one cell per (size, alignment).

    The memcpy model rides along as a cell parameter, which is how
    Fig. 13 reuses these cells (and their cache entries) for both the
    vanilla and the zc variant.
    """
    model = memcpy_model if memcpy_model is not None else VanillaMemcpy()
    return [
        cell("fig7", index, size=size, aligned=aligned, memcpy_model=model, ops=ops)
        for index, (size, aligned) in enumerate(
            (size, aligned) for size in sizes for aligned in (True, False)
        )
    ]


def run_cell(spec: CellSpec) -> ThroughputPoint:
    """Execute one cell of the grid."""
    kw = spec.kwargs
    gbps = measure_write_throughput(
        kw["size"], kw["aligned"], kw["memcpy_model"], kw["ops"]
    )
    return ThroughputPoint(kw["size"], kw["aligned"], gbps)


def assemble(
    points: list[ThroughputPoint],
    sizes: tuple[int, ...] = SIZES,
    ops: int = 300,
    memcpy_model: MemcpyModel | None = None,
) -> Fig7Result:
    """Build the structured result from rows in ``cells()`` order."""
    return Fig7Result(points=list(points), ops=ops)


def run(
    sizes: tuple[int, ...] = SIZES,
    ops: int = 300,
    memcpy_model: MemcpyModel | None = None,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig7Result:
    """Execute the experiment and return its structured result."""
    points = run_cells(cells(sizes, ops, memcpy_model), jobs=jobs, cache=cache)
    return assemble(points, ops=ops)


def table(result: Fig7Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    sizes = sorted({p.size_bytes for p in result.points})
    rows = [
        [size, result.gbps(size, True), result.gbps(size, False)]
        for size in sizes
    ]
    return ["size_B", "aligned_GBps", "unaligned_GBps"], rows


def report(result: Fig7Result) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=f"Fig. 7: /dev/null write-ocall throughput, vanilla memcpy ({result.ops} ops)",
    )


def check_shape(result: Fig7Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    sizes = sorted({p.size_bytes for p in result.points})
    for size in sizes:
        if not result.gbps(size, True) > result.gbps(size, False):
            violations.append(f"expected aligned > unaligned at {size} B")
    plateau = result.gbps(sizes[-1], False)
    if not 0.3 < plateau < 0.5:
        violations.append(
            f"expected unaligned plateau near 0.4 GB/s, got {plateau:.3f}"
        )
    for aligned in (True, False):
        series = [g for _, g in result.series(aligned)]
        if not all(a < b for a, b in zip(series, series[1:])):
            violations.append(
                f"expected throughput to grow with size (aligned={aligned})"
            )
    return violations
