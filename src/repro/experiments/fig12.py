"""Fig. 12: lmbench dynamic benchmark — CPU usage over time.

Same runs as Fig. 11, reporting the ``/proc/stat`` CPU series.  The paper
observes that CPU usage ramps with the load and plateaus; misconfigured
Intel-4 runs burn as much CPU as zc for far less throughput, while i-all-4
burns ~1.3x more CPU than zc (Take-away 8).

Shape requirements:

- i-all-4 uses more CPU than zc;
- zc's CPU usage tracks the load: the ramp-up phase average is below the
  peak phase average, and the ramp-down average drops again;
- misconfigured Intel-4 configs waste CPU: they use at least as much CPU
  as their Intel-2 counterparts while delivering (per Fig. 11) less
  throughput than zc.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments import fig11 as _fig11
from repro.experiments.fig11 import Fig11Result, LmbenchRun
from repro.parallel import CellSpec, ResultCache, run_cells
from repro.workloads.dynamic import DynamicSpec


@dataclass
class Fig12Result:
    """Structured result of this experiment."""
    base: Fig11Result


def cells(
    worker_counts: tuple[int, ...] = (2, 4),
    spec: DynamicSpec = _fig11.DEFAULT_SPEC,
) -> list[CellSpec]:
    """Fig. 11's cells verbatim: the same runs feed both figures.

    The specs carry ``exp_id="fig11"``, so the runner dispatches to
    Fig. 11's ``run_cell`` and the cache shares one entry per cell across
    both figures.
    """
    return _fig11.cells(worker_counts, spec)


def run_cell(cell_spec: CellSpec) -> LmbenchRun:
    """Execute one cell of the grid (delegates to Fig. 11)."""
    return _fig11.run_cell(cell_spec)


def assemble(
    runs: list[LmbenchRun],
    worker_counts: tuple[int, ...] = (2, 4),
    spec: DynamicSpec = _fig11.DEFAULT_SPEC,
) -> Fig12Result:
    """Build the structured result from rows in ``cells()`` order."""
    return Fig12Result(base=_fig11.assemble(runs, spec=spec))


def run(
    worker_counts: tuple[int, ...] = (2, 4),
    spec: DynamicSpec = _fig11.DEFAULT_SPEC,
    base: Fig11Result | None = None,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig12Result:
    """Reuses a Fig. 11 result when provided (same runs feed both)."""
    if base is not None:
        return Fig12Result(base=base)
    runs = run_cells(cells(worker_counts, spec), jobs=jobs, cache=cache)
    return assemble(runs, spec=spec)


def _phase_means(run_, spec: DynamicSpec) -> tuple[float, float, float]:
    """Mean CPU% over the (ramp-up, peak, ramp-down) phases."""
    series = [pct for _, pct in run_.cpu_series]
    n = spec.periods_per_phase
    if len(series) < 3 * n:
        # Pad with the last value if the monitor missed trailing windows.
        series = series + [series[-1]] * (3 * n - len(series)) if series else [0.0] * 3 * n
    up = sum(series[:n]) / n
    peak = sum(series[n : 2 * n]) / n
    down = sum(series[2 * n : 3 * n]) / n
    return up, peak, down


def table(result: Fig12Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    spec = result.base.spec
    rows = []
    for run_ in result.base.runs:
        up, peak, down = _phase_means(run_, spec)
        rows.append([run_.label, up, peak, down, run_.mean_cpu()])
    return ["config", "ramp_up_cpu", "peak_cpu", "ramp_down_cpu", "mean_cpu"], rows


def report(result: Fig12Result) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title="Fig. 12: lmbench dynamic benchmark — CPU usage by phase (%)",
        precision=1,
    )


def check_shape(result: Fig12Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    base = result.base
    spec = base.spec
    violations = []
    zc = base.get("zc")
    zc_cpu = zc.mean_cpu()
    labels = base.labels
    if "i-all-4" in labels and not base.get("i-all-4").mean_cpu() > zc_cpu:
        violations.append(
            f"expected i-all-4 CPU above zc "
            f"({base.get('i-all-4').mean_cpu():.1f}% vs {zc_cpu:.1f}%)"
        )
    up, peak, down = _phase_means(zc, spec)
    if not up < peak:
        violations.append(f"expected zc CPU to ramp with load ({up:.1f} -> {peak:.1f})")
    if not down < peak:
        violations.append(
            f"expected zc CPU to drop after the peak ({peak:.1f} -> {down:.1f})"
        )
    for tag in ("read", "write"):
        if f"i-{tag}-4" not in labels or f"i-{tag}-2" not in labels:
            continue
        two = base.get(f"i-{tag}-2").mean_cpu()
        four = base.get(f"i-{tag}-4").mean_cpu()
        if not four >= two * 0.95:
            violations.append(
                f"expected i-{tag}-4 to burn at least as much CPU as i-{tag}-2"
            )
    return violations
