"""Extension experiment: shard-count scaling of the serving layer.

The paper evaluates one enclave at a time; this experiment asks the
deployment question: with N enclave shards behind a router on one
machine — each running its own configless worker pool, all clipped by a
global worker budget — how does sustained request throughput scale, and
what happens to the latency tail?

Expected shape: near-linear throughput scaling while cores last (the
shards share nothing but the machine), with a bounded p99 inflation
from router queueing — the arbiter is what keeps N argmin loops from
collectively starving the server threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.report import format_table
from repro.api import BenchSpec, ServeSpec
from repro.parallel import CellSpec, ResultCache, cell, run_cells
from repro.serve.bench import run_bench

SHARD_COUNTS = (1, 2, 4)


@dataclass
class ServeResult:
    """Structured result of this experiment."""

    rows: list[dict[str, Any]]
    seconds: float
    rate: float

    def row(self, shards: int) -> dict[str, Any]:
        """The result row for one shard count."""
        for entry in self.rows:
            if entry["shards"] == shards:
                return entry
        raise KeyError(f"no row for {shards} shards")


def cells(
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    seconds: float = 0.5,
    rate: float = 2_000.0,
    budget: int = 8,
) -> list[CellSpec]:
    """The grid as data: one serving run per shard count."""
    return [
        cell(
            "serve",
            index,
            shards=shards,
            seconds=seconds,
            rate=rate,
            budget=budget,
        )
        for index, shards in enumerate(shard_counts)
    ]


def run_cell(spec: CellSpec) -> dict[str, Any]:
    """Execute one cell of the grid; returns the flattened row."""
    kw = spec.kwargs
    result = run_bench(
        BenchSpec(
            serve=ServeSpec(shards=kw["shards"], budget=kw["budget"]),
            seconds=kw["seconds"],
            rate=kw["rate"],
        )
    )
    totals = result["totals"]
    return {
        "shards": kw["shards"],
        "throughput_rps": totals["throughput_rps"],
        "p50_us": totals["latency_us"]["p50"],
        "p99_us": totals["latency_us"]["p99"],
        "submitted": totals["submitted"],
        "completed": totals["completed"],
        "shed": totals["shed"],
        "failed": totals["failed"],
    }


def run(
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    seconds: float = 0.5,
    rate: float = 2_000.0,
    budget: int = 8,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> ServeResult:
    """Execute the experiment and return its structured result."""
    rows = run_cells(
        cells(shard_counts, seconds=seconds, rate=rate, budget=budget),
        jobs=jobs,
        cache=cache,
    )
    return ServeResult(rows=rows, seconds=seconds, rate=rate)


def table(result: ServeResult) -> tuple[list[str], list[list]]:
    """(headers, rows) of the experiment's data, for reports and CSV."""
    rows = [
        [
            entry["shards"],
            entry["throughput_rps"],
            entry["p50_us"],
            entry["p99_us"],
            entry["completed"],
            entry["shed"],
        ]
        for entry in result.rows
    ]
    return ["shards", "rps", "p50_us", "p99_us", "completed", "shed"], rows


def report(result: ServeResult) -> str:
    """Render the experiment's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=(
            "Extension: sharded serving throughput vs shard count "
            f"(open loop @ {result.rate:.0f} rps offered per run)"
        ),
    )


def check_shape(result: ServeResult) -> list[str]:
    """Return the violated shape expectations (empty = as expected)."""
    violations = []
    for entry in result.rows:
        accounted = entry["completed"] + entry["shed"] + entry["failed"]
        if entry["submitted"] != accounted:
            violations.append(
                f"{entry['shards']} shards: request conservation broken "
                f"({entry['submitted']} submitted vs {accounted} accounted)"
            )
        if entry["completed"] == 0:
            violations.append(f"{entry['shards']} shards: nothing completed")
    # At a fixed offered rate the cluster must keep up regardless of
    # shard count (the open loop is not a saturation test); more shards
    # must never complete *less*.
    completions = [entry["completed"] for entry in result.rows]
    if any(b < a * 0.9 for a, b in zip(completions, completions[1:])):
        violations.append("completions fell with added shards")
    return violations
