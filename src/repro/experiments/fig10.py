"""Fig. 10: OpenSSL-style file encryption/decryption — latency and CPU.

Two enclave threads: one encrypting a plaintext file, one decrypting a
pre-encrypted file (AES-256-CBC).  The four hot ocalls are ``fread``,
``fwrite``, ``fopen`` and ``fclose``; Intel switchless runs the paper's
ten configurations (``fr``, ``fw``, ``frw``, ``foc``, ``frwoc`` x {2, 4}
workers).

The calls here are long (whole chunks are marshalled), which is where
(1) Intel's 2.8M-cycle rbf pause loop and (2) the vanilla byte-by-byte
memcpy on the misaligned ciphertext stream hurt most — zc, which falls
back instantly and ships the ``rep movsb`` memcpy, beats *every* Intel
configuration (Take-away 7; paper: 1.62x / 1.82x over i-frwoc-2/4).

Shape requirements:

- i-frwoc is Intel's best configuration, i-foc its worst (close to no_sl);
- zc is faster than every Intel configuration, by >= ~1.3x over i-frwoc;
- zc uses less CPU than the Intel-4 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.apps import CryptoFileApp
from repro.crypto import FastXorEngine
from repro.experiments.common import (
    BackendSpec,
    build_stack,
    intel_spec,
    no_sl_spec,
    zc_spec,
)
from repro.parallel import CellSpec, ResultCache, cell, run_cells

CRYPTO_OCALL_SETS: dict[str, frozenset[str]] = {
    "fr": frozenset({"fread"}),
    "fw": frozenset({"fwrite"}),
    "frw": frozenset({"fread", "fwrite"}),
    "foc": frozenset({"fopen", "fclose"}),
    "frwoc": frozenset({"fread", "fwrite", "fopen", "fclose"}),
}

KEY = bytes(range(32))
IV = bytes(16)
CHUNK = 4096


def backend_specs(worker_counts: tuple[int, ...] = (2, 4)) -> list[BackendSpec]:
    """The configurations this experiment sweeps."""
    specs = [no_sl_spec(), zc_spec()]
    for workers in worker_counts:
        for tag, names in CRYPTO_OCALL_SETS.items():
            specs.append(intel_spec(tag, names, workers))
    return specs


@dataclass(frozen=True)
class Fig10Row:
    """One configuration cell of the figure."""
    label: str
    latency_s: float
    cpu_pct: float
    switchless_fraction: float


@dataclass
class Fig10Result:
    """Structured result of this experiment."""
    rows: list[Fig10Row]
    chunks_per_file: int
    files_per_thread: int

    def latency(self, label: str) -> float:
        """Latency for the given configuration cell."""
        for row in self.rows:
            if row.label == label:
                return row.latency_s
        raise KeyError(label)

    def cpu(self, label: str) -> float:
        """CPU usage for the given configuration."""
        for row in self.rows:
            if row.label == label:
                return row.cpu_pct
        raise KeyError(label)

    @property
    def labels(self) -> list[str]:
        """Configuration labels, in run order."""
        return [row.label for row in self.rows]


def _make_ciphertext(plaintext: bytes, chunk: int = CHUNK) -> bytes:
    """Pre-encrypt a file the way the encryptor thread would lay it out."""
    engine = FastXorEngine(KEY, IV)
    out = bytearray(IV)
    for offset in range(0, len(plaintext), chunk):
        out.extend(engine.encrypt(plaintext[offset : offset + chunk]))
    return bytes(out)


def run_one(
    spec: BackendSpec,
    chunks_per_file: int = 128,
    files_per_thread: int = 6,
) -> Fig10Row:
    """One configuration cell.

    The run must span well over one zc scheduler quantum (10 ms) so the
    worker count reaches steady state; the defaults simulate ~100 ms.
    """
    plaintext = bytes(chunks_per_file * CHUNK)
    files = {"/plain.bin": plaintext, "/pre.cipher": _make_ciphertext(plaintext)}
    stack = build_stack(spec, files=files)
    kernel = stack.kernel
    app = CryptoFileApp(
        stack.enclave, lambda: FastXorEngine(KEY, IV), chunk_bytes=CHUNK
    )

    def encryptor():
        for i in range(files_per_thread):
            yield from app.encrypt_file("/plain.bin", f"/out-{i}.cipher", IV)

    def decryptor():
        for _ in range(files_per_thread):
            yield from app.decrypt_file("/pre.cipher")

    stack.start_measuring()
    start = kernel.now
    enc = kernel.spawn(encryptor(), name="encryptor", kind="app")
    dec = kernel.spawn(decryptor(), name="decryptor", kind="app")
    kernel.join(enc, dec)
    latency = kernel.seconds(kernel.now - start)
    cpu = stack.cpu_usage_pct()
    switchless_fraction = stack.enclave.stats.switchless_fraction()
    stack.finish()
    return Fig10Row(
        label=spec.label,
        latency_s=latency,
        cpu_pct=cpu,
        switchless_fraction=switchless_fraction,
    )


def cells(
    worker_counts: tuple[int, ...] = (2, 4),
    chunks_per_file: int = 128,
    files_per_thread: int = 6,
) -> list[CellSpec]:
    """The experiment's grid as data: one cell per backend configuration."""
    return [
        cell(
            "fig10",
            index,
            spec=backend,
            chunks_per_file=chunks_per_file,
            files_per_thread=files_per_thread,
        )
        for index, backend in enumerate(backend_specs(worker_counts))
    ]


def run_cell(spec: CellSpec) -> Fig10Row:
    """Execute one cell of the grid."""
    kw = spec.kwargs
    return run_one(kw["spec"], kw["chunks_per_file"], kw["files_per_thread"])


def assemble(
    rows: list[Fig10Row],
    worker_counts: tuple[int, ...] = (2, 4),
    chunks_per_file: int = 128,
    files_per_thread: int = 6,
) -> Fig10Result:
    """Build the structured result from rows in ``cells()`` order."""
    return Fig10Result(
        rows=list(rows),
        chunks_per_file=chunks_per_file,
        files_per_thread=files_per_thread,
    )


def run(
    worker_counts: tuple[int, ...] = (2, 4),
    chunks_per_file: int = 128,
    files_per_thread: int = 6,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig10Result:
    """Execute the experiment and return its structured result."""
    rows = run_cells(
        cells(worker_counts, chunks_per_file, files_per_thread),
        jobs=jobs,
        cache=cache,
    )
    return assemble(
        rows, chunks_per_file=chunks_per_file, files_per_thread=files_per_thread
    )


def table(result: Fig10Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    rows = [
        [row.label, row.latency_s, row.cpu_pct, row.switchless_fraction]
        for row in result.rows
    ]
    return ["config", "latency_s", "cpu_pct", "switchless_frac"], rows


def report(result: Fig10Result) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    mb = result.chunks_per_file * CHUNK * result.files_per_thread / 1e6
    return format_table(
        headers,
        rows,
        title=f"Fig. 10: OpenSSL-style pipeline ({mb:.1f} MB per thread)",
        precision=4,
    )


def check_shape(result: Fig10Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    zc = result.latency("zc")
    no_sl = result.latency("no_sl")
    # At 2 workers the fully-selected config is Intel's best; at 4 the
    # extra spinning workers cost SMT throughput, so only check 2.
    intel2 = {tag: result.latency(f"i-{tag}-2") for tag in CRYPTO_OCALL_SETS}
    best_tag = min(intel2, key=intel2.get)
    if best_tag != "frwoc":
        violations.append(f"expected i-frwoc-2 to be Intel's best, got i-{best_tag}-2")
    for workers in (2, 4):
        intel = {
            tag: result.latency(f"i-{tag}-{workers}") for tag in CRYPTO_OCALL_SETS
        }
        if not intel["foc"] > 0.9 * min(no_sl, *intel.values()):
            violations.append(f"expected i-foc-{workers} among the slowest configs")
        # zc beats every Intel configuration (Take-away 7).
        for tag, latency in intel.items():
            if not zc < latency:
                violations.append(
                    f"expected zc faster than i-{tag}-{workers} "
                    f"({zc:.4f} vs {latency:.4f} s)"
                )
        # The paper reports 1.62x/1.82x over i-frwoc; our simulated gap
        # is smaller (the memcpy saving is the dominant term we model)
        # but must point the same way.
        ratio = intel["frwoc"] / zc
        if not 1.02 < ratio < 4.0:
            violations.append(
                f"expected zc meaningfully faster than i-frwoc-{workers} "
                f"(paper: 1.6-1.8x), got {ratio:.2f}x"
            )
    if not zc < no_sl:
        violations.append("expected zc faster than no_sl")
    # CPU: zc below the Intel-4 configurations.
    zc_cpu = result.cpu("zc")
    intel4_cpu = max(result.cpu(f"i-{tag}-4") for tag in CRYPTO_OCALL_SETS)
    if not zc_cpu < intel4_cpu:
        violations.append(
            f"expected zc CPU below Intel-4 configs ({zc_cpu:.1f}% vs {intel4_cpu:.1f}%)"
        )
    return violations
