"""Fig. 13: improved memcpy — vanilla vs zc write-ocall throughput.

Same benchmark as Fig. 7, run in both modes: the SDK's tlibc memcpy
(``vanilla-memcpy``) and the paper's ``rep movsb`` implementation
(``zc-memcpy``).  The paper reports large-buffer speedups of up to 3.6x
for aligned and 15.1x for unaligned buffers.

Shape requirements:

- zc >= vanilla everywhere;
- 32 kB aligned speedup in the ~3-4.5x band;
- 32 kB unaligned speedup in the ~12-18x band;
- speedups grow with buffer size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.experiments import fig7 as _fig7
from repro.experiments.fig7 import SIZES, Fig7Result, ThroughputPoint
from repro.parallel import CellSpec, ResultCache, run_cells
from repro.sgx.memcpy import VanillaMemcpy, ZcMemcpy

#: The paper's headline large-buffer speedups.
PAPER_ALIGNED_SPEEDUP = 3.6
PAPER_UNALIGNED_SPEEDUP = 15.1


@dataclass
class Fig13Result:
    """Structured result of this experiment."""
    vanilla: Fig7Result
    zc: Fig7Result

    def speedup(self, size: int, aligned: bool) -> float:
        """Speedup of the improved variant over the baseline."""
        return self.zc.gbps(size, aligned) / self.vanilla.gbps(size, aligned)

    @property
    def sizes(self) -> list[int]:
        """The swept buffer sizes, ascending."""
        return sorted({p.size_bytes for p in self.vanilla.points})


def cells(sizes: tuple[int, ...] = SIZES, ops: int = 300) -> list[CellSpec]:
    """Fig. 7's grid, twice: vanilla cells first, then the zc variant.

    The specs carry ``exp_id="fig7"``, so the runner dispatches to
    Fig. 7's ``run_cell`` and the vanilla half shares its cache entries
    with a plain Fig. 7 run.
    """
    specs = _fig7.cells(sizes, ops, VanillaMemcpy()) + _fig7.cells(
        sizes, ops, ZcMemcpy()
    )
    return [replace(spec, index=index) for index, spec in enumerate(specs)]


def run_cell(spec: CellSpec) -> ThroughputPoint:
    """Execute one cell of the grid (delegates to Fig. 7)."""
    return _fig7.run_cell(spec)


def assemble(
    points: list[ThroughputPoint],
    sizes: tuple[int, ...] = SIZES,
    ops: int = 300,
) -> Fig13Result:
    """Build the structured result from rows in ``cells()`` order."""
    half = len(points) // 2
    return Fig13Result(
        vanilla=_fig7.assemble(points[:half], ops=ops),
        zc=_fig7.assemble(points[half:], ops=ops),
    )


def run(
    sizes: tuple[int, ...] = SIZES,
    ops: int = 300,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig13Result:
    """Execute the experiment and return its structured result."""
    points = run_cells(cells(sizes, ops), jobs=jobs, cache=cache)
    return assemble(points, ops=ops)


def table(result: Fig13Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    rows = []
    for size in result.sizes:
        rows.append(
            [
                size,
                result.vanilla.gbps(size, True),
                result.zc.gbps(size, True),
                result.speedup(size, True),
                result.vanilla.gbps(size, False),
                result.zc.gbps(size, False),
                result.speedup(size, False),
            ]
        )
    headers = [
        "size_B",
        "vanilla_al",
        "zc_al",
        "speedup_al",
        "vanilla_un",
        "zc_un",
        "speedup_un",
    ]
    return headers, rows


def report(result: Fig13Result) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=(
            "Fig. 13: write-ocall throughput (GB/s), vanilla vs zc memcpy "
            f"(paper: {PAPER_ALIGNED_SPEEDUP}x aligned / "
            f"{PAPER_UNALIGNED_SPEEDUP}x unaligned at 32 kB)"
        ),
    )


def check_shape(result: Fig13Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    for size in result.sizes:
        for aligned in (True, False):
            if result.speedup(size, aligned) < 0.99:
                violations.append(
                    f"expected zc >= vanilla at {size} B aligned={aligned}"
                )
    top = result.sizes[-1]
    aligned_speedup = result.speedup(top, True)
    if not 3.0 < aligned_speedup < 4.5:
        violations.append(
            f"expected ~3.6x aligned speedup at {top} B, got {aligned_speedup:.2f}x"
        )
    unaligned_speedup = result.speedup(top, False)
    if not 12.0 < unaligned_speedup < 18.0:
        violations.append(
            f"expected ~15.1x unaligned speedup at {top} B, got {unaligned_speedup:.2f}x"
        )
    for aligned in (True, False):
        speedups = [result.speedup(size, aligned) for size in result.sizes]
        if not all(a <= b * 1.02 for a, b in zip(speedups, speedups[1:])):
            violations.append(
                f"expected speedup to grow with size (aligned={aligned})"
            )
    return violations
