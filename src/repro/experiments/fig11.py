"""Fig. 11: lmbench dynamic benchmark — read/write throughput over time.

A reader thread (one-word reads of ``/dev/zero``) and a writer thread
(one-word writes to ``/dev/null``) issue paced batches every τ across
three phases (increasing / constant / decreasing load).  Intel switchless
runs the paper's six configurations (``i-read``, ``i-write``, ``i-all``
x {2, 4} workers) against ``no_sl`` and ``zc``.

Shape requirements (peak-phase throughput):

- zc beats the *cross-misconfigured* configs by ~2x: the reader under
  i-write (reads never switchless) and the writer under i-read;
- a fully-configured Intel (i-all) matches or beats zc (paper: zc is
  1.1-1.6x slower);
- every config tracks the offered load during the ramp-up phase until it
  saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import PeriodResult
from repro.analysis.report import format_table
from repro.apps import LmbenchSyscalls
from repro.experiments.common import (
    BackendSpec,
    build_stack,
    intel_spec,
    no_sl_spec,
    zc_spec,
)
from repro.parallel import CellSpec, ResultCache, cell, run_cells
from repro.workloads.dynamic import DynamicSpec, build_schedule, paced_thread

LMBENCH_OCALL_SETS: dict[str, frozenset[str]] = {
    "read": frozenset({"read"}),
    "write": frozenset({"write"}),
    "all": frozenset({"read", "write"}),
}

#: Scaled-down default of the paper's τ=0.5 s / 3x20 s benchmark.  The
#: peak is chosen to saturate every configuration (offered ~1.6M ops/s
#: against a best-case service rate of ~2M ops/s), as the paper's peak
#: phase does — that is what makes the CPU-usage plateaus of Fig. 12
#: comparable across configurations.
DEFAULT_SPEC = DynamicSpec(
    tau_seconds=0.005, periods_per_phase=6, base_ops=512, peak_ops=8192
)


def backend_specs(worker_counts: tuple[int, ...] = (2, 4)) -> list[BackendSpec]:
    """The configurations this experiment sweeps."""
    specs = [no_sl_spec(), zc_spec()]
    for workers in worker_counts:
        for tag, names in LMBENCH_OCALL_SETS.items():
            specs.append(intel_spec(tag, names, workers))
    return specs


@dataclass
class LmbenchRun:
    """One configuration's periods and CPU series."""
    label: str
    reader_periods: list[PeriodResult]
    writer_periods: list[PeriodResult]
    cpu_series: list[tuple[float, float]]
    freq_hz: float

    def _peak_tput(self, periods: list[PeriodResult], spec: DynamicSpec) -> float:
        """Mean sustained throughput over the constant (peak) phase."""
        n = spec.periods_per_phase
        peak_phase = periods[n : 2 * n]
        if not peak_phase:
            return 0.0
        tau_cycles = spec.tau_seconds * self.freq_hz
        return sum(
            p.sustained_ops_per_s(self.freq_hz, tau_cycles) for p in peak_phase
        ) / len(peak_phase)

    def reader_peak(self, spec: DynamicSpec) -> float:
        """Mean sustained reader throughput over the peak phase (ops/s)."""
        return self._peak_tput(self.reader_periods, spec)

    def writer_peak(self, spec: DynamicSpec) -> float:
        """Mean sustained writer throughput over the peak phase (ops/s)."""
        return self._peak_tput(self.writer_periods, spec)

    def mean_cpu(self) -> float:
        """Mean CPU usage across the sweep for one configuration."""
        if not self.cpu_series:
            return 0.0
        return sum(pct for _, pct in self.cpu_series) / len(self.cpu_series)


@dataclass
class Fig11Result:
    """Structured result of this experiment."""
    runs: list[LmbenchRun]
    spec: DynamicSpec

    def get(self, label: str) -> LmbenchRun:
        """Look up one entry by label/key."""
        for run_ in self.runs:
            if run_.label == label:
                return run_
        raise KeyError(label)

    @property
    def labels(self) -> list[str]:
        """Configuration labels, in run order."""
        return [r.label for r in self.runs]


def run_one(backend: BackendSpec, spec: DynamicSpec = DEFAULT_SPEC) -> LmbenchRun:
    """Run one configuration cell of the experiment."""
    stack = build_stack(backend, monitor_interval_s=spec.tau_seconds)
    kernel = stack.kernel
    bench = LmbenchSyscalls(stack.enclave)

    setup_thread = kernel.spawn(bench.setup(), name="setup", kind="app")
    kernel.join(setup_thread)

    schedule = build_schedule(spec)
    tau_cycles = kernel.cycles(spec.tau_seconds)
    reader_periods: list[PeriodResult] = []
    writer_periods: list[PeriodResult] = []
    reader = kernel.spawn(
        paced_thread(kernel, bench.read_op, schedule, tau_cycles, reader_periods),
        name="reader",
        kind="app",
    )
    writer = kernel.spawn(
        paced_thread(kernel, bench.write_op, schedule, tau_cycles, writer_periods),
        name="writer",
        kind="app",
    )
    kernel.join(reader, writer)
    assert stack.monitor is not None
    cpu_series = stack.monitor.series()
    stack.finish()
    return LmbenchRun(
        label=backend.label,
        reader_periods=reader_periods,
        writer_periods=writer_periods,
        cpu_series=cpu_series,
        freq_hz=kernel.spec.freq_hz,
    )


def cells(
    worker_counts: tuple[int, ...] = (2, 4),
    spec: DynamicSpec = DEFAULT_SPEC,
) -> list[CellSpec]:
    """The experiment's grid as data: one cell per backend configuration.

    Fig. 12 reuses these cells verbatim — the same runs feed both
    figures, so one cache entry serves both.
    """
    return [
        cell("fig11", index, backend=backend, spec=spec)
        for index, backend in enumerate(backend_specs(worker_counts))
    ]


def run_cell(cell_spec: CellSpec) -> LmbenchRun:
    """Execute one cell of the grid."""
    kw = cell_spec.kwargs
    return run_one(kw["backend"], kw["spec"])


def assemble(
    runs: list[LmbenchRun],
    worker_counts: tuple[int, ...] = (2, 4),
    spec: DynamicSpec = DEFAULT_SPEC,
) -> Fig11Result:
    """Build the structured result from rows in ``cells()`` order."""
    return Fig11Result(runs=list(runs), spec=spec)


def run(
    worker_counts: tuple[int, ...] = (2, 4),
    spec: DynamicSpec = DEFAULT_SPEC,
    jobs: int | str = 1,
    cache: ResultCache | None = None,
) -> Fig11Result:
    """Execute the experiment and return its structured result."""
    runs = run_cells(cells(worker_counts, spec), jobs=jobs, cache=cache)
    return assemble(runs, spec=spec)


def table(result: Fig11Result) -> tuple[list[str], list[list]]:
    """(headers, rows) of the figure's data, for reports and CSV export."""
    rows = []
    for run_ in result.runs:
        rows.append(
            [
                run_.label,
                run_.reader_peak(result.spec) / 1e3,
                run_.writer_peak(result.spec) / 1e3,
                run_.mean_cpu(),
            ]
        )
    return ["config", "reader_peak_kops", "writer_peak_kops", "mean_cpu_pct"], rows


def report(result: Fig11Result) -> str:
    """Render the figure's series as an aligned text table."""
    headers, rows = table(result)
    return format_table(
        headers,
        rows,
        title=(
            "Fig. 11: lmbench dynamic benchmark — peak-phase throughput "
            f"(tau={result.spec.tau_seconds}s, peak={result.spec.peak_ops} ops)"
        ),
        precision=1,
    )


def check_shape(result: Fig11Result) -> list[str]:
    """Return the violated paper-shape expectations (empty = reproduced)."""
    violations = []
    spec = result.spec
    zc = result.get("zc")
    present = {
        w for w in (2, 4) if any(r.label == f"i-all-{w}" for r in result.runs)
    }
    for workers in sorted(present):
        cross_read = result.get(f"i-write-{workers}")  # reads misconfigured
        cross_write = result.get(f"i-read-{workers}")  # writes misconfigured
        if not zc.reader_peak(spec) > 1.3 * cross_read.reader_peak(spec):
            violations.append(
                f"expected zc reader ~2x over i-write-{workers}, got "
                f"{zc.reader_peak(spec):.0f} vs {cross_read.reader_peak(spec):.0f} ops/s"
            )
        if not zc.writer_peak(spec) > 1.3 * cross_write.writer_peak(spec):
            violations.append(
                f"expected zc writer ~2x over i-read-{workers}, got "
                f"{zc.writer_peak(spec):.0f} vs {cross_write.writer_peak(spec):.0f} ops/s"
            )
        well = result.get(f"i-all-{workers}")
        if not well.reader_peak(spec) > 0.85 * zc.reader_peak(spec):
            violations.append(
                f"expected i-all-{workers} to match or beat zc (reader)"
            )
    # Ramp: achieved throughput grows through phase 1 for zc.
    n = spec.periods_per_phase
    ramp = [p.completed_ops for p in zc.reader_periods[:n]]
    if not ramp[-1] > ramp[0]:
        violations.append(f"expected zc reader ramp-up, got {ramp}")
    return violations
