"""One runner per paper figure/table.

Every module exposes:

- ``run(...) -> <Figure>Result`` — executes the experiment (accepting
  scaled-down parameters for quick runs) and returns structured rows;
- ``report(result) -> str`` — the rows/series the paper's figure plots,
  as an aligned text table;
- ``check_shape(result) -> list[str]`` — the qualitative expectations the
  paper's figure encodes (who wins, by roughly what factor, where the
  crossovers fall); returns the list of violated expectations, empty when
  the reproduction matches the paper's shape.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for measured
paper-vs-reproduction numbers.
"""

from repro.experiments import (
    fig2,
    fig3,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    sec3a,
    sec5d,
    serve,
)
from repro.serve import slices as serve_slice

#: Registry of experiment id -> module, used by the benchmark harness.
EXPERIMENTS = {
    "sec3a": sec3a,
    "fig2": fig2,
    "fig3": fig3,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "sec5d": sec5d,
    "serve": serve,
}

#: Cell providers are fork-pool targets without the full experiment
#: surface (no figure, no table, no quick kwargs).  The cell runner
#: resolves these when an id is not a registered experiment.
CELL_PROVIDERS = {
    # One slice of a slice-parallel serve bench (repro serve bench
    # --slices N); see repro.serve.slices.
    "serve-slice": serve_slice,
}

__all__ = ["CELL_PROVIDERS", "EXPERIMENTS"]
