"""Host-side profiling of the simulator itself (``repro profile meta``).

The figure benches measure *simulated* cycles; this module measures the
*simulator* — which Python functions burn host CPU while the DES kernel
grinds through the meta-bench ocall storm.  It exists because the kernel
overhaul (calendar-queue timers, pre-bound telemetry paths, slotted
accounting) was driven by exactly this profile: the pre-overhaul run
spent its top slot on ``_Timer.__lt__`` — 351,610 calls for a 3,000-ocall
storm — which the tuple-entry timer queue removed outright.

Two products per run:

- a **hot-function table** from :mod:`cProfile` (top functions by
  exclusive host time, with call counts), rendered and embedded in the
  JSON artifact so before/after comparisons are one diff away;
- an optional **Chrome trace** of the same storm's *simulated* schedule
  (:func:`repro.profiler.chrometrace.sched_trace_events`) — open it in
  ``chrome://tracing``/Perfetto to see which simulated threads occupied
  which hyperthreads while the host profile was taken.

The storm mirrors ``benchmarks/bench_meta_simulator.py`` so profile
numbers line up with the committed ``baselines/meta.json`` throughput
gates.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from typing import Any

#: Default ocall count — matches ``benchmarks/bench_meta_simulator.py``.
DEFAULT_OCALLS = 3_000


def run_storm(
    use_zc: bool = True,
    n_ocalls: int = DEFAULT_OCALLS,
    timers: str = "wheel",
    trace: Any = None,
):
    """The meta-bench ocall storm: two app threads, one enclave.

    Returns the finished kernel (``events_processed``, ``now``,
    ``timer_stats()`` are the interesting bits).
    """
    from repro.api import make_backend
    from repro.core import ZcConfig
    from repro.sgx import Enclave, UntrustedRuntime
    from repro.sim import Compute, Kernel, paper_machine

    kernel = Kernel(paper_machine(), trace=trace, timers=timers)
    urts = UntrustedRuntime()
    enclave = Enclave(kernel, urts)
    if use_zc:
        enclave.set_backend(make_backend("zc", ZcConfig(enable_scheduler=False)))

    def handler():
        yield Compute(500)
        return None

    urts.register("f", handler)

    def app():
        for _ in range(n_ocalls // 2):
            yield from enclave.ocall("f")

    threads = [kernel.spawn(app(), name=f"a{i}") for i in range(2)]
    kernel.join(*threads)
    enclave.stop_backend()
    kernel.run()
    return kernel


def profile_storm(
    use_zc: bool = True,
    n_ocalls: int = DEFAULT_OCALLS,
    timers: str = "wheel",
    top: int = 20,
) -> dict[str, Any]:
    """cProfile one storm; returns the artifact dict (see ``hot`` key).

    ``hot`` rows are sorted by exclusive (``tottime``) host seconds —
    the simulator's own cost, which is what the overhaul targets —
    and carry ``ncalls``/``tottime_s``/``cumtime_s``/``function``.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    kernel = run_storm(use_zc=use_zc, n_ocalls=n_ocalls, timers=timers)
    profiler.disable()

    stats = pstats.Stats(profiler, stream=io.StringIO())
    total_tt = sum(entry[2] for entry in stats.stats.values())
    rows = []
    for (filename, lineno, name), entry in stats.stats.items():
        cc, nc, tt, ct, _callers = entry
        rows.append(
            {
                "function": f"{_short(filename)}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    rows.sort(key=lambda row: row["tottime_s"], reverse=True)
    return {
        "backend": "zc" if use_zc else "regular",
        "timers": timers,
        "n_ocalls": n_ocalls,
        "events_processed": kernel.events_processed,
        "simulated_s": kernel.seconds(kernel.now),
        "host_seconds": total_tt,
        "timer_stats": kernel.timer_stats(),
        "hot": rows[:top],
    }


def export_sched_trace(
    path: str,
    use_zc: bool = True,
    n_ocalls: int = DEFAULT_OCALLS,
    timers: str = "wheel",
    max_entries: int = 200_000,
) -> int:
    """Re-run the storm with a SchedTrace and write a Chrome trace JSON.

    Returns the number of trace events written.  The run is separate from
    the profiled one so tracing overhead never pollutes the hot table.
    """
    from repro.profiler.chrometrace import sched_trace_events
    from repro.sim.kernel import SchedTrace

    trace = SchedTrace(max_entries=max_entries)
    kernel = run_storm(use_zc=use_zc, n_ocalls=n_ocalls, timers=timers, trace=trace)
    events = sched_trace_events(trace, freq_hz=kernel.spec.freq_hz)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(events, handle)
        handle.write("\n")
    return len(events)


def render_profile(artifact: dict[str, Any]) -> str:
    """The hot-function table as an aligned text block."""
    lines = [
        f"meta profile: backend {artifact['backend']}, "
        f"timers {artifact['timers']}, {artifact['n_ocalls']} ocalls",
        f"  {artifact['events_processed']} kernel events, "
        f"{artifact['host_seconds'] * 1e3:.1f} ms host, "
        f"{artifact['simulated_s'] * 1e3:.3f} ms simulated",
        f"  timer queue: {artifact['timer_stats']}",
        "",
        f"{'ncalls':>10}  {'tottime':>9}  {'cumtime':>9}  function",
    ]
    for row in artifact["hot"]:
        lines.append(
            f"{row['ncalls']:>10}  {row['tottime_s'] * 1e3:>7.1f}ms  "
            f"{row['cumtime_s'] * 1e3:>7.1f}ms  {row['function']}"
        )
    return "\n".join(lines)


def _short(filename: str) -> str:
    """Trim a profile filename down to the package-relative part."""
    for marker in ("/repro/", "/benchmarks/"):
        index = filename.rfind(marker)
        if index != -1:
            return filename[index + 1 :]
    return filename.rsplit("/", 1)[-1]
