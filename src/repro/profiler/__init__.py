"""Enclave call profiling and switchless-configuration advice.

The paper's §VI names profiler integration as future work, and its §III-A
motivation is precisely that developers *cannot know* call frequency and
duration at build time.  This package closes that loop, in the spirit of
sgx-perf [32]:

- :mod:`repro.profiler.tracer` — a :class:`CallTracer` that installs onto
  an enclave and records one event per ocall (issue/complete time, host
  handler duration, execution mode, marshalled bytes);
- :mod:`repro.profiler.profile` — aggregation into per-callsite profiles
  (rate, duration percentiles, transition share);
- :mod:`repro.profiler.advisor` — a :class:`SwitchlessAdvisor` that turns
  a profile into a static Intel switchless configuration using the SDK's
  own guidance ("short and frequently called"), with estimated cycle
  savings — i.e. what a developer would have had to guess, derived from
  measurements.

ZC-SWITCHLESS makes this advice unnecessary at runtime; the advisor is
still useful to *explain* workloads and to configure the Intel baseline
fairly.
"""

from repro.profiler.advisor import Recommendation, SwitchlessAdvisor
from repro.profiler.profile import (
    CallProfile,
    ProfileDelta,
    build_profiles,
    compare_profiles,
)
from repro.profiler.tracer import CallEvent, CallTracer

__all__ = [
    "CallEvent",
    "CallProfile",
    "CallTracer",
    "ProfileDelta",
    "Recommendation",
    "SwitchlessAdvisor",
    "build_profiles",
    "compare_profiles",
]
