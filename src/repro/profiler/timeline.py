"""Interval time series over a call trace.

Buckets a :class:`repro.profiler.tracer.CallTracer`'s events into fixed
intervals and derives the series a performance dashboard would plot:
call rate, switchless fraction, and mean latency per interval.  A compact
unicode sparkline renderer makes the series readable in terminal reports
(the paper's Fig. 11/12-style time axes, in text form).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiler.tracer import CallEvent

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class IntervalStats:
    """Aggregates over one time bucket."""

    t_start_cycles: float
    t_end_cycles: float
    calls: int
    switchless: int
    mean_latency_cycles: float

    @property
    def switchless_fraction(self) -> float:
        """Fraction of calls executed switchlessly."""
        return self.switchless / self.calls if self.calls else 0.0

    def rate_per_s(self, freq_hz: float) -> float:
        """Calls per second over this interval."""
        window_s = (self.t_end_cycles - self.t_start_cycles) / freq_hz
        return self.calls / window_s if window_s > 0 else 0.0


def bucket_events(
    events: list[CallEvent],
    interval_cycles: float,
    t_end_cycles: float | None = None,
) -> list[IntervalStats]:
    """Bucket events by completion time into fixed intervals."""
    if interval_cycles <= 0:
        raise ValueError("interval_cycles must be positive")
    if not events:
        return []
    horizon = t_end_cycles
    if horizon is None:
        horizon = max(e.completed_at_cycles for e in events)
    n_buckets = max(1, int(horizon // interval_cycles) + 1)
    counts = [0] * n_buckets
    switchless = [0] * n_buckets
    latency_sums = [0.0] * n_buckets
    for event in events:
        index = min(int(event.completed_at_cycles // interval_cycles), n_buckets - 1)
        counts[index] += 1
        if event.mode == "switchless":
            switchless[index] += 1
        latency_sums[index] += event.latency_cycles
    return [
        IntervalStats(
            t_start_cycles=i * interval_cycles,
            t_end_cycles=(i + 1) * interval_cycles,
            calls=counts[i],
            switchless=switchless[i],
            mean_latency_cycles=latency_sums[i] / counts[i] if counts[i] else 0.0,
        )
        for i in range(n_buckets)
    ]


def sparkline(values: list[float]) -> str:
    """Render values as a unicode sparkline (empty input -> empty str)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high <= low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    return "".join(
        _SPARK_LEVELS[
            min(int((v - low) / span * len(_SPARK_LEVELS)), len(_SPARK_LEVELS) - 1)
        ]
        for v in values
    )


def render_timeline(
    buckets: list[IntervalStats], freq_hz: float = 3.8e9
) -> str:
    """A three-line dashboard: rate, switchless share, latency."""
    if not buckets:
        return "(no events)"
    rates = [b.rate_per_s(freq_hz) for b in buckets]
    fractions = [b.switchless_fraction for b in buckets]
    latencies = [b.mean_latency_cycles for b in buckets]
    window_ms = (buckets[0].t_end_cycles - buckets[0].t_start_cycles) / freq_hz * 1e3
    return "\n".join(
        [
            f"interval = {window_ms:.2f} ms, {len(buckets)} intervals",
            f"call rate    {sparkline(rates)}  peak {max(rates):,.0f}/s",
            f"switchless   {sparkline(fractions)}  mean {sum(fractions) / len(fractions):.0%}",
            f"mean latency {sparkline(latencies)}  worst {max(latencies):,.0f} cyc",
        ]
    )
