"""Aggregation of call events into per-callsite profiles."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.profiler.tracer import CallEvent


@dataclass(frozen=True)
class CallProfile:
    """Measured behaviour of one ocall site over a tracing window.

    ``host_cycles`` statistics cover the handler alone (the "duration" of
    the SDK's switchless guidance); ``latency`` covers the full caller-
    observed round trip including marshalling and transition/handshake.
    """

    name: str
    calls: int
    rate_per_s: float
    mean_host_cycles: float
    p95_host_cycles: float
    mean_latency_cycles: float
    mean_bytes: float
    switchless_fraction: float

    @property
    def is_short(self) -> bool:
        """Short relative to an enclave transition (T_es = 13,500)?"""
        return self.mean_host_cycles < 13_500.0


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def build_profiles(
    events: list[CallEvent],
    window_cycles: float,
    freq_hz: float = 3.8e9,
) -> dict[str, CallProfile]:
    """Aggregate raw events into one profile per ocall name."""
    if window_cycles <= 0:
        window_cycles = max(
            (e.completed_at_cycles for e in events), default=1.0
        ) or 1.0
    by_name: dict[str, list[CallEvent]] = {}
    for event in events:
        by_name.setdefault(event.name, []).append(event)
    window_s = window_cycles / freq_hz
    profiles: dict[str, CallProfile] = {}
    for name, site_events in sorted(by_name.items()):
        host = [e.host_cycles for e in site_events]
        latency = [e.latency_cycles for e in site_events]
        transferred = [e.in_bytes + e.out_bytes for e in site_events]
        switchless = sum(1 for e in site_events if e.mode == "switchless")
        profiles[name] = CallProfile(
            name=name,
            calls=len(site_events),
            rate_per_s=len(site_events) / window_s,
            mean_host_cycles=sum(host) / len(host),
            p95_host_cycles=_percentile(host, 95),
            mean_latency_cycles=sum(latency) / len(latency),
            mean_bytes=sum(transferred) / len(transferred),
            switchless_fraction=switchless / len(site_events),
        )
    return profiles


@dataclass(frozen=True)
class ProfileDelta:
    """Latency change of one ocall site between two profiles."""

    name: str
    before_latency_cycles: float
    after_latency_cycles: float
    before_switchless: float
    after_switchless: float

    @property
    def speedup(self) -> float:
        """Speedup of the improved variant over the baseline."""
        if self.after_latency_cycles <= 0:
            return float("inf")
        return self.before_latency_cycles / self.after_latency_cycles


def compare_profiles(
    before: dict[str, CallProfile], after: dict[str, CallProfile]
) -> list[ProfileDelta]:
    """Per-callsite latency deltas between two profiling runs.

    The canonical use: profile a workload under ``no_sl``, again under a
    switchless backend, and see exactly which call sites the mechanism
    helped.  Only sites present in both profiles are compared; ordered by
    speedup, best first.
    """
    deltas = [
        ProfileDelta(
            name=name,
            before_latency_cycles=before[name].mean_latency_cycles,
            after_latency_cycles=after[name].mean_latency_cycles,
            before_switchless=before[name].switchless_fraction,
            after_switchless=after[name].switchless_fraction,
        )
        for name in sorted(set(before) & set(after))
    ]
    deltas.sort(key=lambda d: -d.speedup)
    return deltas


def format_deltas(deltas: list[ProfileDelta]) -> str:
    """Text report of a profile comparison."""
    rows = [
        [
            d.name,
            d.before_latency_cycles,
            d.after_latency_cycles,
            d.speedup,
            d.after_switchless,
        ]
        for d in deltas
    ]
    return format_table(
        ["ocall", "before_cyc", "after_cyc", "speedup", "switchless_frac"],
        rows,
        title="profile comparison (before vs after)",
        precision=2,
    )


def format_profiles(profiles: dict[str, CallProfile]) -> str:
    """A text report in descending call-count order."""
    rows = [
        [
            p.name,
            p.calls,
            p.rate_per_s,
            p.mean_host_cycles,
            p.mean_latency_cycles,
            p.mean_bytes,
            "short" if p.is_short else "long",
        ]
        for p in sorted(profiles.values(), key=lambda p: -p.calls)
    ]
    return format_table(
        ["ocall", "calls", "rate/s", "host_cyc", "latency_cyc", "bytes", "class"],
        rows,
        title="ocall profile (tracing window)",
        precision=0,
    )
