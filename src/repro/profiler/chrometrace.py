"""Export traces in Chrome trace-event format (``chrome://tracing``).

Both trace sources the library produces can be exported:

- :class:`repro.sim.kernel.SchedTrace` entries become per-CPU duration
  slices (dispatch→preempt/park/finish), one track per logical CPU — a
  visual of exactly which threads occupied which hyperthreads when;
- :class:`repro.profiler.tracer.CallTracer` events become per-thread
  async-style slices named after the ocall, coloured by execution mode.

The output is the JSON array flavour of the trace-event format, loadable
in ``chrome://tracing`` or Perfetto.  Times are exported in microseconds
of *simulated* time.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.profiler.tracer import CallEvent
    from repro.sim.kernel import SchedTrace

#: chrome://tracing colour names per execution mode.
_MODE_COLOURS = {
    "switchless": "good",
    "regular": "bad",
    "fallback": "terrible",
}


def _us(cycles: float, freq_hz: float) -> float:
    return cycles / freq_hz * 1e6


def sched_trace_events(trace: "SchedTrace", freq_hz: float = 3.8e9) -> list[dict]:
    """Duration events (one per on-CPU interval) from a SchedTrace."""
    events: list[dict] = []
    running: dict[str, tuple[float, int]] = {}  # thread -> (start, cpu)
    for when, event, thread, cpu in trace.entries:
        if event == "dispatch":
            running[thread] = (when, cpu)
            continue
        started = running.pop(thread, None)
        if started is None:
            continue  # dispatch fell off the ring buffer
        start_cycles, start_cpu = started
        events.append(
            {
                "name": thread,
                "ph": "X",
                "ts": _us(start_cycles, freq_hz),
                "dur": _us(when - start_cycles, freq_hz),
                "pid": 0,
                "tid": start_cpu,
                "args": {"end": event},
            }
        )
    return events


def call_trace_events(
    calls: list["CallEvent"], freq_hz: float = 3.8e9
) -> list[dict]:
    """Duration events (one per ocall) from CallTracer events."""
    return [
        {
            "name": event.name,
            "ph": "X",
            "ts": _us(event.issued_at_cycles, freq_hz),
            "dur": _us(event.latency_cycles, freq_hz),
            "pid": 1,
            "tid": 0,
            "cname": _MODE_COLOURS.get(event.mode, "grey"),
            "args": {
                "mode": event.mode,
                "host_cycles": event.host_cycles,
                "bytes": event.in_bytes + event.out_bytes,
            },
        }
        for event in calls
    ]


def counter_events(
    name: str,
    samples: list[tuple[float, float]],
    freq_hz: float = 3.8e9,
    pid: int = 0,
) -> list[dict]:
    """Counter-track ("ph": "C") events from a (t_cycles, value) timeline.

    Renders as a stepped area chart in the trace viewer — used for the ZC
    backend's active-worker count over time.
    """
    return [
        {
            "name": name,
            "ph": "C",
            "ts": _us(t_cycles, freq_hz),
            "pid": pid,
            "args": {name: value},
        }
        for t_cycles, value in samples
    ]


def instant_events(
    items: list[tuple[float, str, dict]],
    freq_hz: float = 3.8e9,
    pid: int = 0,
    tid: int = 0,
) -> list[dict]:
    """Instant ("ph": "i") events from (t_cycles, name, args) tuples.

    Used for point-in-time markers: scheduler decisions, fallbacks, pool
    reallocations, worker sleep/wake edges.
    """
    return [
        {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": _us(t_cycles, freq_hz),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        for t_cycles, name, args in items
    ]


def export_chrome_trace(
    path: str,
    sched: "SchedTrace | None" = None,
    calls: list["CallEvent"] | None = None,
    freq_hz: float = 3.8e9,
    extra: list[dict] | None = None,
) -> int:
    """Write a combined trace JSON to ``path``; returns the event count.

    Metadata events name the tracks: pid 0 is "CPUs" (one tid per logical
    CPU), pid 1 is "ocalls".  ``extra`` appends pre-built trace events
    (counters, instants) verbatim.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "args": {"name": "CPUs"}},
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "ocalls"}},
    ]
    if sched is not None:
        events.extend(sched_trace_events(sched, freq_hz))
    if calls is not None:
        events.extend(call_trace_events(calls, freq_hz))
    if extra:
        events.extend(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(events, handle)
    return len(events)
